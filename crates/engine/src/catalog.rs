//! A named-table catalog, the engine's equivalent of a database schema.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;

/// Maps table names to materialized relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Relation>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table; errors if the name is taken.
    pub fn register(&mut self, name: impl Into<String>, rel: Relation) -> EngineResult<()> {
        self.register_shared(name, Arc::new(rel))
    }

    /// Register an already-shared relation (no copy); errors if the name
    /// is taken.
    pub fn register_shared(
        &mut self,
        name: impl Into<String>,
        rel: Arc<Relation>,
    ) -> EngineResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(EngineError::DuplicateTable(name));
        }
        self.tables.insert(name, rel);
        Ok(())
    }

    /// Register or replace a table.
    pub fn register_or_replace(&mut self, name: impl Into<String>, rel: Relation) {
        self.register_or_replace_shared(name, Arc::new(rel));
    }

    /// Register or replace a table with an already-shared relation.
    pub fn register_or_replace_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        self.tables.insert(name.into(), rel);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> EngineResult<Arc<Relation>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Remove a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Arc<Relation>> {
        self.tables.remove(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Owned list of all registered table names, sorted.
    pub fn list_tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Is a table with this name registered?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};

    fn rel() -> Relation {
        Relation::empty(Schema::new(vec![Column::new("a", DataType::Int)]))
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(c.get("t").is_ok());
        assert!(c.get("u").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn duplicate_registration_errors() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(c.register("t", rel()).is_err());
        c.register_or_replace("t", rel());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drop_removes() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(c.drop_table("t").is_some());
        assert!(c.get("t").is_err());
        assert!(c.is_empty());
    }
}
