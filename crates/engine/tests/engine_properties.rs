//! Property-based tests of the engine: the three join algorithms must
//! agree with each other on arbitrary inputs, set operations must satisfy
//! their algebraic laws, and sort/distinct/aggregate must respect their
//! contracts.

use proptest::prelude::*;
use temporal_engine::catalog::Catalog;
use temporal_engine::prelude::*;

fn rel_from(rows: &[(i64, i64)]) -> Relation {
    Relation::from_values(
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]),
        rows.iter()
            .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
            .collect(),
    )
    .unwrap()
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0..5i64, 0..20i64), 0..max)
}

fn run_join(
    l: &Relation,
    r: &Relation,
    jt: JoinType,
    cond: Expr,
    config: PlannerConfig,
) -> Relation {
    let plan = LogicalPlan::inline_scan(l.clone()).join(
        LogicalPlan::inline_scan(r.clone()),
        jt,
        Some(cond),
    );
    Planner::new(config).run(&plan, &Catalog::new()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash join ≡ merge join ≡ nested loop on equi conditions, for every
    /// join type each algorithm supports.
    #[test]
    fn join_algorithms_agree(l in arb_rows(12), r in arb_rows(12)) {
        let (lr, rr) = (rel_from(&l), rel_from(&r));
        let cond = col(0).eq(col(2)); // l.k = r.k
        for jt in [JoinType::Inner, JoinType::Left, JoinType::Right,
                   JoinType::Full, JoinType::Semi, JoinType::Anti] {
            let nl = run_join(&lr, &rr, jt, cond.clone(), PlannerConfig::nestloop_only());
            let hash = run_join(&lr, &rr, jt, cond.clone(), PlannerConfig::no_merge());
            prop_assert!(nl.same_bag(&hash), "{jt:?}: nl {nl} vs hash {hash}");
            let best = run_join(&lr, &rr, jt, cond.clone(), PlannerConfig::all_enabled());
            prop_assert!(nl.same_bag(&best), "{jt:?}: nl {nl} vs best {best}");
        }
    }

    /// With an added residual predicate the algorithms still agree.
    #[test]
    fn join_algorithms_agree_with_residual(l in arb_rows(10), r in arb_rows(10)) {
        let (lr, rr) = (rel_from(&l), rel_from(&r));
        let cond = col(0).eq(col(2)).and(col(1).lt(col(3)));
        for jt in [JoinType::Inner, JoinType::Left, JoinType::Full] {
            let nl = run_join(&lr, &rr, jt, cond.clone(), PlannerConfig::nestloop_only());
            let best = run_join(&lr, &rr, jt, cond.clone(), PlannerConfig::all_enabled());
            prop_assert!(nl.same_bag(&best), "{jt:?}");
        }
    }

    /// Inner join commutes (modulo column order).
    #[test]
    fn inner_join_commutes(l in arb_rows(10), r in arb_rows(10)) {
        let (lr, rr) = (rel_from(&l), rel_from(&r));
        let ab = run_join(&lr, &rr, JoinType::Inner, col(0).eq(col(2)),
                          PlannerConfig::all_enabled());
        let ba = run_join(&rr, &lr, JoinType::Inner, col(0).eq(col(2)),
                          PlannerConfig::all_enabled());
        // reorder ba's columns to ab's layout
        let plan = LogicalPlan::inline_scan(ba).project_cols(&[2, 3, 0, 1]);
        let ba = Planner::default().run(&plan, &Catalog::new()).unwrap();
        prop_assert!(ab.same_bag(&ba));
    }

    /// Semi ∪ Anti partitions the left relation.
    #[test]
    fn semi_and_anti_partition_left(l in arb_rows(10), r in arb_rows(10)) {
        let (lr, rr) = (rel_from(&l), rel_from(&r));
        let cond = col(0).eq(col(2));
        let semi = run_join(&lr, &rr, JoinType::Semi, cond.clone(),
                            PlannerConfig::all_enabled());
        let anti = run_join(&lr, &rr, JoinType::Anti, cond,
                            PlannerConfig::all_enabled());
        prop_assert_eq!(semi.len() + anti.len(), lr.len());
        // and they are disjoint on rows (up to multiplicity of l)
        let mut both = semi.rows().to_vec();
        both.extend(anti.rows().iter().cloned());
        let mut l_rows = lr.rows().to_vec();
        both.sort();
        l_rows.sort();
        prop_assert_eq!(both, l_rows);
    }

    /// Set-operation laws under set semantics:
    /// (A ∪ B) = (B ∪ A), A ∩ B ⊆ A, A − B disjoint from B, and
    /// |A ∪ B| = |A∖B| + |B∖A| + |A ∩ B| on deduplicated inputs.
    #[test]
    fn set_operation_laws(l in arb_rows(12), r in arb_rows(12)) {
        let (lr, rr) = (rel_from(&l), rel_from(&r));
        let run = |kind: SetOpKind, a: &Relation, b: &Relation| {
            let plan = LogicalPlan::inline_scan(a.clone())
                .set_op(kind, LogicalPlan::inline_scan(b.clone()));
            Planner::default().run(&plan, &Catalog::new()).unwrap()
        };
        let ab = run(SetOpKind::Union, &lr, &rr);
        let ba = run(SetOpKind::Union, &rr, &lr);
        prop_assert!(ab.same_set(&ba));

        let inter = run(SetOpKind::Intersect, &lr, &rr);
        for row in inter.rows() {
            prop_assert!(lr.rows().contains(row));
            prop_assert!(rr.rows().contains(row));
        }

        let diff = run(SetOpKind::Except, &lr, &rr);
        for row in diff.rows() {
            prop_assert!(!rr.rows().contains(row));
        }
        let rdiff = run(SetOpKind::Except, &rr, &lr);
        prop_assert_eq!(ab.len(), diff.len() + rdiff.len() + inter.len());
    }

    /// Sorting is a permutation and respects the key order.
    #[test]
    fn sort_is_ordered_permutation(rows in arb_rows(20)) {
        let rel = rel_from(&rows);
        let plan = LogicalPlan::inline_scan(rel.clone())
            .sort(vec![SortKey::asc(col(0)), SortKey::desc(col(1))]);
        let out = Planner::default().run(&plan, &Catalog::new()).unwrap();
        prop_assert!(out.same_bag(&rel));
        for w in out.rows().windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let ka = a[0].as_int().unwrap();
            let kb = b[0].as_int().unwrap();
            prop_assert!(ka <= kb);
            if ka == kb {
                prop_assert!(a[1].as_int().unwrap() >= b[1].as_int().unwrap());
            }
        }
    }

    /// DISTINCT yields a set that covers the input.
    #[test]
    fn distinct_contract(rows in arb_rows(20)) {
        let rel = rel_from(&rows);
        let plan = LogicalPlan::inline_scan(rel.clone()).distinct();
        let out = Planner::default().run(&plan, &Catalog::new()).unwrap();
        prop_assert!(out.is_set());
        prop_assert!(out.same_set(&rel));
    }

    /// Aggregates: SUM(v) per group equals the naive fold; COUNT(*) sums
    /// to the input cardinality.
    #[test]
    fn aggregate_contract(rows in arb_rows(20)) {
        let rel = rel_from(&rows);
        let plan = LogicalPlan::inline_scan(rel.clone())
            .aggregate_named(
                vec![(col(0), "k")],
                vec![
                    (AggCall::count_star(), "c"),
                    (AggCall::new(AggFunc::Sum, col(1)), "s"),
                ],
            )
            .unwrap();
        let out = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let mut total = 0i64;
        for row in out.rows() {
            let k = row[0].as_int().unwrap();
            let expect_sum: i64 = rows.iter().filter(|(k2, _)| *k2 == k).map(|(_, v)| v).sum();
            let expect_cnt = rows.iter().filter(|(k2, _)| *k2 == k).count() as i64;
            prop_assert_eq!(row[1].clone(), Value::Int(expect_cnt));
            if expect_cnt > 0 {
                prop_assert_eq!(row[2].clone(), Value::Int(expect_sum));
            }
            total += expect_cnt;
        }
        prop_assert_eq!(total, rows.len() as i64);
    }
}
