//! An Incumben-style workload: job assignments of employees over time
//! (the kind of data the paper's evaluation uses).
//!
//! Demonstrates the group-based operators on a generated dataset:
//! temporal aggregation (staffing level over time), temporal difference
//! (periods where a position was held by someone else), temporal
//! projection, and the anti join (employment gaps).
//!
//! Run with: `cargo run --example employee_history`

use temporal_alignment::core::prelude::*;
use temporal_alignment::datasets::{incumben, prefix, IncumbenSpec};
use temporal_alignment::engine::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small deterministic slice of the Incumben substitute.
    let spec = IncumbenSpec {
        rows: 600,
        employees: 350,
        positions: 40,
        ..Default::default()
    };
    let data = incumben(spec);
    let sample = prefix(&data, 8);
    println!("incumben sample (ssn, pcn, [ts, te) in days):\n{sample}");

    let alg = TemporalAlgebra::default();

    // 1. Staffing level over time: how many assignments are active?
    let staffing = alg.aggregation(
        &data,
        &[],
        vec![(AggCall::count_star(), "active".to_string())],
    )?;
    let peak = staffing
        .iter()
        .map(|(d, _)| d[0].as_int().unwrap())
        .max()
        .unwrap_or(0);
    println!(
        "staffing level: {} change-preserving fragments, peak concurrent assignments = {peak}",
        staffing.len()
    );

    // 2. Per-position occupancy: distinct (pcn, T) spans where the
    //    position is staffed — a temporal projection onto pcn.
    let occupancy = alg.projection(&data, &[1])?;
    println!(
        "per-position occupancy fragments: {} (from {} assignments)",
        occupancy.len(),
        data.len()
    );

    // 3. Employee 0's history vs. position 0's history: when did employee
    //    0 hold a position that someone else also held (at any time)?
    let emp0 = alg.selection(&data, col(0).eq(lit(0i64)))?;
    println!("employee 0 history:\n{emp0}");

    // 4. Temporal difference: spans where position 0 was staffed but NOT
    //    by employee 0.
    let pos0 = alg.projection(&alg.selection(&data, col(1).eq(lit(0i64)))?, &[1])?;
    let pos0_by_emp0 = alg.projection(
        &alg.selection(&data, col(1).eq(lit(0i64)).and(col(0).eq(lit(0i64))))?,
        &[1],
    )?;
    let pos0_by_others = alg.difference(&pos0, &pos0_by_emp0)?;
    println!(
        "position 0 staffed-by-others fragments: {}",
        pos0_by_others.len()
    );

    // 5. Anti join: assignments during which the employee's position had
    //    no *other* overlapping assignment (sole incumbency) — fragments
    //    of assignments not matched by a different ssn on the same pcn.
    // θ over (data ++ data): left = (ssn, pcn, ts, te), right likewise.
    let theta = col(1).eq(col(5)).and(col(0).ne(col(4)));
    let sole = alg.anti_join(&data, &data, Some(theta))?;
    println!(
        "sole-incumbency fragments: {} (from {} assignments)",
        sole.len(),
        data.len()
    );

    // Sanity: every result is a valid duplicate-free temporal relation.
    for (name, rel) in [
        ("staffing", &staffing),
        ("occupancy", &occupancy),
        ("pos0_by_others", &pos0_by_others),
    ] {
        assert!(rel.is_duplicate_free(), "{name} has duplicates");
    }
    println!("all results are duplicate-free temporal relations ✓");

    Ok(())
}
