//! Set operations ∪, ∩, − with set semantics (duplicates eliminated), the
//! semantics the paper assumes for temporal relations (Sec. 3.1).

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::{EngineError, EngineResult};
use crate::exec::{collect_rows, collect_rows_batched, BoxedExec, ExecNode, ExecutionState};
use crate::hashing::FxHashSet;
use crate::plan::SetOpKind;
use crate::schema::Schema;
use crate::tuple::Row;

/// Hash-based UNION / INTERSECT / EXCEPT.
pub struct HashSetOpExec {
    kind: SetOpKind,
    left: BoxedExec,
    right: BoxedExec,
    out: Option<std::vec::IntoIter<Row>>,
}

impl HashSetOpExec {
    pub fn new(kind: SetOpKind, left: BoxedExec, right: BoxedExec) -> EngineResult<Self> {
        if !left.schema().union_compatible(right.schema()) {
            return Err(EngineError::SchemaMismatch(format!(
                "set operation arguments are not union compatible: {} vs {}",
                left.schema(),
                right.schema()
            )));
        }
        Ok(HashSetOpExec {
            kind,
            left,
            right,
            out: None,
        })
    }

    fn compute(&mut self, state: &ExecutionState, batched: bool) -> EngineResult<Vec<Row>> {
        let (left_rows, right_rows) = if batched {
            (
                collect_rows_batched(self.left.as_mut(), state)?,
                collect_rows_batched(self.right.as_mut(), state)?,
            )
        } else {
            (
                collect_rows(self.left.as_mut(), state)?,
                collect_rows(self.right.as_mut(), state)?,
            )
        };
        let mut out = Vec::new();
        match self.kind {
            SetOpKind::Union => {
                let mut seen: FxHashSet<Row> = FxHashSet::default();
                for r in left_rows.into_iter().chain(right_rows) {
                    if seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
            }
            SetOpKind::Intersect => {
                let right_set: FxHashSet<Row> = right_rows.into_iter().collect();
                let mut seen: FxHashSet<Row> = FxHashSet::default();
                for r in left_rows {
                    if right_set.contains(&r) && seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
            }
            SetOpKind::Except => {
                let right_set: FxHashSet<Row> = right_rows.into_iter().collect();
                let mut seen: FxHashSet<Row> = FxHashSet::default();
                for r in left_rows {
                    if !right_set.contains(&r) && seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
            }
        }
        Ok(out)
    }
}

impl ExecNode for HashSetOpExec {
    fn schema(&self) -> &Schema {
        self.left.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.out.is_none() {
            let rows = self.compute(state, false)?;
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("initialized").next())
    }

    /// Batch path: drain both inputs batch-wise, then emit the
    /// (materialized) result a chunk at a time.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.out.is_none() {
            let rows = self.compute(state, true)?;
            self.out = Some(rows.into_iter());
        }
        let it = self.out.as_mut().expect("initialized");
        let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
        if chunk.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.left.schema().clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::{int_rel, rows_of};
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::value::Value;

    fn run(kind: SetOpKind, l: &[i64], r: &[i64]) -> Vec<i64> {
        let left = Box::new(SeqScanExec::new(int_rel("a", l).into_shared()));
        let right = Box::new(SeqScanExec::new(int_rel("a", r).into_shared()));
        let node = HashSetOpExec::new(kind, left, right).unwrap();
        let out = collect(Box::new(node), &ExecutionState::default()).unwrap();
        let mut v: Vec<i64> = rows_of(&out)
            .into_iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn union_dedups() {
        assert_eq!(run(SetOpKind::Union, &[1, 2, 2], &[2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn intersect() {
        assert_eq!(
            run(SetOpKind::Intersect, &[1, 2, 2, 3], &[2, 3, 4]),
            vec![2, 3]
        );
        assert_eq!(run(SetOpKind::Intersect, &[1], &[2]), Vec::<i64>::new());
    }

    #[test]
    fn except() {
        assert_eq!(run(SetOpKind::Except, &[1, 2, 2, 3], &[2]), vec![1, 3]);
        assert_eq!(run(SetOpKind::Except, &[], &[1]), Vec::<i64>::new());
    }

    #[test]
    fn union_compatibility_enforced() {
        use crate::exec::test_util::int2_rel;
        let left = Box::new(SeqScanExec::new(int_rel("a", &[1]).into_shared()));
        let right = Box::new(SeqScanExec::new(
            int2_rel(("a", "b"), &[(1, 2)]).into_shared(),
        ));
        assert!(HashSetOpExec::new(SetOpKind::Union, left, right).is_err());
    }

    #[test]
    fn null_rows_compare_equal_in_setops() {
        use crate::relation::Relation;
        use crate::schema::{Column, DataType, Schema};
        let mk = || {
            Box::new(SeqScanExec::new(
                Relation::from_values(
                    Schema::new(vec![Column::new("a", DataType::Int)]),
                    vec![vec![Value::Null]],
                )
                .unwrap()
                .into_shared(),
            ))
        };
        let node = HashSetOpExec::new(SetOpKind::Except, mk(), mk()).unwrap();
        let out = collect(Box::new(node), &ExecutionState::default()).unwrap();
        assert!(out.is_empty());
    }
}
