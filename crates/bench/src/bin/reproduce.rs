//! Regenerate every table and figure of the paper's evaluation (Sec. 7).
//!
//! ```text
//! cargo run --release -p temporal-bench --bin reproduce [-- <exp> [--full]]
//! ```
//!
//! `<exp>` ∈ {table1, fig13, fig14, fig15a, fig15b, fig15c, fig15d,
//! fig16a, fig16b, ablation, chain, storage, timeslice, wal, serve,
//! observe, all} (default: all). Default sweeps are scaled to run
//! in minutes on a laptop; `--full` uses the paper's input sizes (up to
//! 80k–200k tuples — the quadratic `sql` baselines then take a long time,
//! exactly as in the paper where they run for 1000+ seconds).
//!
//! Absolute times differ from the paper (different hardware and substrate);
//! the *shapes* — who wins, by what factor, where curves cross — are the
//! reproduction target. Results are written to `bench_results/*.csv` and,
//! machine-readably, `bench_results/*.json` (series, n, seconds,
//! output_rows) so the perf trajectory is trackable PR-over-PR.
//!
//! Every figure runs with the paper-faithful [`PlannerConfig::paper`]
//! (the engine's default config auto-enables the sweep interval join,
//! which would change the shapes; the `ablation` experiment measures that
//! extension explicitly).

use std::path::PathBuf;

use temporal_bench::{
    render_table, run_chain, run_normalization, run_o1, run_o2, run_o3, time, write_csv, Approach,
    ChainMode, Point,
};
use temporal_core::semantics::properties::render_table1;
use temporal_datasets::{ddisj, deq, drand, incumben, prefix, random_like_incumben, IncumbenSpec};
use temporal_engine::prelude::*;

fn out_dir() -> PathBuf {
    PathBuf::from("bench_results")
}

/// The paper-faithful planner: PostgreSQL 9.0's join methods only — the
/// sweep interval join extension is neither forced nor auto-selected (the
/// engine's *default* config auto-enables it on overlap patterns, which
/// would change the shape of Figs. 15a–c).
fn paper_planner() -> Planner {
    Planner::new(PlannerConfig::paper())
}

fn print_points(title: &str, points: &[Point]) {
    println!("\n=== {title}");
    println!("runtime [s]:");
    println!("{}", render_table(points, |p| format!("{:.3}", p.seconds)));
    println!("output tuples:");
    println!("{}", render_table(points, |p| p.output_rows.to_string()));
}

fn save(name: &str, points: &[Point]) {
    let path = out_dir().join(format!("{name}.csv"));
    write_csv(&path, points).expect("write csv");
    println!("→ {}", path.display());
    let path = out_dir().join(format!("{name}.json"));
    temporal_bench::write_json(&path, points).expect("write json");
    println!("→ {}", path.display());
}

/// Fig. 13: normalization N_{ssn} under the three join-method settings.
fn fig13(full: bool) {
    let sizes: &[usize] = if full {
        &[10_000, 20_000, 40_000, 80_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    let data = incumben(IncumbenSpec::default());
    // The paper's settings walk the preference list of ITS optimizer:
    // (a) all → merge, (b) merge off → hash, (c) merge+hash off → nestloop.
    // Our cost model prefers hash, so the equivalent walk disables hash in
    // (b) — every setting still runs the best *enabled* method, which is
    // the experiment's claim.
    let settings: [(&str, PlannerConfig); 3] = [
        ("(a) all", PlannerConfig::all_enabled()),
        (
            "(b) -hash",
            PlannerConfig {
                enable_hashjoin: false,
                ..PlannerConfig::paper()
            },
        ),
        ("(c) nestloop", PlannerConfig::nestloop_only()),
    ];
    let mut points = Vec::new();
    for &(label, config) in &settings {
        let planner = Planner::new(config);
        // Report the join algorithm the planner actually picks for the
        // group-construction join under this setting.
        let probe = prefix(&data, sizes[0]);
        let plan = temporal_core::prelude::normalize_plan(
            LogicalPlan::inline_scan(probe.rel().clone()),
            LogicalPlan::inline_scan(probe.rel().clone()),
            &[(0, 0)],
        )
        .expect("normalize plan");
        let physical = planner
            .plan(&plan, &temporal_engine::catalog::Catalog::new())
            .expect("plan");
        let algo = physical.first_join_algorithm().unwrap_or("?");
        let series = format!("{label}={algo}");
        for &n in sizes {
            let r = prefix(&data, n);
            let (dt, rows) = time(|| run_normalization(&r, &[0], &planner));
            points.push(Point {
                series: series.clone(),
                n,
                seconds: dt.as_secs_f64(),
                output_rows: rows,
            });
        }
    }
    print_points(
        "Fig. 13: N_{ssn}(Incumben) — join-method settings (a) all→best, (b) merge off, (c) merge+hash off",
        &points,
    );
    save("fig13_join_methods", &points);
}

/// Fig. 14: normalization with different attribute sets.
fn fig14(full: bool) {
    let sizes: &[usize] = if full {
        &[10_000, 20_000, 40_000, 80_000]
    } else {
        &[500, 1_000, 2_000, 4_000]
    };
    let data = incumben(IncumbenSpec::default());
    let planner = paper_planner();
    let variants: [(&str, &[usize]); 3] = [("N{}", &[]), ("N{pcn}", &[1]), ("N{ssn}", &[0])];
    let mut points = Vec::new();
    for &(label, b) in &variants {
        for &n in sizes {
            // N{} splits every tuple at every endpoint; cap its input so
            // the quick mode finishes (the paper's Fig. 14 runs it to 80k
            // in ~1000 s — same shape, larger constants).
            if label == "N{}" && !full && n > 2_000 {
                continue;
            }
            let r = prefix(&data, n);
            let (dt, rows) = time(|| run_normalization(&r, b, &planner));
            points.push(Point {
                series: label.to_string(),
                n,
                seconds: dt.as_secs_f64(),
                output_rows: rows,
            });
        }
    }
    print_points("Fig. 14: N_{}, N_{pcn}, N_{ssn} on Incumben", &points);
    save("fig14_normalization", &points);
}

fn sweep_two(
    title: &str,
    csv: &str,
    sizes: &[usize],
    approaches: &[Approach],
    mut run: impl FnMut(Approach, usize) -> (f64, usize),
) {
    let mut points = Vec::new();
    for &a in approaches {
        for &n in sizes {
            let (secs, rows) = run(a, n);
            points.push(Point {
                series: a.label().to_string(),
                n,
                seconds: secs,
                output_rows: rows,
            });
        }
    }
    print_points(title, &points);
    save(csv, &points);
}

/// Fig. 15a: O1 on Ddisj (sql's NOT EXISTS degenerates: quadratic).
fn fig15a(full: bool) {
    let sizes: &[usize] = if full {
        &[20_000, 40_000, 60_000, 80_000, 100_000]
    } else {
        &[2_000, 4_000, 8_000, 16_000]
    };
    sweep_two(
        "Fig. 15a: O1 = r ⟕ᵀ_true s on Ddisj",
        "fig15a_o1_ddisj",
        sizes,
        &[Approach::Sql, Approach::Align],
        |a, n| {
            let (r, s) = ddisj(n);
            let planner = paper_planner();
            let (dt, rows) = time(|| run_o1(a, &r, &s, &planner));
            (dt.as_secs_f64(), rows)
        },
    );
}

/// Fig. 15b: O1 on Deq (sql's best case; align pays adjustment overhead).
fn fig15b(full: bool) {
    let sizes: &[usize] = if full {
        &[2_000, 4_000, 6_000, 8_000, 10_000]
    } else {
        &[250, 500, 1_000, 2_000]
    };
    sweep_two(
        "Fig. 15b: O1 = r ⟕ᵀ_true s on Deq",
        "fig15b_o1_deq",
        sizes,
        &[Approach::Align, Approach::Sql],
        |a, n| {
            let (r, s) = deq(n);
            let planner = paper_planner();
            let (dt, rows) = time(|| run_o1(a, &r, &s, &planner));
            (dt.as_secs_f64(), rows)
        },
    );
}

/// Fig. 15c: O2 on Drand (θ with DUR defeats efficient NOT EXISTS).
fn fig15c(full: bool) {
    let sizes: &[usize] = if full {
        &[40_000, 80_000, 120_000, 160_000, 200_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    sweep_two(
        "Fig. 15c: O2 = r ⟕ᵀ(Min ≤ DUR(r.T) ≤ Max) s on Drand",
        "fig15c_o2_drand",
        sizes,
        &[Approach::Sql, Approach::Align],
        |a, n| {
            let (r, s) = drand(n, 20120520);
            let planner = paper_planner();
            let (dt, rows) = time(|| run_o2(a, &r, &s, &planner));
            (dt.as_secs_f64(), rows)
        },
    );
}

/// Fig. 15d: O3 on Incumben (equality predicate → both fast; align wins).
fn fig15d(full: bool) {
    let sizes: &[usize] = if full {
        &[10_000, 20_000, 40_000, 80_000]
    } else {
        &[2_000, 4_000, 8_000, 16_000]
    };
    let data = incumben(IncumbenSpec::default());
    sweep_two(
        "Fig. 15d: O3 = r ⟗ᵀ(r.pcn = s.pcn) s on Incumben",
        "fig15d_o3_incumben",
        sizes,
        &[Approach::Sql, Approach::Align],
        |a, n| {
            let r = prefix(&data, n);
            let planner = paper_planner();
            let (dt, rows) = time(|| run_o3(a, &r, &r, &planner));
            (dt.as_secs_f64(), rows)
        },
    );
}

/// Fig. 16a: O3 on Incumben — align vs sql+normalize.
fn fig16a(full: bool) {
    let sizes: &[usize] = if full {
        &[10_000, 20_000, 40_000, 80_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    let data = incumben(IncumbenSpec::default());
    sweep_two(
        "Fig. 16a: O3 on Incumben — align vs sql+normalize",
        "fig16a_o3_incumben",
        sizes,
        &[Approach::SqlNormalize, Approach::Align],
        |a, n| {
            let r = prefix(&data, n);
            let planner = paper_planner();
            let (dt, rows) = time(|| run_o3(a, &r, &r, &planner));
            (dt.as_secs_f64(), rows)
        },
    );
}

/// Fig. 16b: O3 on the random dataset (more splitting points).
fn fig16b(full: bool) {
    let sizes: &[usize] = if full {
        &[40_000, 80_000, 120_000, 160_000, 200_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    sweep_two(
        "Fig. 16b: O3 on the random dataset — align vs sql+normalize",
        "fig16b_o3_random",
        sizes,
        &[Approach::SqlNormalize, Approach::Align],
        |a, n| {
            let positions = (n / 12).max(4);
            let r = random_like_incumben(n, positions, 433);
            let planner = paper_planner();
            let (dt, rows) = time(|| run_o3(a, &r, &r, &planner));
            (dt.as_secs_f64(), rows)
        },
    );
}

/// Ablation (future work, Sec. 8): alignment with the sweep-based
/// interval join vs. the paper-faithful nested loop on O1/Ddisj.
fn ablation(full: bool) {
    let sizes: &[usize] = if full {
        &[10_000, 20_000, 40_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000]
    };
    let paper = paper_planner();
    let extended = Planner::new(PlannerConfig {
        enable_intervaljoin: true,
        ..PlannerConfig::paper()
    });
    let mut points = Vec::new();
    for &n in sizes {
        let (r, s) = ddisj(n);
        let (dt, rows) = time(|| run_o1(Approach::Align, &r, &s, &paper));
        points.push(Point {
            series: "align (nestloop)".into(),
            n,
            seconds: dt.as_secs_f64(),
            output_rows: rows,
        });
        let (dt, rows) = time(|| run_o1(Approach::Align, &r, &s, &extended));
        points.push(Point {
            series: "align (sweep)".into(),
            n,
            seconds: dt.as_secs_f64(),
            output_rows: rows,
        });
    }
    print_points(
        "Ablation (Sec. 8 future work): sweep interval join for group construction, O1 on Ddisj",
        &points,
    );
    save("ablation_interval_join", &points);

    // Second ablation: the customized anti-join primitive (gaps-only
    // sweep) vs the generic Table 2 reduction, on Incumben.
    let data = incumben(IncumbenSpec::default());
    let alg = temporal_core::prelude::TemporalAlgebra::new(PlannerConfig::paper());
    // Sole incumbency: spans of an assignment with no overlapping
    // assignment of the same position by a *different* employee (a self
    // anti join with pcn = pcn would be vacuously empty).
    let theta = || Some(col(1).eq(col(5)).and(col(0).ne(col(4))));
    let mut points = Vec::new();
    for &n in sizes {
        let r = prefix(&data, n);
        let (dt, out) = time(|| alg.anti_join(&r, &r, theta()).unwrap().len());
        points.push(Point {
            series: "antijoin (generic)".into(),
            n,
            seconds: dt.as_secs_f64(),
            output_rows: out,
        });
        let (dt, out) = time(|| alg.anti_join_optimized(&r, &r, theta()).unwrap().len());
        points.push(Point {
            series: "antijoin (gaps-only)".into(),
            n,
            seconds: dt.as_secs_f64(),
            output_rows: out,
        });
    }
    print_points(
        "Ablation (Sec. 8 future work): customized anti-join primitive, r ▷ᵀ(pcn=pcn ∧ ssn≠ssn) r on Incumben",
        &points,
    );
    save("ablation_antijoin", &points);
}

/// The plan-first chain benchmark (not a paper figure): the 3-operator
/// query ϑᵀ ∘ σᵀ ∘ ⋈ᵀ evaluated eagerly (one `Planner::run` per operator,
/// materializing between) vs compiled into one `TemporalPlan` — the
/// compiled plan drained row-at-a-time (`plan-first-rows`, the PR 2 path)
/// vs batch-wise (`plan-first`, the vectorized executor). Each point is
/// the best of three runs, so one-off allocator/scheduler noise does not
/// distort the row-vs-batch ratio the CI smoke step records.
fn chain(full: bool) {
    let sizes: &[usize] = if full {
        &[2_000, 4_000, 8_000, 16_000]
    } else {
        &[500, 1_000, 2_000, 4_000, 8_000]
    };
    let data = incumben(IncumbenSpec::default());
    let planner = paper_planner();
    let mut points = Vec::new();
    for &n in sizes {
        let r = prefix(&data, n);
        let cap = (n / 10) as i64;
        for mode in [
            ChainMode::Eager,
            ChainMode::PlanFirstRows,
            ChainMode::PlanFirst,
            ChainMode::PlanFirstNoRewrites,
        ] {
            let (dt, rows) = (0..3)
                .map(|_| time(|| run_chain(mode, &r, &r, cap, &planner)))
                .min_by(|a, b| a.0.cmp(&b.0))
                .expect("three runs");
            points.push(Point {
                series: mode.label().into(),
                n,
                seconds: dt.as_secs_f64(),
                output_rows: rows,
            });
        }
    }
    print_points(
        "Chain (plan-first): ϑᵀ_{pcn} ∘ σᵀ_{ssn<n/10} ∘ ⋈ᵀ_{pcn} on Incumben — rows vs batches",
        &points,
    );
    save("chain_pipeline", &points);

    // Thread scaling: the same compiled plan through the morsel-driven
    // executor at threads ∈ {1, 2, 4}. Only the larger sizes — below a few
    // thousand tuples the `parallel_min_rows` gate (correctly) keeps
    // everything serial and the series would just repeat itself.
    let scaling_sizes = &sizes[sizes.len().saturating_sub(3)..];
    let mut scaling = Vec::new();
    for &n in scaling_sizes {
        let r = prefix(&data, n);
        let cap = (n / 10) as i64;
        for threads in [1usize, 2, 4] {
            let planner = Planner::new(PlannerConfig {
                threads,
                ..planner.config
            });
            let (dt, rows) = (0..3)
                .map(|_| time(|| run_chain(ChainMode::PlanFirst, &r, &r, cap, &planner)))
                .min_by(|a, b| a.0.cmp(&b.0))
                .expect("three runs");
            scaling.push(Point {
                series: format!("plan-first(threads={threads})"),
                n,
                seconds: dt.as_secs_f64(),
                output_rows: rows,
            });
        }
    }
    print_points(
        "Chain thread scaling: the same plan-first chain at threads ∈ {1, 2, 4}",
        &scaling,
    );
    if let Some(&n_max) = scaling_sizes.last() {
        let secs = |threads: usize| {
            scaling
                .iter()
                .find(|p| p.n == n_max && p.series.ends_with(&format!("threads={threads})")))
                .map(|p| p.seconds)
        };
        if let (Some(t1), Some(t4)) = (secs(1), secs(4)) {
            println!(
                "speedup at n={n_max}: threads=4 is {:.2}× over threads=1",
                t1 / t4
            );
        }
    }
    save("thread_scaling", &scaling);
}

/// The paged-storage scan benchmark (not a paper figure): a full-table
/// scan + temporal aggregation over the same relation backed (a) by the
/// in-memory catalog (`SeqScan`) and (b) by a heap file behind a buffer
/// pool capped well below the table's page count (`StorageScan`), so the
/// paged series measures genuine page streaming, not a warm cache. Each
/// point is the best of three runs.
fn storage(full: bool) {
    use temporal_core::prelude::Database;
    let sizes: &[usize] = if full {
        &[25_000, 50_000, 100_000, 200_000]
    } else {
        &[2_500, 5_000, 10_000, 20_000]
    };
    const POOL: usize = 8;
    let dir = std::env::temp_dir().join("talign_bench_scan_storage");
    let _ = std::fs::remove_dir_all(&dir);
    let mut points = Vec::new();
    for &n in sizes {
        let (r, _) = drand(n, 7);
        // A full-table scan with a selective filter: the work is page
        // fetch + tuple decode (paged) vs row-clone (in-memory), without
        // result materialization dominating either series.
        let scan_len = |db: &Database| {
            db.table("r")
                .unwrap()
                .filter(col("id").lt(lit(0i64)))
                .collect()
                .expect("scan")
                .len()
        };

        let mem = Database::new();
        mem.register("r", &r).expect("register in-memory");
        let (dt, rows) = (0..3)
            .map(|_| time(|| scan_len(&mem)))
            .min_by(|a, b| a.0.cmp(&b.0))
            .expect("three runs");
        points.push(Point {
            series: "in-memory".into(),
            n,
            seconds: dt.as_secs_f64(),
            output_rows: rows,
        });

        let db = Database::open_with_pool(dir.join(n.to_string()), POOL).expect("open storage dir");
        db.register("r", &r).expect("register persisted");
        let pages = db.read(|catalog, _| match catalog.source("r").expect("source") {
            TableSource::Stored(t) => t.page_count(),
            TableSource::Mem(_) => unreachable!("durable register backs with a heap"),
        });
        assert!(
            pages as usize > POOL,
            "benchmark invariant: table ({pages} pages) must exceed the {POOL}-frame pool"
        );
        let (dt, rows) = (0..3)
            .map(|_| time(|| scan_len(&db)))
            .min_by(|a, b| a.0.cmp(&b.0))
            .expect("three runs");
        points.push(Point {
            series: format!("paged(pool={POOL})"),
            n,
            seconds: dt.as_secs_f64(),
            output_rows: rows,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    print_points(
        "Storage: full-table filter scan over heap pages (pool below table size) vs in-memory rows",
        &points,
    );
    save("scan_storage", &points);
}

/// Timeslice (`AS OF`) over a persisted table under the three access
/// paths: full scan (pruning off), zone-map pruned scan (index off), and
/// the interval-index probe (defaults). Ddisj data is time-clustered in
/// heap order — the page-pruning best case, and the shape the paper's
/// timeslice queries assume.
fn timeslice(full: bool) {
    use temporal_core::prelude::Database;
    let sizes: &[usize] = if full {
        &[25_000, 50_000, 100_000, 200_000]
    } else {
        &[2_500, 5_000, 10_000, 20_000]
    };
    const POOL: usize = 8;
    let dir = std::env::temp_dir().join("talign_bench_timeslice");
    let _ = std::fs::remove_dir_all(&dir);
    let settings: [(&str, bool, bool); 3] = [
        ("full-scan", false, false),
        ("zonemap", true, false),
        ("index", true, true),
    ];
    let mut points = Vec::new();
    let mut per_n: Vec<(usize, f64, f64)> = Vec::new(); // (n, full, best-pruned)
    for &n in sizes {
        let (r, _) = ddisj(n);
        // Mid-timeline instant: hits exactly one ddisj slot.
        let v = 20 * (n as i64 / 2) + 2;
        let db = Database::open_with_pool(dir.join(n.to_string()), POOL).expect("open storage dir");
        db.register("r", &r).expect("register persisted");
        let (mut t_full, mut t_pruned) = (f64::MAX, f64::MAX);
        for &(series, zonemaps, index) in &settings {
            db.set("enable_zonemaps", zonemaps).expect("set zonemaps");
            db.set("enable_interval_index", index).expect("set index");
            let (dt, rows) = (0..3)
                .map(|_| {
                    time(|| {
                        db.table("r")
                            .unwrap()
                            .as_of(v)
                            .collect()
                            .expect("as of")
                            .len()
                    })
                })
                .min_by(|a, b| a.0.cmp(&b.0))
                .expect("three runs");
            let secs = dt.as_secs_f64();
            if zonemaps {
                t_pruned = t_pruned.min(secs);
            } else {
                t_full = secs;
            }
            points.push(Point {
                series: series.into(),
                n,
                seconds: secs,
                output_rows: rows,
            });
        }
        per_n.push((n, t_full, t_pruned));
    }
    let _ = std::fs::remove_dir_all(&dir);
    print_points(
        "Timeslice: AS OF over a persisted table — full scan vs zone maps vs interval index",
        &points,
    );
    for (n, t_full, t_pruned) in &per_n {
        println!(
            "n={n}: pruned timeslice {:.1}× over full scan",
            t_full / t_pruned.max(1e-9)
        );
    }
    save("timeslice", &points);
}

/// Durability cost and recovery speed (ISSUE 8): single-row insert
/// throughput under the three `sync_mode` policies, and the time to
/// reopen after a simulated crash (the handle is leaked, so every
/// insert since the last checkpoint exists only in the WAL and must be
/// replayed). `off` never fsyncs, `commit` fsyncs once per insert
/// batch, `always` fsyncs every record — the spread between the series
/// is the price of each durability guarantee.
fn wal(full: bool) {
    use temporal_core::prelude::Database;
    let sizes: &[usize] = if full {
        &[2_000, 5_000, 10_000]
    } else {
        &[250, 500, 1_000]
    };
    let dir = std::env::temp_dir().join("talign_bench_wal");
    let _ = std::fs::remove_dir_all(&dir);
    let mut points = Vec::new();
    for &n in sizes {
        for mode in ["off", "commit", "always"] {
            let d = dir.join(format!("{mode}-{n}"));
            let db = Database::open(&d).expect("open wal bench dir");
            db.set_str("sync_mode", mode).expect("set sync_mode");
            let (base, _) = ddisj(16);
            db.register("t", &base).expect("register");
            let (dt, rows) = time(|| {
                for i in 0..n as i64 {
                    let row = vec![Value::Int(i), Value::Int(2 * i), Value::Int(2 * i + 1)];
                    db.insert_rows("t", vec![row.into()]).expect("insert");
                }
                n
            });
            points.push(Point {
                series: format!("insert({mode})"),
                n,
                seconds: dt.as_secs_f64(),
                output_rows: rows,
            });
            // Crash by leaking the handle: no flush, no checkpoint — the
            // reopen below replays every insert from the log and rebuilds
            // the interval index, which is what this series times.
            std::mem::forget(db);
            let (dt, rows) = time(|| {
                let db = Database::open(&d).expect("recover");
                db.table("t").expect("table").collect().expect("scan").len()
            });
            points.push(Point {
                series: format!("recover({mode})"),
                n,
                seconds: dt.as_secs_f64(),
                output_rows: rows,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    print_points(
        "WAL: per-row insert cost under sync_mode ∈ {off, commit, always} and crash-recovery replay",
        &points,
    );
    save("wal", &points);
}

/// Group commit under concurrent clients (ISSUE 9): 1–8 connections
/// hammer one *served* database with single-batch `INSERT`s over the
/// wire under `sync_mode = commit`. Commits overlap, so the WAL's
/// group-commit flusher satisfies several of them with one fsync —
/// the reported `fsyncs/commit` drops below 1 as soon as committers
/// run concurrently, while `commits/s` holds or rises.
fn serve(full: bool) {
    use temporal_core::prelude::Database;
    use temporal_server::{Client, Response, Server};
    let commits_per_client: usize = if full { 400 } else { 100 };
    let dir = std::env::temp_dir().join("talign_bench_serve");
    let _ = std::fs::remove_dir_all(&dir);
    let mut points = Vec::new();
    for &clients in &[1usize, 2, 4, 8] {
        let d = dir.join(format!("c{clients}"));
        let db = Database::open(&d).expect("open serve bench dir");
        db.set_str("sync_mode", "commit").expect("set sync_mode");
        let (base, _) = ddisj(16);
        db.register("t", &base).expect("register");
        let w0 = db.wal_stats().expect("wal stats");
        let server = Server::bind(db.clone(), "127.0.0.1:0").expect("bind");
        let addr = server.addr().to_string();
        let handle = server.spawn();
        let (dt, _) = time(|| {
            let threads: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let mut cl = Client::connect(&addr).expect("connect");
                        for i in 0..commits_per_client {
                            let j = (c * commits_per_client + i) as i64;
                            let sql =
                                format!("INSERT INTO t VALUES ({j}, {}, {})", 2 * j, 2 * j + 1);
                            loop {
                                match cl.execute(&sql).expect("insert") {
                                    Response::Affected(_) => break,
                                    Response::Error(e) if e.contains("busy") => continue,
                                    other => panic!("insert: {other:?}"),
                                }
                            }
                        }
                        let _ = cl.quit();
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("client thread");
            }
            clients * commits_per_client
        });
        let w1 = db.wal_stats().expect("wal stats");
        handle.stop();
        let commits = (w1.commits - w0.commits).max(1);
        let syncs = w1.syncs - w0.syncs;
        println!(
            "clients={clients}: {:.0} commits/s, {:.3} fsyncs/commit ({commits} commits, {syncs} fsyncs)",
            commits as f64 / dt.as_secs_f64(),
            syncs as f64 / commits as f64
        );
        points.push(Point {
            series: "commits".into(),
            n: clients,
            seconds: dt.as_secs_f64(),
            output_rows: commits as usize,
        });
        points.push(Point {
            series: "io_syncs".into(),
            n: clients,
            seconds: dt.as_secs_f64(),
            output_rows: syncs as usize,
        });
        db.close().expect("close");
    }
    let _ = std::fs::remove_dir_all(&dir);
    print_points(
        "Serve: group commit — concurrent committers share WAL fsyncs (fsyncs/commit = io_syncs ÷ commits per row pair)",
        &points,
    );
    save("serve", &points);
}

/// Observability overhead smoke (ISSUE 10): the plan-first chain pipeline
/// run with per-operator instrumentation **off** vs **on** (the wrappers
/// `EXPLAIN ANALYZE`, `trace` and `slow_query_ms` insert). Both arms run
/// the identical physical plan; best-of-N of each, interleaved so
/// allocator/scheduler drift hits both arms alike. Asserts the "free when
/// off, cheap when on" contract: instrumented runtime within 5% of plain
/// (with a half-millisecond absolute floor so micro-runs don't flake),
/// and identical output cardinality.
fn observe(full: bool) {
    use std::time::Duration;
    use temporal_core::prelude::TemporalPlan;
    let n: usize = if full { 16_000 } else { 8_000 };
    let reps = 5;
    let data = incumben(IncumbenSpec::default());
    let r = prefix(&data, n);
    let cap = (n / 10) as i64;
    let config = PlannerConfig::paper();
    let planner = Planner::new(config);
    // The chain benchmark's pipeline: ϑᵀ_{pcn} ∘ σᵀ_{ssn<cap} ∘ ⋈ᵀ_{pcn}.
    let plan = TemporalPlan::scan(&r)
        .join(TemporalPlan::scan(&r), Some(col(1).eq(col(5))))
        .expect("chain join")
        .selection(col(0).lt(lit(Value::Int(cap))))
        .expect("chain selection")
        .aggregation(&[1], vec![(AggCall::count_star(), "cnt".to_string())])
        .expect("chain aggregation");
    let physical = plan
        .physical(&planner, &temporal_engine::catalog::Catalog::new())
        .expect("chain plan");
    let run_once = |instrument: bool| {
        let state = if instrument {
            ExecutionState::new(config).with_instrumentation()
        } else {
            ExecutionState::new(config)
        };
        physical.collect(&state).expect("chain run").len()
    };
    let (mut best_off, mut best_on) = (Duration::MAX, Duration::MAX);
    let (mut rows_off, mut rows_on) = (0usize, 0usize);
    for _ in 0..reps {
        let (dt, rows) = time(|| run_once(false));
        best_off = best_off.min(dt);
        rows_off = rows;
        let (dt, rows) = time(|| run_once(true));
        best_on = best_on.min(dt);
        rows_on = rows;
    }
    let overhead = best_on.as_secs_f64() / best_off.as_secs_f64() - 1.0;
    let points = vec![
        Point {
            series: "instrument=off".into(),
            n,
            seconds: best_off.as_secs_f64(),
            output_rows: rows_off,
        },
        Point {
            series: "instrument=on".into(),
            n,
            seconds: best_on.as_secs_f64(),
            output_rows: rows_on,
        },
    ];
    print_points(
        "Observe: chain pipeline, EXPLAIN ANALYZE instrumentation off vs on (< 5% budget)",
        &points,
    );
    println!("instrumentation overhead: {:+.2}%", overhead * 100.0);
    // Show the artifact the instrumentation buys: the annotated tree of
    // one instrumented run.
    let state = ExecutionState::new(config).with_instrumentation();
    physical.collect(&state).expect("chain run");
    println!("\n{}", physical.explain_analyze(&state));
    save("observe", &points);
    assert_eq!(
        rows_off, rows_on,
        "instrumentation changed the result cardinality"
    );
    assert!(
        overhead < 0.05 || best_on.saturating_sub(best_off) < Duration::from_micros(500),
        "instrumentation overhead {:.2}% exceeds the 5% budget ({best_off:?} off, {best_on:?} on)",
        overhead * 100.0
    );
}

fn table1() {
    println!("\n=== Table 1 (verified executably in semantics::properties)");
    println!("{}", render_table1());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let exp = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    println!(
        "Temporal Alignment (SIGMOD 2012) — evaluation reproduction ({} mode)",
        if full { "full" } else { "quick" }
    );

    match exp.as_str() {
        "table1" => table1(),
        "fig13" => fig13(full),
        "fig14" => fig14(full),
        "fig15a" => fig15a(full),
        "fig15b" => fig15b(full),
        "fig15c" => fig15c(full),
        "fig15d" => fig15d(full),
        "fig16a" => fig16a(full),
        "fig16b" => fig16b(full),
        "ablation" => ablation(full),
        "chain" => chain(full),
        "storage" => storage(full),
        "timeslice" => timeslice(full),
        "wal" => wal(full),
        "serve" => serve(full),
        "observe" => observe(full),
        "all" => {
            table1();
            fig13(full);
            fig14(full);
            fig15a(full);
            fig15b(full);
            fig15c(full);
            fig15d(full);
            fig16a(full);
            fig16b(full);
            ablation(full);
            chain(full);
            storage(full);
            timeslice(full);
            wal(full);
            serve(full);
            observe(full);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; use table1|fig13|fig14|fig15a|fig15b|fig15c|fig15d|fig16a|fig16b|ablation|chain|storage|timeslice|wal|serve|observe|all"
            );
            std::process::exit(2);
        }
    }
}
