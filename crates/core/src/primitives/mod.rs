//! The temporal primitives of the paper.
//!
//! * [`extend`] — timestamp propagation `U(r)` (Def. 3), the mechanism
//!   behind extended snapshot reducibility;
//! * [`splitter`] — the temporal splitter (Def. 8) and normalization
//!   `N_B(r; s)` (Def. 9) for group-based operators {π, ϑ, ∪, −, ∩};
//! * [`aligner`] — the temporal aligner (Def. 10) and alignment `r Φ_θ s`
//!   (Def. 11) for tuple-based operators {σ, ×, ⋈, outer joins, ▷};
//! * [`absorb`] — the absorb operator α (Def. 12) removing temporal
//!   duplicates;
//! * [`adjustment`] — the paper's pipelined plane-sweep executor
//!   `ExecAdjustment` (Fig. 10) and the plan constructions of Figs. 8/9/12,
//!   shared by alignment (`isalign = true`) and normalization
//!   (`isalign = false`).
//!
//! Each primitive exists twice: a specification-level implementation
//! straight from the definitions (quadratic, obviously correct — used as a
//! test oracle) and the efficient plan/executor used by the algebra.

pub mod absorb;
pub mod adjustment;
pub mod aligner;
pub mod extend;
pub(crate) mod parallel;
pub mod splitter;
