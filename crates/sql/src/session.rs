//! A SQL session over the shared [`Database`] front door.
//!
//! The session no longer owns a private catalog/planner pair: it wraps a
//! [`Database`] handle — the same object behind the Rust
//! `TemporalFrame` API — so tables registered through either surface are
//! visible to both, and a `SET` statement reconfigures the one shared
//! planner. [`DatabaseSqlExt`] adds `db.sql("…")` directly on
//! [`Database`], making SQL a method call away from any frame code.

use std::sync::Arc;
use std::time::{Duration, Instant};

use temporal_core::prelude::{Database, SessionGuard};
use temporal_core::trel::TemporalRelation;
use temporal_engine::prelude::*;

use crate::analyzer::Analyzer;
use crate::ast::{AstExpr, CopyDirection, SetValue, Statement};
use crate::csv::{relation_to_csv, rows_from_csv};
use crate::error::{SqlError, SqlResult};
use crate::parser::parse_statement;

/// Result of executing a statement.
#[derive(Debug, Clone)]
pub enum SqlOutput {
    /// A query result.
    Rows(Relation),
    /// An EXPLAIN plan rendering.
    Explain(String),
    /// A statement with no result (e.g. SET, CREATE TABLE, DROP TABLE).
    Ok,
    /// A statement that affected `n` rows (e.g. COPY).
    Affected(usize),
}

impl SqlOutput {
    /// Unwrap a row result.
    pub fn rows(self) -> SqlResult<Relation> {
        match self {
            SqlOutput::Rows(r) => Ok(r),
            other => Err(SqlError::Engine(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }
}

/// An interactive session (the paper's psql-with-extensions equivalent).
///
/// The session is a view over one shared [`Database`]: statements are
/// analyzed against its catalog and executed with its planner, and `SET`
/// mutates the shared planner configuration — so frames and other
/// sessions on the same database observe the change. (The [`Analyzer`] is
/// a zero-allocation view over the catalog and is constructed per
/// statement.)
///
/// [`Session::scoped`] builds the *server* flavor instead: planner `SET`s
/// apply to a per-session overlay (other connections are unaffected), and
/// the session registers itself with the database so a concurrent
/// `close()` leaves the buffer pools alone until the last connection
/// leaves. Storage-global settings (`sync_mode`, `wal_checkpoint_pages`)
/// stay shared either way — there is one WAL.
#[derive(Debug, Default, Clone)]
pub struct Session {
    db: Database,
    /// Per-session planner-config overlay: when `Some`, `SET` writes here
    /// and queries plan with it; the shared planner is untouched.
    local: Option<PlannerConfig>,
    /// Open-session registration (scoped sessions only); shared so the
    /// session stays `Clone`.
    _guard: Option<Arc<SessionGuard>>,
}

impl Session {
    /// A session over a fresh, private [`Database`].
    pub fn new() -> Session {
        Session::default()
    }

    /// A session over an existing [`Database`] — the unified front door:
    /// tables registered on `db` (or via frames) are queryable here, and
    /// vice versa.
    pub fn with_database(db: Database) -> Session {
        Session {
            db,
            local: None,
            _guard: None,
        }
    }

    /// A connection-scoped session over a shared [`Database`]: planner
    /// `SET` statements apply only to this session (seeded from the
    /// shared config at creation), and the session is counted in
    /// [`Database::open_sessions`] until dropped. This is what the server
    /// hands each client connection.
    pub fn scoped(db: Database) -> Session {
        let local = Some(db.config());
        let guard = Arc::new(db.open_session());
        Session {
            db,
            local,
            _guard: Some(guard),
        }
    }

    /// The shared database handle behind this session.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Register a plain relation as a table.
    pub fn register_table(&mut self, name: impl Into<String>, rel: Relation) -> SqlResult<()> {
        self.db
            .register_relation(name, rel)
            .map_err(|e| SqlError::Engine(e.to_string()))
    }

    /// Register a temporal relation (its ts/te columns become ordinary
    /// Int columns, as in the paper's PostgreSQL implementation). Routed
    /// through the shared catalog; rows are shared, not copied.
    pub fn register_temporal(
        &mut self,
        name: impl Into<String>,
        rel: &TemporalRelation,
    ) -> SqlResult<()> {
        self.db
            .register(name, rel)
            .map_err(|e| SqlError::Engine(e.to_string()))
    }

    /// The planner configuration this session executes under: the local
    /// overlay for a [`Session::scoped`] session, the shared config
    /// otherwise.
    pub fn config(&self) -> PlannerConfig {
        match self.local {
            Some(cfg) => cfg,
            None => self.db.config(),
        }
    }

    /// Execute one statement. Every statement's wall-time is recorded in
    /// the shared `session.statement_us` latency histogram (what the
    /// server's `.stats` reports percentiles over); the `trace` and
    /// `slow_query_ms` GUCs add spans / slow-statement logs on the query
    /// paths.
    pub fn execute(&mut self, sql: &str) -> SqlResult<SqlOutput> {
        let stmt = parse_statement(sql)?;
        let started = Instant::now();
        let out = self.run_statement(sql, stmt);
        let metrics = self.db.metrics();
        metrics.counter("session.statements").inc();
        if out.is_err() {
            metrics.counter("session.errors").inc();
        }
        metrics
            .histogram("session.statement_us")
            .record(started.elapsed().as_micros() as u64);
        out
    }

    /// Post-execution observability for one executed query: emit
    /// query/operator spans while `trace` is on, and log an operator
    /// breakdown to stderr when the statement overran `slow_query_ms`.
    fn observe_query(
        &self,
        sql: &str,
        config: &PlannerConfig,
        elapsed: Duration,
        trace_start_us: Option<u64>,
        physical: &PhysicalPlan,
        state: &ExecutionState,
    ) {
        if config.slow_query_ms > 0 && elapsed.as_millis() >= config.slow_query_ms as u128 {
            eprintln!(
                "slow statement ({:.3} ms, slow_query_ms={}): {sql}\n{}",
                elapsed.as_secs_f64() * 1e3,
                config.slow_query_ms,
                physical.explain_analyze(state)
            );
        }
        let Some(t0) = trace_start_us else { return };
        let tracer = self.db.tracer();
        // Operator spans share the query's start offset (per-pull times
        // interleave; only totals are kept) and sit on depth lanes so
        // they stack under the query span in a trace viewer.
        for (depth, label, op) in physical.operator_stats(state) {
            tracer.record(Span {
                name: label,
                cat: "operator",
                start_us: t0,
                dur_us: op.micros(),
                tid: depth as u64 + 1,
            });
        }
        tracer.record_since(sql, "query", t0, 0);
    }

    fn run_statement(&mut self, sql: &str, stmt: Statement) -> SqlResult<SqlOutput> {
        match stmt {
            Statement::Set { name, value } => {
                match (&mut self.local, value) {
                    // `sync_mode` is string-valued, but `off`/`on` lex as
                    // booleans — route them back to their spellings. Like
                    // `wal_checkpoint_pages` it is storage-global (one
                    // WAL), so it bypasses the session overlay.
                    (_, SetValue::Bool(b)) if name.eq_ignore_ascii_case("sync_mode") => {
                        self.db.set_str(&name, if b { "on" } else { "off" })
                    }
                    (_, SetValue::Ident(v)) => self.db.set_str(&name, &v),
                    (_, SetValue::Int(i)) if name.eq_ignore_ascii_case("wal_checkpoint_pages") => {
                        self.db.set_int(&name, i)
                    }
                    // Scoped session: planner switches land in the local
                    // overlay, other connections keep their settings.
                    (Some(local), SetValue::Bool(b)) => local.set(&name, b).map_err(Into::into),
                    (Some(local), SetValue::Int(i)) => local.set_int(&name, i).map_err(Into::into),
                    (None, SetValue::Bool(b)) => self.db.set(&name, b),
                    (None, SetValue::Int(i)) => self.db.set_int(&name, i),
                }
                .map_err(|e: temporal_core::prelude::TemporalError| {
                    SqlError::Analyze(e.to_string())
                })?;
                Ok(SqlOutput::Ok)
            }
            Statement::Explain { analyze, query } => match *query {
                Statement::Select(sel) => {
                    let config = self.config();
                    let local = self.local;
                    let trace_t0 = (analyze && config.trace).then(|| self.db.tracer().now_us());
                    let physical = self.db.read(|catalog, shared| {
                        let planner;
                        let planner = match local {
                            Some(cfg) => {
                                planner = Planner::new(cfg);
                                &planner
                            }
                            None => shared,
                        };
                        let plan = Analyzer::new(catalog).analyze(&sel)?;
                        planner.plan(&plan, catalog).map_err(SqlError::from)
                    })?;
                    let text = if analyze {
                        // ANALYZE really executes (result discarded) with
                        // per-operator instrumentation — outside the shared
                        // lock, like any SELECT — then annotates the same
                        // tree EXPLAIN prints.
                        let state = ExecutionState::new(config).with_instrumentation();
                        let started = Instant::now();
                        physical.collect(&state).map_err(SqlError::from)?;
                        self.observe_query(
                            sql,
                            &config,
                            started.elapsed(),
                            trace_t0,
                            &physical,
                            &state,
                        );
                        physical.explain_analyze(&state)
                    } else if config.threads > 1 {
                        // Under a parallel configuration, show the execution
                        // shape (exchanges, partition counts) too.
                        physical.explain_parallel(&config)
                    } else {
                        physical.explain()
                    };
                    Ok(SqlOutput::Explain(text))
                }
                other => Err(SqlError::Analyze(format!(
                    "EXPLAIN supports SELECT statements, got {other:?}"
                ))),
            },
            Statement::Select(sel) => {
                // Analyze and plan under the shared lock; execute after
                // dropping it (the physical plan captures its scans), so a
                // long query never blocks concurrent registration or SET.
                // A scoped session plans with its local config overlay.
                let config = self.config();
                let local = self.local;
                let trace_t0 = config.trace.then(|| self.db.tracer().now_us());
                let plan_t0 = trace_t0.map(|_| self.db.tracer().now_us());
                let physical = self.db.read(|catalog, shared| {
                    let planner;
                    let planner = match local {
                        Some(cfg) => {
                            planner = Planner::new(cfg);
                            &planner
                        }
                        None => shared,
                    };
                    let plan = Analyzer::new(catalog).analyze(&sel)?;
                    planner.plan(&plan, catalog).map_err(SqlError::from)
                })?;
                if let Some(t0) = plan_t0 {
                    self.db.tracer().record_since("plan", "plan", t0, 0);
                }
                // `trace` and `slow_query_ms` both need per-operator
                // numbers; plain runs skip instrumentation entirely (the
                // timing wrappers are never built), keeping the hot path
                // untouched.
                let observe = config.trace || config.slow_query_ms > 0;
                let state = if observe {
                    ExecutionState::new(config).with_instrumentation()
                } else {
                    ExecutionState::new(config)
                };
                let started = Instant::now();
                let rel = physical.collect(&state).map_err(SqlError::from)?;
                if observe {
                    self.observe_query(
                        sql,
                        &config,
                        started.elapsed(),
                        trace_t0,
                        &physical,
                        &state,
                    );
                }
                Ok(SqlOutput::Rows(rel))
            }
            Statement::CreateTable {
                name,
                columns,
                persisted,
            } => {
                if persisted && !self.db.is_durable() {
                    return Err(SqlError::Engine(
                        "CREATE TABLE ... PERSISTED requires a database opened on a storage \
                         directory (Database::open or tsql <dir> / .open <dir>)"
                            .into(),
                    ));
                }
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| Column::new(n, t))
                        .collect(),
                );
                // On a durable database register_relation already writes
                // the heap file + manifest entry; PERSISTED only asserts
                // that durability is available.
                self.db
                    .register_relation(&name, Relation::empty(schema))
                    .map_err(|e| SqlError::Engine(e.to_string()))?;
                Ok(SqlOutput::Ok)
            }
            Statement::DropTable { name } => {
                let existed = self
                    .db
                    .drop_table(&name)
                    .map_err(|e| SqlError::Engine(e.to_string()))?;
                if !existed {
                    return Err(SqlError::Engine(format!("unknown table: {name}")));
                }
                Ok(SqlOutput::Ok)
            }
            Statement::Copy {
                table,
                path,
                direction,
            } => match direction {
                CopyDirection::From => {
                    let schema = self
                        .db
                        .read(|catalog, _| catalog.schema_of(&table))
                        .map_err(SqlError::from)?;
                    let text = std::fs::read_to_string(&path)
                        .map_err(|e| SqlError::Engine(format!("read {path}: {e}")))?;
                    let rows = rows_from_csv(&text, &schema)?;
                    let n = self
                        .db
                        .insert_rows(&table, rows)
                        .map_err(|e| SqlError::Engine(e.to_string()))?;
                    Ok(SqlOutput::Affected(n))
                }
                CopyDirection::To => {
                    let rel = self
                        .db
                        .relation(&table)
                        .map_err(|e| SqlError::Engine(e.to_string()))?;
                    let n = rel.len();
                    std::fs::write(&path, relation_to_csv(&rel))
                        .map_err(|e| SqlError::Engine(format!("write {path}: {e}")))?;
                    Ok(SqlOutput::Affected(n))
                }
            },
            Statement::Insert { table, rows } => {
                let rows = rows
                    .into_iter()
                    .map(|vals| {
                        vals.into_iter()
                            .map(literal_value)
                            .collect::<SqlResult<Vec<_>>>()
                            .map(Row::new)
                    })
                    .collect::<SqlResult<Vec<_>>>()?;
                let n = self
                    .db
                    .insert_rows(&table, rows)
                    .map_err(|e| SqlError::Engine(e.to_string()))?;
                Ok(SqlOutput::Affected(n))
            }
        }
    }

    /// Execute a query and return its rows.
    pub fn query(&mut self, sql: &str) -> SqlResult<Relation> {
        self.execute(sql)?.rows()
    }

    /// Execute a query whose result is a temporal relation (last two
    /// columns ts/te).
    pub fn query_temporal(&mut self, sql: &str) -> SqlResult<TemporalRelation> {
        Ok(TemporalRelation::new(self.query(sql)?)?)
    }

    /// EXPLAIN a query.
    pub fn explain(&mut self, sql: &str) -> SqlResult<String> {
        match self.execute(&format!("EXPLAIN {sql}"))? {
            SqlOutput::Explain(s) => Ok(s),
            _ => unreachable!("EXPLAIN produces Explain output"),
        }
    }

    /// EXPLAIN ANALYZE a query: execute it with per-operator
    /// instrumentation and return the annotated plan.
    pub fn explain_analyze(&mut self, sql: &str) -> SqlResult<String> {
        match self.execute(&format!("EXPLAIN ANALYZE {sql}"))? {
            SqlOutput::Explain(s) => Ok(s),
            _ => unreachable!("EXPLAIN ANALYZE produces Explain output"),
        }
    }
}

/// Evaluate one literal of an INSERT row (the parser only admits
/// literals, so this is total over what it produces).
fn literal_value(e: AstExpr) -> SqlResult<Value> {
    Ok(match e {
        AstExpr::IntLit(v) => Value::Int(v),
        AstExpr::FloatLit(v) => Value::Double(v),
        AstExpr::StringLit(s) => Value::str(s),
        AstExpr::BoolLit(b) => Value::Bool(b),
        AstExpr::NullLit => Value::Null,
        other => {
            return Err(SqlError::Analyze(format!(
                "INSERT values must be literals, got {other:?}"
            )))
        }
    })
}

/// SQL as a method on [`Database`]: the Rust frame API and `db.sql("…")`
/// execute against the same catalog and planner.
///
/// ```
/// use temporal_core::prelude::*;
/// use temporal_engine::prelude::*;
/// use temporal_sql::DatabaseSqlExt;
///
/// let db = Database::new();
/// let r = TemporalRelation::from_rows(
///     Schema::new(vec![Column::new("n", DataType::Str)]),
///     vec![(vec![Value::str("ann")], Interval::of(0, 7))],
/// )
/// .unwrap();
/// db.register("r", &r).unwrap();
/// // Registered via the Rust surface, queried via SQL:
/// let out = db.sql_rows("SELECT n FROM r WHERE n = 'ann'").unwrap();
/// assert_eq!(out.len(), 1);
/// ```
pub trait DatabaseSqlExt {
    /// Execute one SQL statement against this database.
    fn sql(&self, sql: &str) -> SqlResult<SqlOutput>;

    /// Execute a SQL query and return its rows.
    fn sql_rows(&self, sql: &str) -> SqlResult<Relation> {
        self.sql(sql)?.rows()
    }

    /// Execute a SQL query whose result is a temporal relation.
    fn sql_temporal(&self, sql: &str) -> SqlResult<TemporalRelation> {
        Ok(TemporalRelation::new(self.sql_rows(sql)?)?)
    }

    /// EXPLAIN a SQL query.
    fn sql_explain(&self, sql: &str) -> SqlResult<String> {
        match self.sql(&format!("EXPLAIN {sql}"))? {
            SqlOutput::Explain(s) => Ok(s),
            _ => unreachable!("EXPLAIN produces Explain output"),
        }
    }
}

impl DatabaseSqlExt for Database {
    fn sql(&self, sql: &str) -> SqlResult<SqlOutput> {
        Session::with_database(self.clone()).execute(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_core::interval::Interval;

    fn rel() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("ann")], Interval::of(0, 7)),
                (vec![Value::str("joe")], Interval::of(2, 5)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sessions_share_one_database() {
        let db = Database::new();
        db.register("r", &rel()).unwrap();
        let mut a = Session::with_database(db.clone());
        let b = Session::with_database(db.clone());
        assert_eq!(a.query("SELECT n FROM r").unwrap().len(), 2);
        // SET through one session is visible through the other (one
        // shared planner).
        a.execute("SET enable_mergejoin = off").unwrap();
        assert!(!b.config().enable_mergejoin);
        db.set("enable_mergejoin", true).unwrap();
        assert!(a.config().enable_mergejoin);
    }

    #[test]
    fn insert_values_appends_rows() {
        let mut s = Session::new();
        s.execute("CREATE TABLE t (name str, x double, ts int, te int)")
            .unwrap();
        match s
            .execute("INSERT INTO t VALUES ('ann', 1.5, 0, 8), ('joe', NULL, -2, 6)")
            .unwrap()
        {
            SqlOutput::Affected(2) => {}
            other => panic!("expected INSERT 2, got {other:?}"),
        }
        let out = s.query("SELECT name, ts FROM t WHERE ts < 0").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::str("joe"));
        // Arity mismatch errors without appending a prefix.
        assert!(s.execute("INSERT INTO t VALUES (1)").is_err());
        assert_eq!(s.query("SELECT * FROM t").unwrap().len(), 2);
        // Only literals are admitted.
        assert!(s.execute("INSERT INTO t VALUES (name, 1, 2, 3)").is_err());
    }

    #[test]
    fn scoped_sessions_keep_set_local_and_count_themselves() {
        let db = Database::new();
        db.register("r", &rel()).unwrap();
        let mut a = Session::scoped(db.clone());
        let b = Session::scoped(db.clone());
        assert_eq!(db.open_sessions(), 2);
        // SET in one scoped session is invisible to the other and to the
        // shared planner.
        a.execute("SET enable_mergejoin = off").unwrap();
        assert!(!a.config().enable_mergejoin);
        assert!(b.config().enable_mergejoin);
        assert!(db.config().enable_mergejoin);
        // Scoped sessions still query the shared catalog.
        assert_eq!(a.query("SELECT n FROM r").unwrap().len(), 2);
        drop(a);
        drop(b);
        assert_eq!(db.open_sessions(), 0);
    }

    #[test]
    fn db_sql_round_trip() {
        let db = Database::new();
        db.register("r", &rel()).unwrap();
        let out = db
            .sql_temporal("SELECT n, ts, te FROM r WHERE n = 'joe'")
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(db.sql("SET enable_hashjoin = off").is_ok());
        assert!(!db.config().enable_hashjoin);
        db.set("enable_hashjoin", true).unwrap();
    }

    #[test]
    fn create_copy_drop_round_trip() {
        let dir = std::env::temp_dir().join("talign_sql_session_tests_ddl");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Session::new();
        s.execute("CREATE TABLE m (name str, x double, ts int, te int)")
            .unwrap();
        // Duplicate names error; unknown drops error.
        assert!(s.execute("CREATE TABLE m (y int)").is_err());
        assert!(s.execute("DROP TABLE nope").is_err());

        let csv = dir.join("m.csv");
        std::fs::write(&csv, "ann,1.5,0,8\njoe,,2,6\n").unwrap();
        match s
            .execute(&format!("COPY m FROM '{}'", csv.display()))
            .unwrap()
        {
            SqlOutput::Affected(2) => {}
            other => panic!("expected COPY 2, got {other:?}"),
        }
        let out = s.query("SELECT name FROM m WHERE x IS NULL").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::str("joe"));

        // Export, reload into a second table, compare.
        let out_csv = dir.join("out.csv");
        s.execute(&format!("COPY m TO '{}'", out_csv.display()))
            .unwrap();
        s.execute("CREATE TABLE m2 (name str, x double, ts int, te int)")
            .unwrap();
        s.execute(&format!("COPY m2 FROM '{}'", out_csv.display()))
            .unwrap();
        let a = s.query("SELECT * FROM m").unwrap().sorted();
        let b = s.query("SELECT * FROM m2").unwrap().sorted();
        assert_eq!(a, b);

        s.execute("DROP TABLE m").unwrap();
        assert!(s.query("SELECT * FROM m").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_persisted_requires_and_uses_storage() {
        let dir = std::env::temp_dir().join("talign_sql_session_tests_persisted");
        let _ = std::fs::remove_dir_all(&dir);
        // In-memory database: PERSISTED refuses with a helpful error.
        let mut mem = Session::new();
        let err = mem
            .execute("CREATE TABLE t (a int) PERSISTED")
            .unwrap_err()
            .to_string();
        assert!(err.contains("storage directory"), "{err}");

        // Durable database: the heap file appears and survives reopen.
        let db = temporal_core::prelude::Database::open(&dir).unwrap();
        let mut s = Session::with_database(db);
        s.execute("CREATE TABLE t (name str, ts int, te int) PERSISTED")
            .unwrap();
        assert!(dir.join("t.heap").exists());
        let csv = dir.join("t.csv");
        std::fs::write(&csv, "ann,0,8\njoe,2,6\n").unwrap();
        s.execute(&format!("COPY t FROM '{}'", csv.display()))
            .unwrap();
        drop(s);

        let db = temporal_core::prelude::Database::open(&dir).unwrap();
        let mut s = Session::with_database(db);
        assert_eq!(s.query("SELECT * FROM t").unwrap().len(), 2);
        // The planner scans persisted tables as streaming page scans.
        let plan = s.explain("SELECT * FROM t").unwrap();
        assert!(plan.contains("StorageScan on t"), "{plan}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_via_session_query_via_frames() {
        let db = Database::new();
        let mut s = Session::with_database(db.clone());
        s.register_temporal("r", &rel()).unwrap();
        let frame = db
            .table("r")
            .unwrap()
            .filter(col("n").eq(lit("ann")))
            .collect()
            .unwrap();
        assert_eq!(frame.len(), 1);
    }
}
