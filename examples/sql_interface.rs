//! The SQL surface of Sec. 6.2/6.3 behind the shared [`Database`] front
//! door: `ALIGN`, `NORMALIZE … USING()`, `ABSORB`, the `DUR` UDF, planner
//! switches (`SET enable_mergejoin = off`) and `EXPLAIN` — the workflow
//! of the paper's Fig. 13 experiment — plus the Rust frame API running
//! against the *same* catalog via `db.sql(...)`.
//!
//! Run with: `cargo run --example sql_interface`

use temporal_alignment::core::interval::month::ym;
use temporal_alignment::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One Database is the front door for both surfaces: tables registered
    // here are visible to SQL statements and Rust frames alike.
    let db = Database::new();

    // The running example's relations.
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )?;
    let p = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                Interval::of(ym(2012, 1), ym(2013, 1)),
            ),
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
        ],
    )?;
    db.register("r", &r)?;
    db.register("p", &p)?;

    // ---- Q1 via the paper's SQL (Sec. 6.2) --------------------------------
    let q1 = "WITH r AS (SELECT Ts Us, Te Ue, * FROM r) \
              SELECT ABSORB n, a, min, max, x.Ts, x.Te \
              FROM (r ALIGN p ON DUR(Us,Ue) BETWEEN Min AND Max) x \
              LEFT OUTER JOIN \
              (p ALIGN r ON DUR(Us,Ue) BETWEEN Min AND Max) y \
              ON DUR(Us,Ue) BETWEEN Min AND Max AND x.Ts = y.Ts AND x.Te = y.Te";
    println!("-- Q1 (temporal left outer join with DUR predicate):");
    println!("{}", db.sql_rows(q1)?.sorted().to_table());

    // ---- Q2 via the paper's SQL (Sec. 6.3) --------------------------------
    let q2 = "WITH r AS (SELECT Ts Us, Te Ue, * FROM r) \
              SELECT AVG(DUR(Us,Ue)) avg_dur, Ts, Te \
              FROM (r r1 NORMALIZE r r2 USING()) x \
              GROUP BY Ts, Te";
    println!("-- Q2 (temporal aggregation):");
    println!("{}", db.sql_rows(q2)?.sorted().to_table());

    // ---- The same catalog, from the Rust frame API ------------------------
    // A σᵀ written as a frame and as SQL: one catalog, one planner, and
    // EXPLAIN renders the identical physical plan for both.
    let frame = db.table("r")?.filter(col("n").eq(lit("ann")));
    let frame_plan = frame.explain()?;
    let sql_plan = db.sql_explain("SELECT * FROM r WHERE n = 'ann'")?;
    println!("-- frame EXPLAIN == SQL EXPLAIN:");
    println!("{frame_plan}");
    assert_eq!(frame_plan, sql_plan);

    // ---- EXPLAIN and the join-method switches -----------------------------
    let probe = "SELECT * FROM (r r1 NORMALIZE r r2 USING(n)) x";
    println!("-- EXPLAIN with all join methods enabled:");
    println!("{}", db.sql_explain(probe)?);

    // SET goes through the same shared planner the frames use.
    db.sql("SET enable_mergejoin = off")?;
    db.sql("SET enable_hashjoin = off")?;
    println!("-- EXPLAIN with merge and hash joins disabled (nested loop only):");
    println!("{}", db.sql_explain(probe)?);
    db.sql("SET enable_mergejoin = on")?;
    db.sql("SET enable_hashjoin = on")?;

    // ---- NOT EXISTS (the sql baseline's building block) -------------------
    let gaps = "SELECT n, ts, te FROM r \
                WHERE NOT EXISTS (SELECT * FROM p WHERE p.a = 30 AND p.ts < r.te AND r.ts < p.te)";
    println!("-- reservations with no overlapping permanent-price period:");
    println!("{}", db.sql_rows(gaps)?.to_table());

    Ok(())
}
