//! The fault-injection crash matrix (ISSUE 8 acceptance). Requires the
//! `failpoints` feature:
//!
//! ```text
//! cargo test --features failpoints --test crash_matrix
//! ```
//!
//! For every injection site in [`temporal_store::failpoints::SITES`] ×
//! crash / torn-write / bit-flip actions × hit-skip counts × sync
//! modes, a scripted workload (register a base table, insert rows one
//! committed batch at a time, checkpoint mid-stream) runs with the
//! failpoint armed. Crash-style actions trip the store-wide power-cut
//! switch, so nothing after the injected failure can reach disk — just
//! like pulling the plug. The directory is then reopened and the
//! recovered state must be a **prefix of the committed history**:
//!
//! * never a partial row, never reordered, never invented data;
//! * for crash/torn faults every *acknowledged* operation survives
//!   (the WAL was synced before the ack) and the database always
//!   reopens;
//! * bit flips model silent media corruption: the checksums must
//!   *detect* them — recovery either repairs from a full-page image,
//!   truncates the corrupt WAL tail, or surfaces a corruption error,
//!   but never serves garbage;
//! * the rebuilt interval index and zone maps answer `AS OF`
//!   timeslices identically to a brute-force oracle over the
//!   recovered rows;
//! * the recovered database is writable and survives a further clean
//!   close/reopen.
//!
//! Everything runs in a single `#[test]` because failpoints are
//! process-global.

use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_datasets::ddisj;
use temporal_store::failpoints::{self, Action};

/// A unique scratch directory for one matrix case.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("talign_crash_matrix")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn collect_rows(db: &Database, table: &str) -> Vec<Row> {
    db.table(table)
        .unwrap()
        .collect()
        .unwrap()
        .rel()
        .rows()
        .to_vec()
}

fn row(id: i64, ts: i64, te: i64) -> Row {
    vec![Value::Int(id), Value::Int(ts), Value::Int(te)].into()
}

/// Leak the handle: no flush, no `Drop` checkpoint — a `kill -9`.
fn crash(db: Database) {
    std::mem::forget(db);
}

fn oracle_as_of(rows: &[Row], v: i64) -> Vec<Row> {
    rows.iter()
        .filter(|r| {
            let n = r.len();
            matches!((&r[n - 2], &r[n - 1]),
                (Value::Int(ts), Value::Int(te)) if *ts <= v && *te > v)
        })
        .cloned()
        .collect()
}

fn run_as_of(db: &Database, table: &str, v: i64) -> Vec<Row> {
    let plan = db.table(table).unwrap().as_of(v).into_plan().unwrap();
    let physical = db.physical(&plan).unwrap();
    let state = ExecutionState::new(db.config());
    physical.collect(&state).unwrap().rows().to_vec()
}

const INSERTS: i64 = 20;
const BASE_N: usize = 40;
const POOL: usize = 2; // force pool spills so disk::* sites are hit

/// One cell of the matrix. Returns a human-readable case tag for
/// failure messages.
fn run_case(site: &str, action: Action, skip: usize, mode: &str, case: &str) {
    failpoints::reset();
    let dir = scratch(case);
    let (base, _) = ddisj(BASE_N);
    let base_rows = base.rows().to_vec();

    let db = Database::open_with_pool(&dir, POOL).unwrap();
    db.set_str("sync_mode", mode).unwrap();
    failpoints::arm_nth(site, action, skip);

    // Scripted workload; `acked` counts operations acknowledged with Ok
    // *before* any failure. Crash-style faults trip the power cut, so
    // every later write fails too — the acked set is a strict prefix.
    let registered = db.register("r", &base).is_ok();
    let mut attempted = Vec::new();
    let mut acked = 0usize;
    let mut failed = !registered;
    if registered {
        for i in 0..INSERTS {
            if i == INSERTS / 2 {
                // A mid-stream fuzzy checkpoint exercises wal::checkpoint,
                // disk::sync and manifest::save under load.
                if db.checkpoint().is_err() {
                    failed = true;
                }
            }
            let r = row(100_000 + i, 13 * i, 13 * i + 9);
            attempted.push(r.clone());
            match db.insert_rows("r", vec![r]) {
                Ok(_) if !failed => acked += 1,
                Ok(_) => {}
                Err(_) => failed = true,
            }
        }
    }
    crash(db);
    failpoints::reset();

    // Reopen. Crash/torn faults must never refuse; a bit flip may be
    // *detected* as corruption (that is the contract of the checksums),
    // but must not open into garbage.
    let flip = matches!(action, Action::FlipBit { .. });
    let db = match Database::open_with_pool(&dir, POOL) {
        Ok(db) => db,
        Err(e) if flip => {
            let msg = e.to_string().to_lowercase();
            assert!(
                msg.contains("corrupt") || msg.contains("checksum") || msg.contains("missing"),
                "[{case}] bit flip surfaced an unrelated error: {e}"
            );
            std::fs::remove_dir_all(&dir).unwrap();
            return;
        }
        Err(e) => panic!("[{case}] refused to reopen after the fault: {e}"),
    };

    if db.list_tables().is_empty() {
        // The table may be absent only if its creation was never
        // acknowledged (the fault hit register itself).
        assert!(
            !registered,
            "[{case}] an acknowledged CREATE vanished across recovery"
        );
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
        return;
    }

    // Prefix consistency: the recovered rows are exactly the base
    // registration plus a prefix of the attempted inserts.
    let rows = collect_rows(&db, "r");
    let mut full = base_rows.clone();
    full.extend_from_slice(&attempted);
    assert!(
        rows.len() <= full.len(),
        "[{case}] recovery invented rows: {} > {}",
        rows.len(),
        full.len()
    );
    assert_eq!(
        rows,
        full[..rows.len()],
        "[{case}] recovered state is not a prefix of the committed history"
    );
    if !flip {
        // Acknowledged = synced to the log before the ack: it survives.
        assert!(
            rows.len() >= base_rows.len() + acked,
            "[{case}] lost acknowledged work: recovered {} rows, base {} + acked {acked}",
            rows.len(),
            base_rows.len(),
        );
    }

    // The rebuilt interval index and zone maps answer like the oracle.
    for v in [0i64, 13 * INSERTS / 2] {
        let expected = oracle_as_of(&rows, v);
        for (zm, ix) in [(true, true), (false, false)] {
            db.set("enable_zonemaps", zm).unwrap();
            db.set("enable_interval_index", ix).unwrap();
            assert_eq!(
                run_as_of(&db, "r", v),
                expected,
                "[{case}] AS OF {v} drifted after recovery (zonemaps={zm}, index={ix})"
            );
        }
    }

    // The recovered database is writable and survives a clean cycle.
    let sentinel = row(999_999, 1, 2);
    db.insert_rows("r", vec![sentinel.clone()]).unwrap();
    db.close().unwrap();
    drop(db);
    let db = Database::open_with_pool(&dir, POOL).unwrap();
    let after = collect_rows(&db, "r");
    assert_eq!(
        after.last(),
        Some(&sentinel),
        "[{case}] post-recovery insert lost on clean reopen"
    );
    assert_eq!(after.len(), rows.len() + 1, "[{case}] clean reopen drifted");
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The full matrix, serialized in one test because the failpoint
/// registry is process-global.
#[test]
fn every_site_offset_and_mode_recovers_prefix_consistent() {
    // Torn keeps step across a frame header (16 bytes) into the payload;
    // flips target the header CRC region and payload bytes alike.
    let actions = [
        Action::Crash,
        Action::Torn { keep: 0 },
        Action::Torn { keep: 5 },
        Action::Torn { keep: 17 },
        Action::FlipBit { offset: 2 },
        Action::FlipBit { offset: 21 },
    ];
    let mut cases = 0usize;
    for mode in ["off", "commit", "always"] {
        for site in failpoints::SITES {
            for (ai, action) in actions.iter().enumerate() {
                for skip in [0usize, 1, 3, 7, 25] {
                    let case = format!("{}-{mode}-a{ai}-s{skip}", site.replace("::", "_"));
                    run_case(site, *action, skip, mode, &case);
                    cases += 1;
                }
            }
        }
    }
    // 3 modes × 6 sites × 6 actions × 5 skips.
    assert_eq!(cases, 540);
    failpoints::reset();
}
