//! # temporal-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (Sec. 7). The queries:
//!
//! * **O1** = `r ⟕ᵀ_true s` (Figs. 15a/15b),
//! * **O2** = `r ⟕ᵀ_{Min ≤ DUR(r.T) ≤ Max} s` (Fig. 15c),
//! * **O3** = `r ⟗ᵀ_{r.pcn = s.pcn} s` (Figs. 15d/16),
//! * the **normalizations** `N_{}`, `N_{pcn}`, `N_{ssn}` (Figs. 13/14);
//!
//! each runnable through three strategies: `align` (the paper's reduction
//! rules), `sql` (overlap predicates + NOT EXISTS) and `sql+normalize`.
//!
//! Criterion benches (one per figure) live in `benches/`; the `reproduce`
//! binary runs the full parameter sweeps and writes `bench_results/*.csv`.

use std::time::{Duration, Instant};

use temporal_baselines::{
    sql_full_outer_join, sql_left_outer_join, sqlnorm_full_outer_join, sqlnorm_left_outer_join,
};
use temporal_core::prelude::*;
use temporal_engine::prelude::*;

/// Evaluation strategy (the series of Figs. 15/16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// The paper's solution: reduction rules with the alignment primitive.
    Align,
    /// Standard SQL: overlap join + NOT EXISTS negative part (Sec. 7.4).
    Sql,
    /// SQL join part + normalization-based temporal difference (Sec. 7.5).
    SqlNormalize,
}

impl Approach {
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Align => "align",
            Approach::Sql => "sql",
            Approach::SqlNormalize => "sql+normalize",
        }
    }
}

/// O1 = `r ⟕ᵀ_true s`. Returns the output cardinality.
pub fn run_o1(
    approach: Approach,
    r: &TemporalRelation,
    s: &TemporalRelation,
    planner: &Planner,
) -> usize {
    match approach {
        Approach::Align => TemporalAlgebra::new(planner.config)
            .left_outer_join(r, s, None)
            .expect("O1 align")
            .len(),
        Approach::Sql => sql_left_outer_join(r, s, None, planner)
            .expect("O1 sql")
            .len(),
        Approach::SqlNormalize => sqlnorm_left_outer_join(r, s, None, planner)
            .expect("O1 sqlnorm")
            .len(),
    }
}

/// O2 = `r ⟕ᵀ_{Min ≤ DUR(r.T) ≤ Max} s` on the `Drand` schema
/// (`r = (id, ts, te)`, `s = (a, min, max, ts, te)`). The predicate
/// references r's original timestamp, so r is extended first; θ over
/// `U(r) ++ s` = `(id, us, ue, ts, te, a, min, max, ts, te)`.
pub fn run_o2(
    approach: Approach,
    r: &TemporalRelation,
    s: &TemporalRelation,
    planner: &Planner,
) -> usize {
    let ur = extend(r).expect("extend r");
    let theta = Expr::Func(Func::Dur, vec![col(1), col(2)]).between(col(6), col(7));
    match approach {
        Approach::Align => TemporalAlgebra::new(planner.config)
            .left_outer_join(&ur, s, Some(theta))
            .expect("O2 align")
            .len(),
        Approach::Sql => sql_left_outer_join(&ur, s, Some(theta), planner)
            .expect("O2 sql")
            .len(),
        Approach::SqlNormalize => sqlnorm_left_outer_join(&ur, s, Some(theta), planner)
            .expect("O2 sqlnorm")
            .len(),
    }
}

/// O3 = `r ⟗ᵀ_{r.pcn = s.pcn} s` on the Incumben schema
/// (`(ssn, pcn, ts, te)`; pcn columns 1 and 5 in concat coordinates).
pub fn run_o3(
    approach: Approach,
    r: &TemporalRelation,
    s: &TemporalRelation,
    planner: &Planner,
) -> usize {
    let theta = col(1).eq(col(5));
    match approach {
        Approach::Align => TemporalAlgebra::new(planner.config)
            .full_outer_join(r, s, Some(theta))
            .expect("O3 align")
            .len(),
        Approach::Sql => sql_full_outer_join(r, s, Some(theta), planner)
            .expect("O3 sql")
            .len(),
        Approach::SqlNormalize => sqlnorm_full_outer_join(r, s, Some(theta), planner)
            .expect("O3 sqlnorm")
            .len(),
    }
}

/// `N_B(r; r)` where `b` are data-column indices of `r` (Figs. 13/14:
/// `N_{}` = `&[]`, `N_{ssn}` = `&[0]`, `N_{pcn}` = `&[1]` on Incumben).
pub fn run_normalization(r: &TemporalRelation, b: &[usize], planner: &Planner) -> usize {
    let pairs: Vec<(usize, usize)> = b.iter().map(|&i| (i, i)).collect();
    normalize_eval(r, r, &pairs, planner)
        .expect("normalization")
        .len()
}

/// How a multi-operator temporal query is evaluated (the chain benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainMode {
    /// One `TemporalAlgebra` call per operator: every stage materializes a
    /// `TemporalRelation` and the next stage rescans it — the pre-plan-first
    /// evaluation style, kept as the baseline.
    Eager,
    /// The whole chain compiled into one `TemporalPlan` and executed with a
    /// single `Planner::run` draining the executor tree **batch-wise**
    /// (`next_batch()`, the engine's default); the rewrite pass pushes the
    /// selection across the alignment boundaries into the base scans.
    PlanFirst,
    /// The same single compiled plan drained **row-at-a-time** (`next()`,
    /// `PhysicalPlan::collect_rowwise`) — the PR 2 plan-first path, kept as
    /// the baseline the vectorized batch path is measured against.
    PlanFirstRows,
    /// Plan-first compilation with `enable_rewrites = false`: isolates the
    /// benefit of cross-operator optimization from the benefit of removing
    /// materialization barriers.
    PlanFirstNoRewrites,
}

impl ChainMode {
    pub fn label(&self) -> &'static str {
        match self {
            ChainMode::Eager => "eager",
            ChainMode::PlanFirst => "plan-first",
            ChainMode::PlanFirstRows => "plan-first-rows",
            ChainMode::PlanFirstNoRewrites => "plan-first-norw",
        }
    }
}

/// The multi-operator chain `ϑᵀ_{pcn; COUNT}(σᵀ_{ssn < cap}(r ⋈ᵀ_{r.pcn =
/// s.pcn} s))` on the Incumben schema `(ssn, pcn, ts, te)`. Returns the
/// output cardinality.
pub fn run_chain(
    mode: ChainMode,
    r: &TemporalRelation,
    s: &TemporalRelation,
    ssn_cap: i64,
    planner: &Planner,
) -> usize {
    // θ over (r.ssn, r.pcn, r.ts, r.te, s.ssn, s.pcn, s.ts, s.te).
    let theta = col(1).eq(col(5));
    // The join output is (r.ssn, r.pcn, s.ssn, s.pcn, ts, te).
    let pred = col(0).lt(lit(Value::Int(ssn_cap)));
    let aggs = vec![(AggCall::count_star(), "cnt".to_string())];
    match mode {
        ChainMode::Eager => {
            let alg = TemporalAlgebra::new(planner.config);
            let joined = alg.join(r, s, Some(theta)).expect("chain join");
            let selected = alg.selection(&joined, pred).expect("chain selection");
            alg.aggregation(&selected, &[1], aggs)
                .expect("chain aggregation")
                .len()
        }
        ChainMode::PlanFirst | ChainMode::PlanFirstRows | ChainMode::PlanFirstNoRewrites => {
            let mut config = planner.config;
            config.enable_rewrites = mode != ChainMode::PlanFirstNoRewrites;
            let plan = TemporalPlan::scan(r)
                .join(TemporalPlan::scan(s), Some(theta))
                .expect("chain join")
                .selection(pred)
                .expect("chain selection")
                .aggregation(&[1], aggs)
                .expect("chain aggregation");
            let planner = Planner::new(config);
            if mode == ChainMode::PlanFirstRows {
                // Same plan, drained through the row-at-a-time protocol.
                let physical = plan
                    .physical(&planner, &temporal_engine::catalog::Catalog::new())
                    .expect("chain plan");
                let state = ExecutionState::new(config);
                physical.collect_rowwise(&state).expect("chain run").len()
            } else {
                plan.execute(&planner).expect("chain run").len()
            }
        }
    }
}

/// Wall-clock one invocation.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// A measured sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    pub series: String,
    pub n: usize,
    pub seconds: f64,
    pub output_rows: usize,
}

/// Write sweep points as CSV (`series,n,seconds,output_rows`).
pub fn write_csv(path: &std::path::Path, points: &[Point]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "series,n,seconds,output_rows")?;
    for p in points {
        writeln!(f, "{},{},{:.6},{}", p.series, p.n, p.seconds, p.output_rows)?;
    }
    f.flush()
}

/// Write sweep points as machine-readable JSON — an array of
/// `{"series", "n", "seconds", "output_rows"}` objects — so the perf
/// trajectory can be tracked PR-over-PR by tooling without parsing CSVs.
/// Hand-rolled (the workspace is offline, no serde); series strings are
/// escaped per RFC 8259.
pub fn write_json(path: &std::path::Path, points: &[Point]) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let escape = |s: &str| -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    };
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "[")?;
    for (i, p) in points.iter().enumerate() {
        writeln!(
            f,
            "  {{\"series\": \"{}\", \"n\": {}, \"seconds\": {:.6}, \"output_rows\": {}}}{}",
            escape(&p.series),
            p.n,
            p.seconds,
            p.output_rows,
            if i + 1 < points.len() { "," } else { "" }
        )?;
    }
    writeln!(f, "]")?;
    f.flush()
}

/// Render sweep points as an aligned text table grouped by `n`
/// (series as columns), the shape the paper's figures plot.
pub fn render_table(points: &[Point], value: impl Fn(&Point) -> String) -> String {
    use std::collections::BTreeMap;
    let mut series: Vec<String> = Vec::new();
    for p in points {
        if !series.contains(&p.series) {
            series.push(p.series.clone());
        }
    }
    let mut by_n: BTreeMap<usize, BTreeMap<&str, String>> = BTreeMap::new();
    for p in points {
        by_n.entry(p.n)
            .or_default()
            .insert(p.series.as_str(), value(p));
    }
    let mut out = String::new();
    out.push_str(&format!("{:>10}", "n"));
    for s in &series {
        out.push_str(&format!("{s:>16}"));
    }
    out.push('\n');
    for (n, vals) in by_n {
        out.push_str(&format!("{n:>10}"));
        for s in &series {
            out.push_str(&format!(
                "{:>16}",
                vals.get(s.as_str()).cloned().unwrap_or_else(|| "-".into())
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_datasets::{ddisj, deq, drand, incumben, prefix, IncumbenSpec};

    fn planner() -> Planner {
        Planner::default()
    }

    #[test]
    fn o1_approaches_agree_on_small_inputs() {
        let (r, s) = ddisj(25);
        let a = run_o1(Approach::Align, &r, &s, &planner());
        let b = run_o1(Approach::Sql, &r, &s, &planner());
        let c = run_o1(Approach::SqlNormalize, &r, &s, &planner());
        assert_eq!(a, b);
        assert_eq!(a, c);
        // disjoint: every r tuple survives whole
        assert_eq!(a, r.len());

        let (r, s) = deq(6);
        let a = run_o1(Approach::Align, &r, &s, &planner());
        let b = run_o1(Approach::Sql, &r, &s, &planner());
        assert_eq!(a, b);
        assert_eq!(a, 36); // n·m all-equal intersections
    }

    #[test]
    fn o2_approaches_agree() {
        let (r, s) = drand(30, 5);
        let a = run_o2(Approach::Align, &r, &s, &planner());
        let b = run_o2(Approach::Sql, &r, &s, &planner());
        let c = run_o2(Approach::SqlNormalize, &r, &s, &planner());
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn o3_approaches_agree() {
        let data = incumben(IncumbenSpec {
            rows: 60,
            employees: 40,
            positions: 6,
            days: 365,
            ..Default::default()
        });
        let r = prefix(&data, 60);
        let a = run_o3(Approach::Align, &r, &r, &planner());
        let b = run_o3(Approach::Sql, &r, &r, &planner());
        let c = run_o3(Approach::SqlNormalize, &r, &r, &planner());
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn chain_modes_agree() {
        let data = incumben(IncumbenSpec {
            rows: 80,
            employees: 50,
            positions: 8,
            days: 400,
            ..Default::default()
        });
        let r = prefix(&data, 80);
        let a = run_chain(ChainMode::Eager, &r, &r, 25, &planner());
        let b = run_chain(ChainMode::PlanFirst, &r, &r, 25, &planner());
        let c = run_chain(ChainMode::PlanFirstNoRewrites, &r, &r, 25, &planner());
        let d = run_chain(ChainMode::PlanFirstRows, &r, &r, 25, &planner());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert!(a > 0);
    }

    #[test]
    fn normalization_output_ordering_matches_fig14() {
        // |N_{}| ≥ |N_{pcn}| ≥ |N_{ssn}| ≥ n — the premise of Fig. 14b.
        let data = incumben(IncumbenSpec {
            rows: 400,
            employees: 230,
            positions: 30,
            days: 2000,
            ..Default::default()
        });
        let n_all = run_normalization(&data, &[], &planner());
        let n_pcn = run_normalization(&data, &[1], &planner());
        let n_ssn = run_normalization(&data, &[0], &planner());
        assert!(n_all >= n_pcn, "{n_all} vs {n_pcn}");
        assert!(n_pcn >= n_ssn, "{n_pcn} vs {n_ssn}");
        assert!(n_ssn >= data.len());
    }

    #[test]
    fn join_method_settings_produce_same_normalization() {
        let data = incumben(IncumbenSpec {
            rows: 150,
            employees: 90,
            positions: 12,
            days: 900,
            ..Default::default()
        });
        let a = run_normalization(&data, &[0], &Planner::new(PlannerConfig::all_enabled()));
        let b = run_normalization(&data, &[0], &Planner::new(PlannerConfig::no_merge()));
        let c = run_normalization(&data, &[0], &Planner::new(PlannerConfig::nestloop_only()));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn csv_and_table_rendering() {
        let pts = vec![
            Point {
                series: "align".into(),
                n: 10,
                seconds: 0.5,
                output_rows: 100,
            },
            Point {
                series: "sql".into(),
                n: 10,
                seconds: 1.5,
                output_rows: 100,
            },
        ];
        let table = render_table(&pts, |p| format!("{:.1}", p.seconds));
        assert!(table.contains("align"));
        assert!(table.contains("0.5"));
        let dir = std::env::temp_dir().join("talign_bench_test");
        let path = dir.join("out.csv");
        write_csv(&path, &pts).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("align,10,0.5"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn json_rendering() {
        let pts = vec![Point {
            series: "with \"quotes\" and \\slashes\\".into(),
            n: 8000,
            seconds: 0.125,
            output_rows: 42,
        }];
        let dir = std::env::temp_dir().join("talign_bench_json_test");
        let path = dir.join("out.json");
        write_json(&path, &pts).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("[\n"));
        assert!(content.trim_end().ends_with(']'));
        assert!(content.contains("\"n\": 8000"));
        assert!(content.contains("\"seconds\": 0.125"));
        assert!(content.contains("\"output_rows\": 42"));
        assert!(content.contains("with \\\"quotes\\\" and \\\\slashes\\\\"));
        std::fs::remove_dir_all(dir).ok();
    }
}
