//! Shared per-query execution state.
//!
//! One [`ExecutionState`] is created per plan execution and threaded by
//! reference through every [`crate::exec::ExecNode`] call. It replaces the
//! per-node config copies of the pre-parallel executor: a node that needs a
//! planner setting reads the state's GUC snapshot, a node that shares a
//! materialized intermediate (a spool) registers it in the state's
//! concurrency-keyed cache, and every node observes the same cancellation
//! flag and contributes to the same per-query stats. The state is `Sync`,
//! so exchange workers on different partitions of the same plan can share
//! it — this is the contract that makes morsel-driven parallelism possible.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use temporal_store::HeapSnapshot;

use crate::error::{EngineError, EngineResult};
use crate::exec::instrument::Instrumentation;
use crate::plan::PlannerConfig;
use crate::relation::Relation;
use crate::storage::StoredTable;

/// Monotonic per-query execution counters. All relaxed atomics: the stats
/// are diagnostic, never load-bearing for correctness.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows materialized by the top-level collect.
    pub rows_emitted: AtomicU64,
    /// Batches materialized by the top-level collect.
    pub batches_emitted: AtomicU64,
    /// Partition tasks executed by exchange/parallel operators.
    pub partitions_run: AtomicU64,
    /// Heap pages pinned and decoded by storage scans.
    pub pages_read: AtomicU64,
    /// Heap pages pruned before decode (zone map or interval index said
    /// the page cannot satisfy the scan's bounds).
    pub pages_skipped: AtomicU64,
}

impl ExecStats {
    /// Snapshot `(rows, batches, partitions)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.rows_emitted.load(Ordering::Relaxed),
            self.batches_emitted.load(Ordering::Relaxed),
            self.partitions_run.load(Ordering::Relaxed),
        )
    }

    /// Snapshot `(pages_read, pages_skipped)` — the scan-pruning ledger.
    pub fn pages(&self) -> (u64, u64) {
        (
            self.pages_read.load(Ordering::Relaxed),
            self.pages_skipped.load(Ordering::Relaxed),
        )
    }
}

/// One spool slot: the shared materialized intermediate, locked
/// independently of the registry map so fills don't serialize lookups.
type SpoolSlot = Arc<Mutex<Option<Arc<Relation>>>>;

/// Shared state for one plan execution (see module docs).
#[derive(Debug)]
pub struct ExecutionState {
    /// GUC snapshot taken at execution start. Immutable for the lifetime
    /// of the query, so every worker sees the same settings.
    config: PlannerConfig,
    /// Cooperative cancellation: checked at batch boundaries by the
    /// collect loops and by exchange workers between morsels.
    cancelled: AtomicBool,
    /// Per-query counters.
    pub stats: ExecStats,
    /// Spool registry: shared materialized intermediates, keyed by the
    /// plan node's address. The outer map guard is held only to look up or
    /// insert a slot; materialization happens under the slot's own lock,
    /// so two workers hitting the same spool serialize on that spool only
    /// and nested spools cannot deadlock the registry.
    spools: Mutex<HashMap<usize, SpoolSlot>>,
    /// Heap snapshots pinned by this query, keyed by table identity
    /// (`Arc` pointer). The first scan of a table captures its snapshot;
    /// every later scan — other morsels, other plan nodes, the pruning
    /// page resolver — reuses it, so one statement sees one consistent
    /// prefix of each table no matter how writers race it.
    snapshots: Mutex<HashMap<usize, HeapSnapshot>>,
    /// Per-operator instrumentation registry (`EXPLAIN ANALYZE`, tracing,
    /// `slow_query_ms`). `None` — the default — means the plan builder
    /// inserts no metering wrappers at all.
    instrument: Option<Instrumentation>,
}

impl ExecutionState {
    /// State for one execution under the given GUC snapshot.
    pub fn new(config: PlannerConfig) -> ExecutionState {
        ExecutionState {
            config,
            cancelled: AtomicBool::new(false),
            stats: ExecStats::default(),
            spools: Mutex::new(HashMap::new()),
            snapshots: Mutex::new(HashMap::new()),
            instrument: None,
        }
    }

    /// Enable per-operator instrumentation for this execution: the plan
    /// builder will wrap every executor node in a metering shim and
    /// attach page ledgers to storage scans (see
    /// [`crate::exec::instrument`]).
    pub fn with_instrumentation(mut self) -> ExecutionState {
        self.instrument = Some(Instrumentation::default());
        self
    }

    /// The instrumentation registry, when enabled.
    pub fn instrumentation(&self) -> Option<&Instrumentation> {
        self.instrument.as_ref()
    }

    /// The statement-level [`HeapSnapshot`] of `table`, captured on first
    /// use and memoized for the rest of the execution (see the `snapshots`
    /// field). Identity is the `Arc` pointer: a re-registered table is a
    /// different allocation and gets its own snapshot.
    pub fn snapshot_for(&self, table: &Arc<StoredTable>) -> HeapSnapshot {
        let key = Arc::as_ptr(table) as usize;
        let mut map = self.snapshots.lock().expect("snapshot registry poisoned");
        *map.entry(key).or_insert_with(|| table.snapshot())
    }

    /// The GUC snapshot this query runs under.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Effective worker count for parallel operators (≥ 1).
    pub fn threads(&self) -> usize {
        self.config.threads.max(1)
    }

    /// Minimum input rows before an operator goes parallel.
    pub fn parallel_min_rows(&self) -> usize {
        self.config.parallel_min_rows
    }

    /// True when `threads` and the input size warrant a parallel path.
    pub fn parallel(&self, input_rows: usize) -> bool {
        self.threads() > 1 && input_rows >= self.parallel_min_rows().max(2)
    }

    /// Record that a parallel operator ran `n` partition tasks.
    pub fn note_partitions(&self, n: usize) {
        self.stats
            .partitions_run
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record one heap page pinned and decoded by a storage scan.
    pub fn note_page_read(&self) {
        self.stats.pages_read.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` heap pages pruned before decode.
    pub fn note_pages_skipped(&self, n: u64) {
        self.stats.pages_skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Request cooperative cancellation of this execution.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Error out if the query has been cancelled.
    pub fn check_cancelled(&self) -> EngineResult<()> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled);
        }
        Ok(())
    }

    /// Fetch the spool keyed by `key`, materializing it with `fill` on
    /// first access. Concurrent accessors of the same key block until the
    /// first one has filled it; distinct keys do not contend.
    pub fn spool_get_or_fill(
        &self,
        key: usize,
        fill: impl FnOnce() -> EngineResult<Relation>,
    ) -> EngineResult<Arc<Relation>> {
        let slot = {
            let mut map = self.spools.lock().expect("spool registry poisoned");
            map.entry(key).or_default().clone()
        };
        let mut guard = slot.lock().expect("spool slot poisoned");
        if let Some(rel) = guard.as_ref() {
            return Ok(rel.clone());
        }
        let rel = Arc::new(fill()?);
        *guard = Some(rel.clone());
        Ok(rel)
    }
}

impl Default for ExecutionState {
    /// State with the default GUC snapshot — the entry point used by code
    /// that runs an executor tree outside a planned query (tests, direct
    /// executor construction).
    fn default() -> Self {
        ExecutionState::new(PlannerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;

    #[test]
    fn spool_fills_once() {
        let state = ExecutionState::default();
        let mut calls = 0;
        for _ in 0..3 {
            let rel = state
                .spool_get_or_fill(7, || {
                    calls += 1;
                    Ok(Relation::empty(Schema::new(vec![])))
                })
                .unwrap();
            assert_eq!(rel.len(), 0);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn cancellation_trips_the_check() {
        let state = ExecutionState::default();
        assert!(state.check_cancelled().is_ok());
        state.cancel();
        assert!(state.check_cancelled().is_err());
    }
}
