//! Property-based tests (proptest) of the sequenced-semantics properties:
//! Definitions 1, 7, 8, 10 and Lemma 1, checked on arbitrary inputs.

mod common;

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::semantics::{
    check_change_preservation, check_snapshot_reducibility, TemporalOp,
};
use temporal_alignment::engine::prelude::*;
use temporal_core::primitives::aligner::is_valid_alignment;
use temporal_core::primitives::splitter::is_valid_split;

/// Strategy: a non-empty interval within `[0, dom)`.
fn arb_interval(dom: i64) -> impl Strategy<Value = Interval> {
    (0..dom - 1)
        .prop_flat_map(move |s| (Just(s), s + 1..=dom).prop_map(|(s, e)| Interval::of(s, e)))
}

/// Strategy: a duplicate-free temporal relation with one Int data column.
fn arb_trel(max_rows: usize, val_dom: i64, dom: i64) -> impl Strategy<Value = TemporalRelation> {
    proptest::collection::vec((0..val_dom, arb_interval(dom)), 0..=max_rows).prop_map(|cand| {
        let mut kept: Vec<(i64, Interval)> = Vec::new();
        for (v, iv) in cand {
            if kept
                .iter()
                .all(|(v2, iv2)| *v2 != v || (!iv2.overlaps(&iv) && *iv2 != iv))
            {
                kept.push((v, iv));
            }
        }
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("k", DataType::Int)]),
            kept.into_iter()
                .map(|(v, iv)| (vec![Value::Int(v)], iv))
                .collect(),
        )
        .expect("duplicate free by construction")
    })
}

/// Strategy: one of the binary operators with assorted θ conditions
/// (concat row = (k, ts, te, k, ts, te)).
fn arb_binary_op() -> impl Strategy<Value = TemporalOp> {
    let eq = || Some(col(0).eq(col(3)));
    prop_oneof![
        Just(TemporalOp::Union),
        Just(TemporalOp::Difference),
        Just(TemporalOp::Intersection),
        Just(TemporalOp::CartesianProduct),
        Just(TemporalOp::Join { theta: eq() }),
        Just(TemporalOp::LeftOuterJoin { theta: eq() }),
        Just(TemporalOp::LeftOuterJoin { theta: None }),
        Just(TemporalOp::RightOuterJoin { theta: eq() }),
        Just(TemporalOp::FullOuterJoin { theta: eq() }),
        Just(TemporalOp::AntiJoin { theta: eq() }),
        Just(TemporalOp::Join {
            theta: Some(col(0).lt(col(3)))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Def. 8: `split` produces a valid temporal splitter result.
    #[test]
    fn splitter_satisfies_def8(
        r in arb_interval(30),
        group in proptest::collection::vec(arb_interval(30), 0..6),
    ) {
        let out = temporal_core::primitives::splitter::split(r, &group);
        prop_assert!(is_valid_split(r, &group, &out));
    }

    /// Def. 10: `align` produces a valid temporal aligner result, within
    /// the Lemma 1 cardinality bound (2m + 1 per tuple).
    #[test]
    fn aligner_satisfies_def10_and_lemma1(
        r in arb_interval(30),
        group in proptest::collection::vec(arb_interval(30), 0..6),
    ) {
        let out = temporal_core::primitives::aligner::align(r, &group);
        prop_assert!(is_valid_alignment(r, &group, &out));
        prop_assert!(out.len() <= 2 * group.len() + 1);
    }

    /// Lemma 1 at the relation level: |r Φ_θ s| ≤ 2nm + n.
    #[test]
    fn alignment_cardinality_lemma1(
        r in arb_trel(6, 3, 20),
        s in arb_trel(6, 3, 20),
    ) {
        let alg = TemporalAlgebra::default();
        let out = alg.align(&r, &s, None).unwrap();
        let (n, m) = (r.len(), s.len());
        prop_assert!(out.len() <= 2 * n * m + n);
    }

    /// Defs. 1 and 7 for every binary operator: the reduced result is
    /// snapshot reducible and change preserving on arbitrary inputs.
    #[test]
    fn binary_operators_satisfy_sequenced_semantics(
        op in arb_binary_op(),
        r in arb_trel(6, 3, 14),
        s in arb_trel(6, 3, 14),
    ) {
        let alg = TemporalAlgebra::default();
        let result = op.evaluate(&alg, &[&r, &s]).unwrap();
        let sr = check_snapshot_reducibility(&op, &[&r, &s], &result).unwrap();
        prop_assert!(sr.is_empty(), "snapshot violations at {sr:?} for {}", op.name());
        let cp = check_change_preservation(&op, &[&r, &s], &result).unwrap();
        prop_assert!(cp.is_empty(), "change violations {cp:?} for {}", op.name());
    }

    /// Defs. 1 and 7 for the unary/group-based operators.
    #[test]
    fn unary_operators_satisfy_sequenced_semantics(
        r in arb_trel(7, 3, 14),
        pick in 0..3usize,
    ) {
        let op = match pick {
            0 => TemporalOp::Selection { predicate: col(0).ge(lit(1i64)) },
            1 => TemporalOp::Projection { attrs: vec![0] },
            _ => TemporalOp::Aggregation {
                group: vec![],
                aggs: vec![(AggCall::count_star(), "c".to_string())],
            },
        };
        let alg = TemporalAlgebra::default();
        let result = op.evaluate(&alg, &[&r]).unwrap();
        let sr = check_snapshot_reducibility(&op, &[&r], &result).unwrap();
        prop_assert!(sr.is_empty(), "snapshot violations at {sr:?} for {}", op.name());
        let cp = check_change_preservation(&op, &[&r], &result).unwrap();
        prop_assert!(cp.is_empty(), "change violations {cp:?} for {}", op.name());
    }

    /// α is idempotent and results are always duplicate-free relations.
    #[test]
    fn absorb_idempotent(r in arb_trel(8, 3, 20)) {
        let once = absorb(&r).unwrap();
        let twice = absorb(&once).unwrap();
        prop_assert!(once.same_set(&twice));
    }

    /// Alignment against an empty relation is the identity (every tuple
    /// keeps its whole timestamp as one uncovered piece).
    #[test]
    fn alignment_with_empty_group_is_identity(r in arb_trel(8, 3, 20)) {
        let alg = TemporalAlgebra::default();
        let empty = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("k", DataType::Int)]),
            vec![],
        ).unwrap();
        let out = alg.align(&r, &empty, None).unwrap();
        prop_assert!(out.same_set(&r));
    }

    /// Self-normalization on all attributes never changes the snapshots.
    #[test]
    fn normalization_preserves_snapshots(r in arb_trel(8, 3, 16)) {
        let alg = TemporalAlgebra::default();
        let out = alg.normalize(&r, &r, &[(0, 0)]).unwrap();
        for t in r.endpoints() {
            prop_assert!(out.timeslice(t).same_set(&r.timeslice(t)));
        }
    }

    /// The reduced result of a temporal union contains exactly the points
    /// covered by either argument (pointwise containment check).
    #[test]
    fn union_covers_exactly_both_sides(
        r in arb_trel(5, 2, 12),
        s in arb_trel(5, 2, 12),
    ) {
        let alg = TemporalAlgebra::default();
        let out = alg.union(&r, &s).unwrap();
        for t in 0..12 {
            let expected_len = {
                let mut u = r.timeslice(t);
                for row in s.timeslice(t).rows() {
                    u.push(row.clone()).unwrap();
                }
                u.dedup();
                u.len()
            };
            prop_assert_eq!(out.timeslice(t).len(), expected_len);
        }
    }
}
