//! Coalescing: merge value-equivalent tuples over adjacent or overlapping
//! intervals into maximal intervals.
//!
//! Coalescing is deliberately **not** part of the sequenced algebra — the
//! whole point of change preservation (Def. 7) is that results like the
//! paper's z3/z4 stay separate because their lineage differs. But a
//! temporal library still needs coalescing as an explicit, user-invoked
//! operation: it converts any snapshot-equivalent relation into the unique
//! minimal representation of its snapshots (the classic `COALESCE` of
//! TSQL2 / Snodgrass), e.g. for final presentation, or to compare results
//! up to snapshot equivalence.

use std::collections::HashMap;

use temporal_engine::prelude::*;

use crate::error::TemporalResult;
use crate::interval::Interval;
use crate::trel::TemporalRelation;

/// Coalesce `r`: merge value-equivalent tuples whose intervals overlap or
/// meet, yielding maximal intervals. The result is duplicate free and has
/// the same snapshots as the input; all change information (Def. 7) is
/// deliberately discarded.
pub fn coalesce(r: &TemporalRelation) -> TemporalResult<TemporalRelation> {
    let mut groups: HashMap<&[Value], Vec<Interval>> = HashMap::new();
    let mut order: Vec<&[Value]> = Vec::new();
    for row in r.rows() {
        let data = r.data_of(row);
        let slot = groups.entry(data).or_default();
        if slot.is_empty() {
            order.push(data);
        }
        slot.push(r.interval_of(row));
    }
    let mut out: Vec<(Vec<Value>, Interval)> = Vec::new();
    for data in order {
        let ivs = groups.get_mut(data).expect("inserted");
        ivs.sort();
        let mut current: Option<Interval> = None;
        for iv in ivs.iter() {
            current = Some(match current {
                None => *iv,
                Some(c) if c.merges_with(iv) => c.hull(iv),
                Some(c) => {
                    out.push((data.to_vec(), c));
                    *iv
                }
            });
        }
        if let Some(c) = current {
            out.push((data.to_vec(), c));
        }
    }
    TemporalRelation::from_rows(r.data_schema(), out)
}

/// Are two temporal relations snapshot equivalent (equal at every time
/// point)? Implemented by comparing coalesced canonical forms.
pub fn snapshot_equivalent(a: &TemporalRelation, b: &TemporalRelation) -> TemporalResult<bool> {
    Ok(coalesce(a)?.same_set(&coalesce(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn merges_adjacent_and_overlapping() {
        let r = rel(&[("a", 0, 5), ("a", 5, 9), ("a", 8, 12), ("b", 1, 3)]);
        let out = coalesce(&r).unwrap();
        assert!(out.same_set(&rel(&[("a", 0, 12), ("b", 1, 3)])));
        assert!(out.is_duplicate_free());
    }

    #[test]
    fn keeps_gaps_apart() {
        let r = rel(&[("a", 0, 3), ("a", 5, 9)]);
        let out = coalesce(&r).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn coalescing_discards_change_preservation() {
        // The paper's z3/z4: sequenced results keep them apart; coalesce
        // merges them — that is exactly why it is a separate, explicit op.
        let z = rel(&[("ann", 5, 7), ("ann", 7, 11)]);
        let out = coalesce(&z).unwrap();
        assert!(out.same_set(&rel(&[("ann", 5, 11)])));
    }

    #[test]
    fn snapshot_equivalence_ignores_fragmentation() {
        let a = rel(&[("a", 0, 10)]);
        let b = rel(&[("a", 0, 4), ("a", 4, 10)]);
        let c = rel(&[("a", 0, 4), ("a", 5, 10)]);
        assert!(snapshot_equivalent(&a, &b).unwrap());
        assert!(!snapshot_equivalent(&a, &c).unwrap());
    }

    #[test]
    fn coalesce_is_idempotent_and_snapshot_preserving() {
        let r = rel(&[("a", 0, 5), ("a", 3, 9), ("b", 2, 4), ("a", 12, 14)]);
        let once = coalesce(&r).unwrap();
        let twice = coalesce(&once).unwrap();
        assert!(once.same_set(&twice));
        for t in r.endpoints() {
            assert!(once.timeslice(t).same_set(&r.timeslice(t)));
        }
    }
}
