//! Projection π: compute output expressions per row.
//!
//! Duplicate elimination (set semantics) is a separate node
//! ([`crate::exec::DistinctExec`]), as in standard engines.

use crate::batch::RowBatch;
use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// Evaluates a list of expressions against each input row.
pub struct ProjectExec {
    input: BoxedExec,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl ProjectExec {
    pub fn new(input: BoxedExec, exprs: Vec<Expr>, schema: Schema) -> Self {
        debug_assert_eq!(exprs.len(), schema.len());
        ProjectExec {
            input,
            exprs,
            schema,
        }
    }
}

impl ExecNode for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        match self.input.next(state)? {
            Some(row) => {
                let mut out: Vec<Value> = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(row.values())?);
                }
                Ok(Some(Row::new(out)))
            }
            None => Ok(None),
        }
    }

    /// Batch path: one vectorized evaluation per output expression, then
    /// one pass re-assembling the value columns into rows.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        match self.input.next_batch(state)? {
            None => Ok(None),
            Some(batch) => {
                let n = batch.len();
                let mut cols = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    cols.push(e.eval_batch(batch.rows())?.into_iter());
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(Row::from_iter(
                        cols.iter_mut().map(|c| c.next().expect("column length")),
                    ));
                }
                Ok(Some(RowBatch::new(self.schema.clone(), rows)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::expr::col;
    use crate::schema::{Column, DataType};

    #[test]
    fn projects_expressions() {
        let rel = int2_rel(("a", "b"), &[(1, 10), (2, 20)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let schema = Schema::new(vec![
            Column::new("b", DataType::Int),
            Column::new("sum", DataType::Int),
        ]);
        let proj = Box::new(ProjectExec::new(
            scan,
            vec![col(1), col(0).add(col(1))],
            schema,
        ));
        let out = collect(proj, &ExecutionState::default()).unwrap();
        assert_eq!(out.rows()[0].to_vec(), vec![Value::Int(10), Value::Int(11)]);
        assert_eq!(out.rows()[1].to_vec(), vec![Value::Int(20), Value::Int(22)]);
    }
}
