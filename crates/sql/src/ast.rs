//! Abstract syntax tree for the SQL dialect (the "parse tree" of the
//! paper's Fig. 12a).

use temporal_engine::schema::DataType;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Statement {
    Select(SelectStmt),
    /// `SET <guc> = on|off|true|false|<int>` — planner switches (Sec. 7.2)
    /// and integer GUCs such as `threads`.
    Set {
        name: String,
        value: SetValue,
    },
    /// `EXPLAIN [ANALYZE] <select>` — print the physical plan. With
    /// `ANALYZE` the query is *executed* under per-operator
    /// instrumentation and the same tree is annotated with actual rows,
    /// wall-time and pages read/skipped.
    Explain {
        analyze: bool,
        query: Box<Statement>,
    },
    /// `CREATE TABLE t (col type, …) [PERSISTED]` — DDL. On a database
    /// opened on a storage directory every table is durably backed by a
    /// heap file; `PERSISTED` *asserts* that durability is available and
    /// errors on an in-memory database instead of silently creating a
    /// volatile table.
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        persisted: bool,
    },
    /// `DROP TABLE t` — removes the table (and its heap file, if
    /// persisted).
    DropTable {
        name: String,
    },
    /// `COPY t FROM 'file.csv'` / `COPY t TO 'file.csv'` — bulk CSV
    /// import/export.
    Copy {
        table: String,
        path: String,
        direction: CopyDirection,
    },
    /// `INSERT INTO t VALUES (lit, …), (lit, …)` — literal row append.
    /// Values are restricted to literals (optionally signed numbers,
    /// strings, booleans, NULL); arity is checked against the table
    /// schema at execution.
    Insert {
        table: String,
        rows: Vec<Vec<AstExpr>>,
    },
}

/// Direction of a `COPY` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDirection {
    /// `COPY t FROM 'path'`: append the file's rows to the table.
    From,
    /// `COPY t TO 'path'`: write the table's rows to the file.
    To,
}

/// Projection quantifier: `ALL` (default), `DISTINCT`, or the paper's
/// `ABSORB` (Sec. 6.2: "In the select clause ABSORB can be specified
/// instead of DISTINCT to eliminate temporal duplicates").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    All,
    Distinct,
    Absorb,
}

/// The right-hand side of a `SET` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetValue {
    Bool(bool),
    Int(i64),
    /// A bare identifier, for string-valued settings such as
    /// `SET sync_mode = commit`.
    Ident(String),
}

/// Set operation chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Except,
    Intersect,
}

/// A `SELECT` statement (optionally with a `WITH` prefix and set-operation
/// continuations).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `WITH name AS (select), …` — later CTEs and the main query see
    /// earlier ones; names shadow catalog tables (used for timestamp
    /// propagation, Sec. 6.2).
    pub with: Vec<(String, SelectStmt)>,
    pub quantifier: Quantifier,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub order_by: Vec<(AstExpr, bool)>,
    pub limit: Option<usize>,
    /// `UNION | EXCEPT | INTERSECT <select>` continuation.
    pub set_op: Option<(SetOp, Box<SelectStmt>)>,
}

impl SelectStmt {
    /// An empty SELECT skeleton (filled by the parser).
    pub fn new() -> SelectStmt {
        SelectStmt {
            with: Vec::new(),
            quantifier: Quantifier::All,
            items: Vec::new(),
            from: None,
            where_clause: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            set_op: None,
        }
    }
}

impl Default for SelectStmt {
    fn default() -> Self {
        SelectStmt::new()
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS] alias`
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// Join kinds in the FROM clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

/// A FROM-clause item. `Align` and `Normalize` are the paper's grammar
/// extension (Sec. 6.2):
///
/// ```text
/// aligned_table: table_ref ALIGN table_ref ON a_expr;
/// table_ref: … '(' aligned_table ')' alias_clause
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named {
        name: String,
        alias: Option<String>,
        /// `AS OF <expr>` timeslice: rows whose valid interval contains
        /// the instant. Lowered to the canonical `ts <= v AND te > v`
        /// range predicate, which the planner can serve from page zone
        /// maps or the interval index.
        as_of: Option<AstExpr>,
    },
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<AstExpr>,
    },
    /// `(left ALIGN right ON cond) alias`
    Align {
        left: Box<TableRef>,
        right: Box<TableRef>,
        on: AstExpr,
        alias: Option<String>,
    },
    /// `(left NORMALIZE right USING (cols)) alias`
    Normalize {
        left: Box<TableRef>,
        right: Box<TableRef>,
        using: Vec<String>,
        alias: Option<String>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

/// Scalar expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    IntLit(i64),
    FloatLit(f64),
    StringLit(String),
    BoolLit(bool),
    NullLit,
    Binary {
        op: BinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Neg(Box<AstExpr>),
    /// Function call; `count(*)` sets `star`.
    Func {
        name: String,
        args: Vec<AstExpr>,
        star: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)` — compiled to semi/anti joins.
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
}

impl AstExpr {
    /// Flatten a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<AstExpr> {
        match self {
            AstExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let e = AstExpr::Binary {
            op: BinOp::And,
            left: Box::new(AstExpr::BoolLit(true)),
            right: Box::new(AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(AstExpr::IntLit(1)),
                right: Box::new(AstExpr::IntLit(2)),
            }),
        };
        assert_eq!(e.conjuncts().len(), 3);
        let single = AstExpr::BoolLit(false);
        assert_eq!(single.conjuncts().len(), 1);
    }
}
