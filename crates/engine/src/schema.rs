//! Relation schemas: column names, optional qualifiers and data types.

use std::fmt;

use crate::error::{EngineError, EngineResult};

/// The engine's data types. NULL is typeless and allowed in any column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Double,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Double => write!(f, "double"),
            DataType::Str => write!(f, "str"),
        }
    }
}

/// A named, typed column, optionally qualified by a relation alias
/// (e.g. `r.pcn`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub qualifier: Option<String>,
}

impl Column {
    /// Unqualified column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            qualifier: None,
        }
    }

    /// Qualified column (`qualifier.name`).
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        dtype: DataType,
    ) -> Self {
        Column {
            name: name.into(),
            dtype,
            qualifier: Some(qualifier.into()),
        }
    }

    /// `qualifier.name` if qualified, else `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    cols: Vec<Column>,
}

impl Schema {
    pub fn new(cols: Vec<Column>) -> Self {
        Schema { cols }
    }

    pub fn empty() -> Self {
        Schema { cols: Vec::new() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    #[inline]
    pub fn col(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    pub fn cols(&self) -> &[Column] {
        &self.cols
    }

    /// All column names (unqualified).
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|c| c.name.as_str()).collect()
    }

    /// Resolve `name`, which may be `"col"` or `"alias.col"`. Errors if the
    /// name is unknown or ambiguous.
    pub fn index_of(&self, name: &str) -> EngineResult<usize> {
        match name.split_once('.') {
            Some((q, n)) => self.resolve(Some(q), n),
            None => self.resolve(None, name),
        }
    }

    /// `index_of` without the error.
    pub fn try_index_of(&self, name: &str) -> Option<usize> {
        self.index_of(name).ok()
    }

    /// Resolve a possibly-qualified column reference.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> EngineResult<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.cols.iter().enumerate() {
            let name_ok = c.name == name;
            let qual_ok = match qualifier {
                None => true,
                Some(q) => c.qualifier.as_deref() == Some(q),
            };
            if name_ok && qual_ok {
                if found.is_some() {
                    return Err(EngineError::UnknownColumn(format!(
                        "ambiguous column reference '{}'",
                        match qualifier {
                            Some(q) => format!("{q}.{name}"),
                            None => name.to_string(),
                        }
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            EngineError::UnknownColumn(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })
        })
    }

    /// Concatenate two schemas (as a join output does).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Schema { cols }
    }

    /// Keep the columns at `idxs`, in that order.
    pub fn project(&self, idxs: &[usize]) -> Schema {
        Schema {
            cols: idxs.iter().map(|&i| self.cols[i].clone()).collect(),
        }
    }

    /// Return a copy where every column carries `qualifier`.
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            cols: self
                .cols
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    qualifier: Some(qualifier.to_string()),
                })
                .collect(),
        }
    }

    /// Return a copy with all qualifiers removed.
    pub fn without_qualifiers(&self) -> Schema {
        Schema {
            cols: self
                .cols
                .iter()
                .map(|c| Column::new(c.name.clone(), c.dtype))
                .collect(),
        }
    }

    /// Two schemas are union compatible when their arities and column types
    /// match positionally (names may differ), per Sec. 3.1 of the paper.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .cols
                .iter()
                .zip(other.cols.iter())
                .all(|(a, b)| a.dtype == b.dtype)
    }

    /// Rename column `i`.
    pub fn renamed(&self, i: usize, name: impl Into<String>) -> Schema {
        let mut s = self.clone();
        s.cols[i].name = name.into();
        s
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.qualified_name(), c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::qualified("r", "a", DataType::Int),
            Column::qualified("r", "ts", DataType::Int),
            Column::qualified("s", "a", DataType::Int),
        ])
    }

    #[test]
    fn resolve_unqualified_unique() {
        let s = sample();
        assert_eq!(s.index_of("ts").unwrap(), 1);
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.index_of("r.a").unwrap(), 0);
        assert_eq!(s.index_of("s.a").unwrap(), 2);
    }

    #[test]
    fn ambiguous_unqualified_errors() {
        let s = sample();
        let err = s.index_of("a").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_column_errors() {
        let s = sample();
        assert!(s.index_of("zzz").is_err());
        assert!(s.index_of("q.a").is_err());
    }

    #[test]
    fn concat_and_project() {
        let a = Schema::new(vec![Column::new("x", DataType::Int)]);
        let b = Schema::new(vec![Column::new("y", DataType::Str)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        let p = c.project(&[1]);
        assert_eq!(p.col(0).name, "y");
    }

    #[test]
    fn union_compatibility_positional() {
        let a = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("y", DataType::Str),
        ]);
        let b = Schema::new(vec![
            Column::new("u", DataType::Int),
            Column::new("v", DataType::Str),
        ]);
        let c = Schema::new(vec![Column::new("u", DataType::Int)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn qualifier_rewrites() {
        let s = sample().without_qualifiers();
        assert!(s.index_of("a").is_err()); // now ambiguous without qualifiers
        let s2 = Schema::new(vec![Column::new("a", DataType::Int)]).with_qualifier("t");
        assert_eq!(s2.index_of("t.a").unwrap(), 0);
    }
}
