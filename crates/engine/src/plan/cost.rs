//! Cardinality and cost estimation.
//!
//! Deliberately PostgreSQL-flavoured: abstract cost units built from
//! per-tuple and per-operator constants, and a large additive penalty for
//! disabled join methods (PostgreSQL's `disable_cost`), so "disabling" a
//! method still leaves a plan when nothing else is applicable — exactly the
//! behaviour the paper exploits in the Fig. 13 experiment
//! (`SET enable_mergejoin=false`, …).

use crate::expr::{CmpOp, Expr};

/// Estimated output rows and total cost of a plan subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    pub rows: f64,
    pub cost: f64,
}

impl PlanStats {
    pub fn new(rows: f64, cost: f64) -> Self {
        PlanStats { rows, cost }
    }
}

/// Additive penalty for disabled access paths (PostgreSQL uses 1.0e10).
pub const DISABLE_COST: f64 = 1.0e10;

/// Interval-index fanout: 20-byte `(ts, te, page)` entries in 4 KiB
/// nodes. Only used for costing, so a rough constant is fine.
pub const INDEX_ENTRIES_PER_PAGE: f64 = 204.0;

/// Cost constants, named after their PostgreSQL counterparts.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost to process one tuple (`cpu_tuple_cost`).
    pub cpu_tuple_cost: f64,
    /// Cost to evaluate one operator/function (`cpu_operator_cost`).
    pub cpu_operator_cost: f64,
    /// Cost to read one heap page sequentially (`seq_page_cost`) — only
    /// used by the access-path selection below; node `stats()` keep the
    /// page-blind shapes so plans cost identically to earlier releases.
    pub seq_page_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            seq_page_cost: 1.0,
        }
    }
}

impl CostModel {
    pub fn scan(&self, rows: f64) -> PlanStats {
        PlanStats::new(rows, rows * self.cpu_tuple_cost)
    }

    pub fn filter(&self, input: PlanStats, predicate: &Expr) -> PlanStats {
        let sel = selectivity(predicate);
        PlanStats::new(
            (input.rows * sel).max(0.0),
            input.cost + input.rows * self.cpu_operator_cost * predicate.conjuncts().len() as f64,
        )
    }

    pub fn project(&self, input: PlanStats, n_exprs: usize) -> PlanStats {
        PlanStats::new(
            input.rows,
            input.cost + input.rows * self.cpu_operator_cost * n_exprs as f64,
        )
    }

    pub fn sort(&self, input: PlanStats) -> PlanStats {
        let n = input.rows.max(2.0);
        PlanStats::new(
            input.rows,
            input.cost + 2.0 * self.cpu_operator_cost * n * n.log2(),
        )
    }

    pub fn aggregate(&self, input: PlanStats, n_group: usize, n_aggs: usize) -> PlanStats {
        let out_rows = if n_group == 0 {
            1.0
        } else {
            // Square-root heuristic for group count.
            input.rows.sqrt().max(1.0)
        };
        PlanStats::new(
            out_rows,
            input.cost
                + input.rows * self.cpu_operator_cost * (n_group + n_aggs) as f64
                + out_rows * self.cpu_tuple_cost,
        )
    }

    pub fn distinct(&self, input: PlanStats) -> PlanStats {
        PlanStats::new(
            (input.rows * 0.9).max(1.0).min(input.rows),
            input.cost + input.rows * self.cpu_operator_cost,
        )
    }

    /// Output-row estimate shared by all join algorithms so the choice is
    /// driven by algorithm cost, not by disagreeing row estimates.
    pub fn join_rows(
        &self,
        left: PlanStats,
        right: PlanStats,
        n_equi_keys: usize,
        emits_left_unmatched: bool,
        emits_right_unmatched: bool,
    ) -> f64 {
        let cross = left.rows * right.rows;
        let mut rows = if n_equi_keys > 0 {
            // Classic equi-join estimate: |L|·|R| / max(ndv); we approximate
            // ndv of the key with the larger input's cardinality.
            cross / left.rows.max(right.rows).max(1.0)
        } else {
            cross * 0.33
        };
        if emits_left_unmatched {
            rows = rows.max(left.rows);
        }
        if emits_right_unmatched {
            rows = rows.max(right.rows);
        }
        rows.max(1.0)
    }

    pub fn nested_loop_join(
        &self,
        left: PlanStats,
        right: PlanStats,
        out_rows: f64,
        n_conjuncts: usize,
    ) -> PlanStats {
        PlanStats::new(
            out_rows,
            left.cost
                + right.cost
                + left.rows * right.rows * self.cpu_operator_cost * n_conjuncts.max(1) as f64
                + out_rows * self.cpu_tuple_cost,
        )
    }

    pub fn hash_join(&self, left: PlanStats, right: PlanStats, out_rows: f64) -> PlanStats {
        PlanStats::new(
            out_rows,
            left.cost
                + right.cost
                + right.rows * (self.cpu_operator_cost * 2.0 + self.cpu_tuple_cost) // build
                + left.rows * self.cpu_operator_cost * 2.0 // probe
                + out_rows * self.cpu_tuple_cost,
        )
    }

    /// Cost of the merge phase only; inputs are expected to carry their own
    /// sort costs already.
    pub fn merge_join(&self, left: PlanStats, right: PlanStats, out_rows: f64) -> PlanStats {
        PlanStats::new(
            out_rows,
            left.cost
                + right.cost
                + (left.rows + right.rows) * self.cpu_operator_cost
                + out_rows * self.cpu_tuple_cost,
        )
    }

    pub fn set_op(&self, left: PlanStats, right: PlanStats) -> PlanStats {
        PlanStats::new(
            (left.rows + right.rows).max(1.0),
            left.cost + right.cost + (left.rows + right.rows) * self.cpu_operator_cost * 2.0,
        )
    }

    pub fn limit(&self, input: PlanStats, n: usize) -> PlanStats {
        PlanStats::new(input.rows.min(n as f64), input.cost)
    }

    /// A streaming pass over already-ordered input that emits `out_rows`
    /// tuples at `ops_per_tuple` operator evaluations each — the shape of
    /// the paper's plane-sweep adjustment executors (Sec. 6.2/6.3), used by
    /// extension nodes so composed temporal plans cost as one tree.
    pub fn sweep(&self, input: PlanStats, out_rows: f64, ops_per_tuple: f64) -> PlanStats {
        PlanStats::new(
            out_rows.max(0.0),
            input.cost
                + input.rows * self.cpu_operator_cost * ops_per_tuple.max(1.0)
                + out_rows.max(0.0) * self.cpu_tuple_cost,
        )
    }

    /// Shared materialization (spool): the input is computed once and the
    /// buffered rows are re-read by each consumer.
    pub fn spool(&self, input: PlanStats) -> PlanStats {
        PlanStats::new(input.rows, input.cost + input.rows * self.cpu_tuple_cost)
    }

    // ---- access-path selection for pruned storage scans ----------------
    //
    // These cost *alternatives for the same scan* against each other (full
    // scan vs zone-pruned scan vs interval-index probe) and are used only
    // by the planner's access-path choice — they are deliberately separate
    // from the node `stats()` methods above, whose legacy page-blind
    // estimates are pinned by golden EXPLAIN output.

    /// Read every page, decode every row.
    pub fn full_scan_cost(&self, rows: f64, pages: f64) -> f64 {
        pages * self.seq_page_cost + rows * self.cpu_tuple_cost
    }

    /// Zone-map pruned scan: one header check per page, then the
    /// surviving pages are read and decoded. Zone pruning only drops a
    /// page when *every* row on it misses the bounds, so its page-level
    /// selectivity degrades with clustering — `√sel` is the standard
    /// pessimism (BRIN-style: perfect on sorted data, useless on random),
    /// whereas the interval index identifies matching pages exactly.
    pub fn zone_scan_cost(&self, rows: f64, pages: f64, sel: f64) -> f64 {
        pages * self.cpu_operator_cost + sel.sqrt() * self.full_scan_cost(rows, pages)
    }

    /// Interval-index probe: descend `levels` internal pages, read the
    /// matching share of the leaf level, then read the surviving fraction
    /// of the heap — the index pinpoints pages, so the heap share is
    /// `sel` itself, not the zone sweep's clustering-degraded `√sel`.
    pub fn index_scan_cost(&self, rows: f64, pages: f64, levels: f64, sel: f64) -> f64 {
        let leaf_pages = (rows / INDEX_ENTRIES_PER_PAGE).max(1.0);
        (levels.max(1.0) + sel * leaf_pages) * self.seq_page_cost
            + sel * self.full_scan_cost(rows, pages)
    }
}

/// Crude predicate selectivity: equality 0.1 per conjunct, range 0.33,
/// everything else 0.5 — enough to order join candidates sensibly.
pub fn selectivity(predicate: &Expr) -> f64 {
    predicate
        .conjuncts()
        .iter()
        .map(|c| match c {
            Expr::Cmp(CmpOp::Eq, _, _) => 0.1,
            Expr::Cmp(_, _, _) | Expr::Between { .. } => 0.33,
            _ => 0.5,
        })
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn selectivity_composes_conjuncts() {
        let eq = col(0).eq(lit(1i64));
        assert!((selectivity(&eq) - 0.1).abs() < 1e-9);
        let both = col(0).eq(lit(1i64)).and(col(1).lt(lit(2i64)));
        assert!((selectivity(&both) - 0.033).abs() < 1e-9);
    }

    #[test]
    fn hash_beats_nested_loop_on_large_equi_joins() {
        let m = CostModel::default();
        let l = m.scan(10_000.0);
        let r = m.scan(10_000.0);
        let rows = m.join_rows(l, r, 1, false, false);
        let nl = m.nested_loop_join(l, r, rows, 1);
        let hj = m.hash_join(l, r, rows);
        assert!(hj.cost < nl.cost);
    }

    #[test]
    fn merge_join_cost_excludes_sort() {
        let m = CostModel::default();
        let l = m.sort(m.scan(1000.0));
        let r = m.sort(m.scan(1000.0));
        let rows = m.join_rows(l, r, 1, false, false);
        let mj = m.merge_join(l, r, rows);
        assert!(mj.cost > l.cost + r.cost);
    }

    #[test]
    fn access_paths_order_sensibly() {
        let m = CostModel::default();
        let (rows, pages) = (1_000_000.0, 20_000.0);
        // A selective probe: both pruned paths beat the full scan, and the
        // index beats the clustering-pessimistic zone sweep on a big table.
        let full = m.full_scan_cost(rows, pages);
        let zone = m.zone_scan_cost(rows, pages, 0.01);
        let index = m.index_scan_cost(rows, pages, 2.0, 0.01);
        assert!(zone < full && index < full);
        assert!(index < zone);
        // The index also wins at the modest sizes a timeslice probe sees
        // (the leaf share is tiny next to the zone sweep's √sel heap read).
        let (rows, pages) = (3_000.0, 21.0);
        assert!(m.index_scan_cost(rows, pages, 1.0, 0.109) < m.zone_scan_cost(rows, pages, 0.109));
        // An unselective predicate keeps the full scan competitive.
        assert!(m.zone_scan_cost(rows, pages, 1.0) > full.min(m.full_scan_cost(rows, pages)));
    }

    #[test]
    fn outer_joins_keep_at_least_outer_rows() {
        let m = CostModel::default();
        let l = m.scan(100.0);
        let r = m.scan(5.0);
        let rows = m.join_rows(l, r, 1, true, false);
        assert!(rows >= 100.0);
    }
}
