//! A named-table catalog, the engine's equivalent of a database schema.
//!
//! Since the storage layer landed, a table is backed by one of two
//! [`TableSource`]s: an in-memory [`Relation`] (the original behavior) or
//! an on-disk [`StoredTable`] heap file scanned through a buffer pool.
//! The planner resolves `TableScan` nodes via [`Catalog::source`] so
//! stored tables execute as streaming page scans; [`Catalog::get`]
//! remains as the materializing compatibility accessor.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::storage::StoredTable;

/// The physical backing of a catalog table.
#[derive(Debug, Clone)]
pub enum TableSource {
    /// Materialized in memory; scans are `Arc` bumps.
    Mem(Arc<Relation>),
    /// Heap file behind a buffer pool; scans stream pages.
    Stored(Arc<StoredTable>),
}

impl TableSource {
    /// The table schema (unqualified).
    pub fn schema(&self) -> &Schema {
        match self {
            TableSource::Mem(rel) => rel.schema(),
            TableSource::Stored(t) => t.schema(),
        }
    }

    /// Current row count.
    pub fn row_count(&self) -> usize {
        match self {
            TableSource::Mem(rel) => rel.len(),
            TableSource::Stored(t) => t.row_count() as usize,
        }
    }

    /// Is this table backed by a heap file?
    pub fn is_stored(&self) -> bool {
        matches!(self, TableSource::Stored(_))
    }
}

/// Maps table names to their sources.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableSource>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register an in-memory table; errors if the name is taken.
    pub fn register(&mut self, name: impl Into<String>, rel: Relation) -> EngineResult<()> {
        self.register_shared(name, Arc::new(rel))
    }

    /// Register an already-shared relation (no copy); errors if the name
    /// is taken.
    pub fn register_shared(
        &mut self,
        name: impl Into<String>,
        rel: Arc<Relation>,
    ) -> EngineResult<()> {
        self.register_source(name, TableSource::Mem(rel))
    }

    /// Register a heap-file-backed table; errors if the name is taken.
    pub fn register_stored(
        &mut self,
        name: impl Into<String>,
        table: Arc<StoredTable>,
    ) -> EngineResult<()> {
        self.register_source(name, TableSource::Stored(table))
    }

    /// Register any source; errors if the name is taken.
    pub fn register_source(
        &mut self,
        name: impl Into<String>,
        source: TableSource,
    ) -> EngineResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(EngineError::DuplicateTable(name));
        }
        self.tables.insert(name, source);
        Ok(())
    }

    /// Register or replace an in-memory table.
    pub fn register_or_replace(&mut self, name: impl Into<String>, rel: Relation) {
        self.register_or_replace_shared(name, Arc::new(rel));
    }

    /// Register or replace a table with an already-shared relation.
    pub fn register_or_replace_shared(&mut self, name: impl Into<String>, rel: Arc<Relation>) {
        self.tables.insert(name.into(), TableSource::Mem(rel));
    }

    /// Register or replace a heap-file-backed table.
    pub fn register_or_replace_stored(&mut self, name: impl Into<String>, table: Arc<StoredTable>) {
        self.tables.insert(name.into(), TableSource::Stored(table));
    }

    /// Look up a table as a materialized relation. In-memory tables are
    /// shared (`Arc` bump); stored tables are **read off disk in full** —
    /// execution paths should use [`Catalog::source`] and stream instead.
    pub fn get(&self, name: &str) -> EngineResult<Arc<Relation>> {
        match self.source(name)? {
            TableSource::Mem(rel) => Ok(rel),
            TableSource::Stored(t) => Ok(Arc::new(t.read_all()?)),
        }
    }

    /// Look up a table's backing source (cheap: `Arc` clone).
    pub fn source(&self, name: &str) -> EngineResult<TableSource> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// A table's schema without materializing anything.
    pub fn schema_of(&self, name: &str) -> EngineResult<Schema> {
        Ok(self.source(name)?.schema().clone())
    }

    /// Remove a table, returning its source if present.
    pub fn drop_table(&mut self, name: &str) -> Option<TableSource> {
        self.tables.remove(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Owned list of all registered table names, sorted.
    pub fn list_tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Is a table with this name registered?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::tuple::Row;
    use crate::value::Value;

    fn rel() -> Relation {
        Relation::empty(Schema::new(vec![Column::new("a", DataType::Int)]))
    }

    #[test]
    fn register_and_get() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(c.get("t").is_ok());
        assert!(c.get("u").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
        assert_eq!(c.schema_of("t").unwrap().names(), vec!["a"]);
    }

    #[test]
    fn duplicate_registration_errors() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(c.register("t", rel()).is_err());
        c.register_or_replace("t", rel());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drop_removes() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(c.drop_table("t").is_some());
        assert!(c.get("t").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn stored_tables_register_and_materialize() {
        let dir = std::env::temp_dir().join("talign_engine_catalog_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.heap");
        let _ = std::fs::remove_file(&path);
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let t = StoredTable::create(&path, "t", schema, 2).unwrap();
        t.append_row(&Row::new(vec![Value::Int(41)])).unwrap();
        t.flush().unwrap();

        let mut c = Catalog::new();
        c.register_stored("t", Arc::new(t)).unwrap();
        assert!(c.source("t").unwrap().is_stored());
        assert_eq!(c.source("t").unwrap().row_count(), 1);
        assert_eq!(c.schema_of("t").unwrap().names(), vec!["a"]);
        // Compatibility accessor materializes.
        let rel = c.get("t").unwrap();
        assert_eq!(rel.rows()[0][0], Value::Int(41));
        assert!(c
            .register_stored(
                "t",
                match c.source("t").unwrap() {
                    TableSource::Stored(t) => t,
                    _ => unreachable!(),
                }
            )
            .is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
