//! Physical plans: the engine's "plan tree" with concrete algorithm
//! choices, executable into a Volcano iterator tree.

use std::sync::Arc;

use std::sync::atomic::Ordering;

use crate::error::EngineResult;
use crate::exec::{
    collect, BoxedExec, DistinctExec, ExchangeExec, ExecutionState, FilterExec, HashAggregateExec,
    HashJoinExec, HashSetOpExec, InstrumentedExec, IntervalJoinExec, LimitExec, MergeJoinExec,
    NestedLoopJoinExec, OperatorStats, ProjectExec, SeqScanExec, SortExec, StorageScanExec,
};
use crate::expr::{AggCall, Expr, SortKey};
use crate::plan::cost::{CostModel, PlanStats};
use crate::plan::logical::ExtensionNode;
use crate::plan::{JoinType, PlannerConfig, SetOpKind};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::storage::{StoredTable, ZoneBounds};

/// A pruned-scan resolution: the stored table plus the sorted list of
/// heap pages that survived zone-map / interval-index pruning.
type PrunedScan = (Arc<StoredTable>, Arc<Vec<u32>>);

/// A physical (executable) plan.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    SeqScan {
        rel: Arc<Relation>,
        label: String,
    },
    /// Streaming scan over a heap-file table: pages decode into batches
    /// through the table's buffer pool, never materializing the heap.
    /// With `bounds` set, page zone maps prune pages whose min/max
    /// summaries cannot satisfy the bounds — header-only checks, no row
    /// decoding; the planner keeps the originating filter on top, so the
    /// over-approximate page set never changes results.
    StorageScan {
        table: Arc<StoredTable>,
        label: String,
        bounds: Option<ZoneBounds>,
    },
    /// Probe the table's persistent interval index (a B+tree on
    /// valid-start with max-valid-end augmentation) for the page set that
    /// can overlap the bounds, then scan only those pages. Degrades to a
    /// zone-map sweep or a full scan when the index or the GUCs are
    /// unavailable at execution time — never errors on a missing index.
    IndexScan {
        table: Arc<StoredTable>,
        label: String,
        bounds: ZoneBounds,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<SortKey>,
    },
    HashAggregate {
        input: Box<PhysicalPlan>,
        group: Vec<Expr>,
        aggs: Vec<AggCall>,
        schema: Schema,
    },
    Distinct {
        input: Box<PhysicalPlan>,
    },
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        condition: Option<Expr>,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Children are already wrapped in the required sorts by the planner.
    MergeJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
    },
    /// Sweep-based interval overlap join (opt-in; the paper's future-work
    /// extension). Sorts internally.
    IntervalJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        join_type: JoinType,
        endpoints: (usize, usize, usize, usize), // (l_ts, l_te, r_ts, r_te)
        residual: Option<Expr>,
    },
    HashSetOp {
        kind: SetOpKind,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        n: usize,
    },
    Extension {
        node: Arc<dyn ExtensionNode>,
        children: Vec<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Output schema.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => rel.schema().clone(),
            PhysicalPlan::StorageScan { table, .. } | PhysicalPlan::IndexScan { table, .. } => {
                table.schema().clone()
            }
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::Project { schema, .. } => schema.clone(),
            PhysicalPlan::Sort { input, .. } => input.schema(),
            PhysicalPlan::HashAggregate { schema, .. } => schema.clone(),
            PhysicalPlan::Distinct { input } => input.schema(),
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                ..
            } => {
                if join_type.emits_right() {
                    left.schema().concat(&right.schema())
                } else {
                    left.schema()
                }
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                ..
            } => {
                if join_type.emits_right() {
                    left.schema().concat(&right.schema())
                } else {
                    left.schema()
                }
            }
            PhysicalPlan::MergeJoin { left, right, .. } => left.schema().concat(&right.schema()),
            PhysicalPlan::IntervalJoin { left, right, .. } => left.schema().concat(&right.schema()),
            PhysicalPlan::HashSetOp { left, .. } => left.schema(),
            PhysicalPlan::Limit { input, .. } => input.schema(),
            PhysicalPlan::Extension { node, .. } => node.schema(),
        }
    }

    /// Direct children in left-to-right order (empty for leaves) — the one
    /// place that knows each variant's child layout; every generic
    /// traversal below goes through it.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::StorageScan { .. }
            | PhysicalPlan::IndexScan { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Limit { input, .. } => vec![input],
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::IntervalJoin { left, right, .. }
            | PhysicalPlan::HashSetOp { left, right, .. } => vec![left, right],
            PhysicalPlan::Extension { children, .. } => children.iter().collect(),
        }
    }

    /// Build the executor tree for one execution under `state`. Plans
    /// carry no per-execution state (a spool's cache lives in `state`'s
    /// registry), so the same plan can be executed repeatedly — each run
    /// under a fresh [`ExecutionState`] observes current table contents.
    /// When the state's GUC snapshot enables parallelism, scan pipelines
    /// are partitioned into morsels behind an exchange operator.
    pub fn execute(&self, state: &ExecutionState) -> EngineResult<BoxedExec> {
        self.build_subtree(state)
    }

    /// Recursive build entry: partition this subtree behind an exchange
    /// when it is a scan pipeline worth splitting, otherwise build the
    /// serial operator and recurse on children (which get the same
    /// chance).
    fn build_subtree(&self, state: &ExecutionState) -> EngineResult<BoxedExec> {
        if state.threads() > 1 {
            if let Some(exec) = self.build_parallel(state)? {
                // The per-partition pipelines are already instrumented
                // node by node (`build_ranged`); wrapping the exchange
                // under the same keys again would double-count.
                return Ok(exec);
            }
        }
        let exec = self.build_exec_tree(state)?;
        Ok(self.instrumented(exec, state))
    }

    /// This plan node's identity in the instrumentation registry: its
    /// address, stable for as long as the caller borrows the plan (which
    /// covers both execution and a subsequent `explain_analyze` render).
    fn node_key(&self) -> usize {
        self as *const PhysicalPlan as usize
    }

    /// Wrap `exec` in a metering shim when the state instruments; the
    /// no-instrumentation path returns `exec` untouched.
    fn instrumented(&self, exec: BoxedExec, state: &ExecutionState) -> BoxedExec {
        match state.instrumentation() {
            Some(ins) => Box::new(InstrumentedExec::new(exec, ins.op(self.node_key()))),
            None => exec,
        }
    }

    /// Box a storage scan, attaching this plan node's page ledger when
    /// the state instruments.
    fn boxed_scan(&self, scan: StorageScanExec, state: &ExecutionState) -> BoxedExec {
        match state.instrumentation() {
            Some(ins) => Box::new(scan.with_ledger(ins.op(self.node_key()))),
            None => Box::new(scan),
        }
    }

    /// The leaf scan of a filter/project pipeline (`self` when not a
    /// pipeline) — the node page-skip accounting attributes to.
    fn pipeline_leaf(&self) -> &PhysicalPlan {
        match self {
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.pipeline_leaf()
            }
            leaf => leaf,
        }
    }

    /// If this subtree is a partitionable scan pipeline (filter/project
    /// chains over a single scan) large enough to be worth splitting,
    /// build it as up to `state.threads()` contiguous-range partitions
    /// behind an [`ExchangeExec`]; otherwise `None`. Partitions concatenate
    /// in input order, so the exchange output is row-identical to the
    /// serial pipeline.
    fn build_parallel(&self, state: &ExecutionState) -> EngineResult<Option<BoxedExec>> {
        let Some(units) = self.pipeline_units() else {
            return Ok(None);
        };
        let rows = self.pipeline_rows().unwrap_or(0);
        if !state.parallel(rows) {
            return Ok(None);
        }
        // Resolve page pruning at the pipeline's leaf first, so partitions
        // are formed over the *surviving* page set — pruning and
        // parallelism compose instead of fighting over the range layout.
        let pruned = self.pipeline_pruning(state)?;
        let units = pruned.as_ref().map_or(units, |(_, pages)| pages.len());
        let ranges = crate::exec::workers::split_ranges(units, state.threads());
        if ranges.len() <= 1 {
            // Too little left to split: fall back to the serial build,
            // which re-resolves the page set and accounts the skips.
            return Ok(None);
        }
        let parts = ranges
            .iter()
            .map(|&(a, b)| self.build_ranged(a, b, pruned.as_ref(), state))
            .collect::<EngineResult<Vec<_>>>()?;
        if let Some((table, pages)) = &pruned {
            let skipped = u64::from(table.page_count()).saturating_sub(pages.len() as u64);
            state.note_pages_skipped(skipped);
            if let Some(ins) = state.instrumentation() {
                ins.op(self.pipeline_leaf().node_key())
                    .note_pages_skipped(skipped);
            }
        }
        if let Some(ins) = state.instrumentation() {
            ins.op(self.node_key())
                .partitions
                .fetch_add(ranges.len() as u64, Ordering::Relaxed);
        }
        Ok(Some(Box::new(ExchangeExec::new(self.schema(), parts))))
    }

    /// Resolve the pruned page set at the leaf of a scan pipeline, if the
    /// leaf is a pruning scan and the GUC snapshot keeps pruning on.
    fn pipeline_pruning(&self, state: &ExecutionState) -> EngineResult<Option<PrunedScan>> {
        match self {
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.pipeline_pruning(state)
            }
            leaf => leaf.resolve_scan_pages(state),
        }
    }

    /// The page set this scan should read, resolved against the table's
    /// zone maps and interval index under the execution-time GUC snapshot.
    /// `None` means "read everything" — either the node carries no bounds
    /// or every pruning structure is disabled/absent. The result is
    /// conservative: pages are only dropped when their zone or index
    /// evidence proves no row can match. Resolved page sets are clamped to
    /// the statement's heap snapshot, so a zone sweep or index probe that
    /// races a concurrent appender never hands the scan a page past the
    /// snapshot watermark.
    fn resolve_scan_pages(&self, state: &ExecutionState) -> EngineResult<Option<PrunedScan>> {
        Ok(match self {
            PhysicalPlan::StorageScan {
                table,
                bounds: Some(bounds),
                ..
            } if state.config().enable_zonemaps => {
                let snap = state.snapshot_for(table);
                let mut pages = table.zone_surviving_pages(bounds)?;
                pages.retain(|&p| snap.sees_page(p));
                Some((table.clone(), Arc::new(pages)))
            }
            PhysicalPlan::IndexScan { table, bounds, .. } => {
                let config = state.config();
                let snap = state.snapshot_for(table);
                if config.enable_interval_index {
                    if let Some(index) = table.index() {
                        let mut pages = index
                            .probe(bounds.ts_le, bounds.te_gt)
                            .map_err(crate::error::EngineError::from)?;
                        pages.retain(|&p| snap.sees_page(p));
                        if config.enable_zonemaps {
                            // Zone re-check: the index only knows ts/te, the
                            // zones also carry key bounds and lower ts bounds.
                            let mut kept = Vec::with_capacity(pages.len());
                            for page in pages {
                                if table.zone_of(page)?.may_match(bounds) {
                                    kept.push(page);
                                }
                            }
                            pages = kept;
                        }
                        return Ok(Some((table.clone(), Arc::new(pages))));
                    }
                }
                // Index missing or disabled: degrade to a zone sweep, or a
                // full scan when zone maps are off too.
                if config.enable_zonemaps {
                    let mut pages = table.zone_surviving_pages(bounds)?;
                    pages.retain(|&p| snap.sees_page(p));
                    Some((table.clone(), Arc::new(pages)))
                } else {
                    None
                }
            }
            _ => None,
        })
    }

    /// Partition units of a scan pipeline: rows for an in-memory scan,
    /// pages for a storage scan; `None` when the subtree is not a pure
    /// pipeline over a single scan.
    fn pipeline_units(&self) -> Option<usize> {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => Some(rel.len()),
            PhysicalPlan::StorageScan { table, .. } | PhysicalPlan::IndexScan { table, .. } => {
                Some(table.page_count() as usize)
            }
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.pipeline_units()
            }
            _ => None,
        }
    }

    /// Source row count of a scan pipeline (for the parallelism size
    /// gate); `None` when not a pipeline.
    fn pipeline_rows(&self) -> Option<usize> {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => Some(rel.len()),
            PhysicalPlan::StorageScan { table, .. } | PhysicalPlan::IndexScan { table, .. } => {
                Some(table.row_count() as usize)
            }
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.pipeline_rows()
            }
            _ => None,
        }
    }

    /// Build one ranged partition of a scan pipeline: the leaf scan is
    /// restricted to `[start, end)` partition units, the filter/project
    /// chain above it is rebuilt per partition. With `pruned` set, the
    /// units index into the surviving page list rather than the raw page
    /// range. Under instrumentation every partition's node is wrapped
    /// under its plan node's key, so the partitions of one node aggregate
    /// into one stats slot.
    fn build_ranged(
        &self,
        start: usize,
        end: usize,
        pruned: Option<&PrunedScan>,
        state: &ExecutionState,
    ) -> EngineResult<BoxedExec> {
        let exec: BoxedExec = match self {
            PhysicalPlan::SeqScan { rel, .. } => {
                Box::new(SeqScanExec::with_range(rel.clone(), start, end))
            }
            PhysicalPlan::StorageScan { table, .. } | PhysicalPlan::IndexScan { table, .. } => {
                let scan = match pruned {
                    Some((_, pages)) => StorageScanExec::with_page_list(
                        table.clone(),
                        pages.clone(),
                        start as u32,
                        end as u32,
                    ),
                    None => {
                        StorageScanExec::with_page_range(table.clone(), start as u32, end as u32)
                    }
                };
                self.boxed_scan(scan, state)
            }
            PhysicalPlan::Filter { input, predicate } => Box::new(FilterExec::new(
                input.build_ranged(start, end, pruned, state)?,
                predicate.clone(),
            )),
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => Box::new(ProjectExec::new(
                input.build_ranged(start, end, pruned, state)?,
                exprs.clone(),
                schema.clone(),
            )),
            other => unreachable!("build_ranged on non-pipeline node {other:?}"),
        };
        Ok(self.instrumented(exec, state))
    }

    fn build_exec_tree(&self, state: &ExecutionState) -> EngineResult<BoxedExec> {
        Ok(match self {
            PhysicalPlan::SeqScan { rel, .. } => Box::new(SeqScanExec::new(rel.clone())),
            PhysicalPlan::StorageScan { table, .. } | PhysicalPlan::IndexScan { table, .. } => {
                match self.resolve_scan_pages(state)? {
                    Some((table, pages)) => {
                        // The single serial accounting site for page skips;
                        // the parallel path accounts in `build_parallel`.
                        let skipped =
                            u64::from(table.page_count()).saturating_sub(pages.len() as u64);
                        state.note_pages_skipped(skipped);
                        if let Some(ins) = state.instrumentation() {
                            ins.op(self.node_key()).note_pages_skipped(skipped);
                        }
                        let n = pages.len() as u32;
                        self.boxed_scan(StorageScanExec::with_page_list(table, pages, 0, n), state)
                    }
                    None => self.boxed_scan(StorageScanExec::new(table.clone()), state),
                }
            }
            PhysicalPlan::Filter { input, predicate } => Box::new(FilterExec::new(
                input.build_subtree(state)?,
                predicate.clone(),
            )),
            PhysicalPlan::Project {
                input,
                exprs,
                schema,
            } => Box::new(ProjectExec::new(
                input.build_subtree(state)?,
                exprs.clone(),
                schema.clone(),
            )),
            PhysicalPlan::Sort { input, keys } => {
                Box::new(SortExec::new(input.build_subtree(state)?, keys.clone()))
            }
            PhysicalPlan::HashAggregate {
                input,
                group,
                aggs,
                schema,
            } => Box::new(HashAggregateExec::new(
                input.build_subtree(state)?,
                group.clone(),
                aggs.clone(),
                schema.clone(),
            )),
            PhysicalPlan::Distinct { input } => {
                Box::new(DistinctExec::new(input.build_subtree(state)?))
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                condition,
            } => Box::new(NestedLoopJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                *join_type,
                condition.clone(),
            )),
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                keys,
                residual,
            } => Box::new(HashJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                keys.clone(),
                residual.clone(),
                *join_type,
            )),
            PhysicalPlan::MergeJoin {
                left,
                right,
                join_type,
                keys,
                residual,
            } => Box::new(MergeJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                keys.clone(),
                residual.clone(),
                *join_type,
            )),
            PhysicalPlan::IntervalJoin {
                left,
                right,
                join_type,
                endpoints,
                residual,
            } => Box::new(IntervalJoinExec::new(
                left.build_subtree(state)?,
                right.build_subtree(state)?,
                endpoints.0,
                endpoints.1,
                endpoints.2,
                endpoints.3,
                residual.clone(),
                *join_type,
            )),
            PhysicalPlan::HashSetOp { kind, left, right } => Box::new(HashSetOpExec::new(
                *kind,
                left.build_subtree(state)?,
                right.build_subtree(state)?,
            )?),
            PhysicalPlan::Limit { input, n } => {
                Box::new(LimitExec::new(input.build_subtree(state)?, *n))
            }
            PhysicalPlan::Extension { node, children } => {
                let mut built = Vec::with_capacity(children.len());
                for c in children {
                    built.push(c.build_subtree(state)?);
                }
                node.build_exec(built)?
            }
        })
    }

    /// Execute and materialize the result. Drains the executor tree
    /// batch-wise ([`crate::exec::ExecNode::next_batch`]) — the engine's
    /// default execution path.
    pub fn collect(&self, state: &ExecutionState) -> EngineResult<Relation> {
        collect(self.execute(state)?, state)
    }

    /// Execute and materialize via the row-at-a-time Volcano protocol —
    /// the pre-batch path, kept working so the two protocols can be
    /// differentially tested and benchmarked against each other.
    pub fn collect_rowwise(&self, state: &ExecutionState) -> EngineResult<Relation> {
        crate::exec::collect_rowwise(self.execute(state)?, state)
    }

    /// Estimated rows/cost for this subtree.
    pub fn stats(&self, model: &CostModel) -> PlanStats {
        match self {
            PhysicalPlan::SeqScan { rel, .. } => model.scan(rel.len() as f64),
            // StorageScan keeps the page-blind estimate even when bounds
            // are attached: pruning narrows pages read, not rows emitted
            // (the filter above does the row-level work), and the legacy
            // shape is pinned by golden EXPLAIN output.
            PhysicalPlan::StorageScan { table, .. } => model.scan(table.row_count() as f64),
            PhysicalPlan::IndexScan { table, bounds, .. } => {
                let rows = table.row_count() as f64;
                let pages = (table.page_count() as f64).max(1.0);
                let sel = 0.33f64.powi(bounds.bound_count() as i32);
                let levels = table.index().and_then(|i| i.levels().ok()).unwrap_or(1) as f64;
                PlanStats::new(
                    (rows * sel).max(1.0),
                    model.index_scan_cost(rows, pages, levels, sel),
                )
            }
            PhysicalPlan::Filter { input, predicate } => {
                model.filter(input.stats(model), predicate)
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                model.project(input.stats(model), exprs.len())
            }
            PhysicalPlan::Sort { input, .. } => model.sort(input.stats(model)),
            PhysicalPlan::HashAggregate {
                input, group, aggs, ..
            } => model.aggregate(input.stats(model), group.len(), aggs.len()),
            PhysicalPlan::Distinct { input } => model.distinct(input.stats(model)),
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                condition,
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    0,
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                let n_conj = condition.as_ref().map_or(0, |c| c.conjuncts().len());
                model.nested_loop_join(l, r, rows, n_conj)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                keys,
                ..
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    keys.len(),
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                model.hash_join(l, r, rows)
            }
            PhysicalPlan::MergeJoin {
                left,
                right,
                join_type,
                keys,
                ..
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    keys.len(),
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                model.merge_join(l, r, rows)
            }
            PhysicalPlan::IntervalJoin {
                left,
                right,
                join_type,
                ..
            } => {
                let (l, r) = (left.stats(model), right.stats(model));
                let rows = model.join_rows(
                    l,
                    r,
                    0,
                    join_type.emits_left_unmatched(),
                    join_type.emits_right_unmatched(),
                );
                // sort both sides + sweep
                model.merge_join(model.sort(l), model.sort(r), rows)
            }
            PhysicalPlan::HashSetOp { left, right, .. } => {
                model.set_op(left.stats(model), right.stats(model))
            }
            PhysicalPlan::Limit { input, n } => model.limit(input.stats(model), *n),
            PhysicalPlan::Extension { node, children } => {
                let stats: Vec<PlanStats> = children.iter().map(|c| c.stats(model)).collect();
                node.estimate(&stats, model)
            }
        }
    }

    /// Pretty-printed physical plan with row estimates (EXPLAIN).
    pub fn explain(&self) -> String {
        let model = CostModel::default();
        let mut out = String::new();
        self.explain_into(&mut out, 0, &model, None);
        out
    }

    /// EXPLAIN with the parallelism the given GUC snapshot would produce:
    /// a header with the effective worker count, and an `Exchange` line
    /// above every scan pipeline that execution would split into ranged
    /// partitions (`execute` inserts the exchange at build time, so the
    /// plan tree itself stays serial — this prints the execution shape).
    pub fn explain_parallel(&self, config: &PlannerConfig) -> String {
        let state = ExecutionState::new(*config);
        let model = CostModel::default();
        let mut out = format!(
            "Parallelism: threads={} (parallel_min_rows={})\n",
            state.threads(),
            state.parallel_min_rows()
        );
        self.explain_into(&mut out, 0, &model, Some(&state));
        out
    }

    fn explain_into(
        &self,
        out: &mut String,
        indent: usize,
        model: &CostModel,
        par: Option<&ExecutionState>,
    ) {
        // Would execution put an exchange over this pipeline? Mirror the
        // `build_parallel` gate exactly, then print the partition shape and
        // the (serial, per-partition) pipeline below it.
        if let Some(state) = par {
            if state.threads() > 1 {
                if let Some(units) = self.pipeline_units() {
                    let rows = self.pipeline_rows().unwrap_or(0);
                    let ranges = crate::exec::workers::split_ranges(units, state.threads());
                    if state.parallel(rows) && ranges.len() > 1 {
                        let pad = "  ".repeat(indent);
                        out.push_str(&format!(
                            "{pad}Exchange ({} partitions over {} units, gather in order)\n",
                            ranges.len(),
                            units,
                        ));
                        self.explain_into(out, indent + 1, model, None);
                        return;
                    }
                }
            }
        }
        let pad = "  ".repeat(indent);
        let st = self.stats(model);
        out.push_str(&format!(
            "{pad}{}  (rows≈{:.0} cost≈{:.2})\n",
            self.node_label(),
            st.rows,
            st.cost
        ));
        for c in self.children() {
            c.explain_into(out, indent + 1, model, par);
        }
    }

    /// The head-line label of this node, shared by `EXPLAIN` and
    /// `EXPLAIN ANALYZE` so the two surfaces print identical trees.
    fn node_label(&self) -> String {
        match self {
            PhysicalPlan::SeqScan { rel, label } => {
                format!("SeqScan on {label} [{} rows]", rel.len())
            }
            PhysicalPlan::StorageScan {
                table,
                label,
                bounds,
            } => {
                let zone = match bounds {
                    Some(b) => format!(" using zonemap ({b})"),
                    None => String::new(),
                };
                format!(
                    "StorageScan on {label}{zone} [{} pages, {} rows]",
                    table.page_count(),
                    table.row_count()
                )
            }
            PhysicalPlan::IndexScan {
                table,
                label,
                bounds,
            } => format!(
                "IndexScan on {label} using interval index ({bounds}) [{} pages, {} rows]",
                table.page_count(),
                table.row_count()
            ),
            PhysicalPlan::Filter { input, predicate } => {
                format!("Filter: {}", predicate.display(Some(&input.schema())))
            }
            PhysicalPlan::Project { .. } => "Project".to_string(),
            PhysicalPlan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
            PhysicalPlan::HashAggregate { group, .. } => {
                format!("HashAggregate ({} group cols)", group.len())
            }
            PhysicalPlan::Distinct { .. } => "Distinct".to_string(),
            PhysicalPlan::NestedLoopJoin { join_type, .. } => {
                format!("NestedLoopJoin[{}]", join_type.name())
            }
            PhysicalPlan::HashJoin {
                join_type, keys, ..
            } => format!("HashJoin[{}] on {} key(s)", join_type.name(), keys.len()),
            PhysicalPlan::MergeJoin {
                join_type, keys, ..
            } => format!("MergeJoin[{}] on {} key(s)", join_type.name(), keys.len()),
            PhysicalPlan::IntervalJoin { join_type, .. } => {
                format!("IntervalJoin[{}] (sweep)", join_type.name())
            }
            PhysicalPlan::HashSetOp { kind, .. } => format!("HashSetOp[{}]", kind.name()),
            PhysicalPlan::Limit { n, .. } => format!("Limit {n}"),
            PhysicalPlan::Extension { node, .. } => node.explain(),
        }
    }

    /// Render this (already executed) plan annotated with the actual
    /// per-operator counters the instrumented `state` collected: rows and
    /// batches emitted, wall time inside the operator (inclusive of
    /// children; parallel partitions sum), pages read/skipped for storage
    /// scans, and the partition count at the root of an exchanged
    /// pipeline. The tree shape and estimates are exactly [`Self::explain`]'s,
    /// so plan-shape assertions hold across both.
    ///
    /// `state` must be the state the plan was executed under — operator
    /// identity is the plan node address, so a different plan clone (or a
    /// fresh state) renders every node as `never executed`.
    pub fn explain_analyze(&self, state: &ExecutionState) -> String {
        let model = CostModel::default();
        let mut out = String::new();
        self.explain_analyze_into(&mut out, 0, &model, state);
        out
    }

    fn explain_analyze_into(
        &self,
        out: &mut String,
        indent: usize,
        model: &CostModel,
        state: &ExecutionState,
    ) {
        let pad = "  ".repeat(indent);
        let st = self.stats(model);
        let actual = match state
            .instrumentation()
            .and_then(|ins| ins.get(self.node_key()))
        {
            Some(op) => {
                let mut s = format!(
                    " (actual rows={} batches={} time={:.3}ms",
                    op.rows.load(Ordering::Relaxed),
                    op.batches.load(Ordering::Relaxed),
                    op.millis(),
                );
                let pages_read = op.pages_read.load(Ordering::Relaxed);
                let pages_skipped = op.pages_skipped.load(Ordering::Relaxed);
                if pages_read > 0 || pages_skipped > 0 {
                    s.push_str(&format!(
                        " pages_read={pages_read} pages_skipped={pages_skipped}"
                    ));
                }
                let partitions = op.partitions.load(Ordering::Relaxed);
                if partitions > 0 {
                    s.push_str(&format!(" partitions={partitions}"));
                }
                s.push(')');
                s
            }
            None => " (never executed)".to_string(),
        };
        out.push_str(&format!(
            "{pad}{}  (rows≈{:.0} cost≈{:.2}){actual}\n",
            self.node_label(),
            st.rows,
            st.cost
        ));
        for c in self.children() {
            c.explain_analyze_into(out, indent + 1, model, state);
        }
    }

    /// `(depth, label, stats)` for every node of this tree that executed
    /// under `state`, in explain (pre-)order — powers operator trace spans
    /// and slow-query breakdowns without re-rendering the whole tree.
    pub fn operator_stats(
        &self,
        state: &ExecutionState,
    ) -> Vec<(usize, String, Arc<OperatorStats>)> {
        let mut out = Vec::new();
        self.operator_stats_into(state, 0, &mut out);
        out
    }

    fn operator_stats_into(
        &self,
        state: &ExecutionState,
        depth: usize,
        out: &mut Vec<(usize, String, Arc<OperatorStats>)>,
    ) {
        if let Some(op) = state
            .instrumentation()
            .and_then(|ins| ins.get(self.node_key()))
        {
            out.push((depth, self.node_label(), op));
        }
        for c in self.children() {
            c.operator_stats_into(state, depth + 1, out);
        }
    }

    /// Count the nodes of this (single) physical tree satisfying `pred` —
    /// used by tests asserting that composed temporal queries plan without
    /// intermediate materialization barriers.
    pub fn count_nodes(&self, pred: &dyn Fn(&PhysicalPlan) -> bool) -> usize {
        usize::from(pred(self))
            + self
                .children()
                .into_iter()
                .map(|c| c.count_nodes(pred))
                .sum::<usize>()
    }

    /// The name of the join algorithm at the root, if the root is a join —
    /// convenient for tests asserting planner choices (Fig. 13).
    pub fn root_join_algorithm(&self) -> Option<&'static str> {
        match self {
            PhysicalPlan::NestedLoopJoin { .. } => Some("nestloop"),
            PhysicalPlan::HashJoin { .. } => Some("hash"),
            PhysicalPlan::MergeJoin { .. } => Some("merge"),
            PhysicalPlan::IntervalJoin { .. } => Some("interval"),
            _ => None,
        }
    }

    /// Find the first join algorithm in a pre-order walk of the plan.
    pub fn first_join_algorithm(&self) -> Option<&'static str> {
        if let Some(a) = self.root_join_algorithm() {
            return Some(a);
        }
        self.children()
            .into_iter()
            .find_map(|c| c.first_join_algorithm())
    }
}
