//! Fast non-cryptographic hashing for the executor's internal tables.
//!
//! Join builds, set operations, duplicate elimination and aggregation all
//! key hash containers by `Value` tuples; the standard library's default
//! SipHash is DoS-resistant but costs a large constant per small key. The
//! executor's tables are process-internal and never keyed by untrusted
//! input schemas, so an FxHash-style multiply-rotate hasher (the rustc
//! approach) is the right trade-off. Unlike `RandomState`, it is also
//! deterministic per process, which keeps repeated executions of one plan
//! byte-for-byte reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (the `rustc-hash` construction).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_spreading() {
        let bh = FxBuildHasher::default();
        let h = |v: &Vec<crate::value::Value>| -> u64 { bh.hash_one(v) };
        let a = vec![crate::value::Value::Int(1), crate::value::Value::Int(2)];
        let b = vec![crate::value::Value::Int(2), crate::value::Value::Int(1)];
        assert_eq!(h(&a), h(&a), "deterministic");
        assert_ne!(h(&a), h(&b), "order-sensitive");
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
        m.insert(vec![1, 2], 7);
        assert_eq!(m.get(&vec![1, 2]), Some(&7));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x") && !s.insert("x"));
    }
}
