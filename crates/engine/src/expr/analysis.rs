//! Join-condition analysis: split a θ condition into hashable/mergeable
//! equi-key pairs and a residual predicate.
//!
//! This is what lets the planner choose hash or merge joins for reduced
//! temporal queries: the reduction rules of the paper conjoin
//! `r.T = s.T` (i.e. `ts = ts AND te = te`) to θ, so *every* reduced join
//! has at least two equi-key pairs (paper Sec. 7.4: "the equality condition
//! … allows the database system to choose a fast nontemporal hash or merge
//! join").

use crate::expr::{CmpOp, Expr};

/// The decomposition of a join condition over `left ++ right` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinConditionParts {
    /// Pairs `(l, r)` of column indices with `left[l] = right[r]`
    /// (`r` is relative to the right row, i.e. already shifted back).
    pub equi_keys: Vec<(usize, usize)>,
    /// Conjuncts that are not simple column equalities, still expressed in
    /// concatenated coordinates.
    pub residual: Option<Expr>,
}

/// Split `condition` (over the concatenation of a `left_width`-wide left row
/// and a right row) into equi-key pairs and a residual predicate.
///
/// Only top-level conjuncts of the shape `Col(i) = Col(j)` with `i`, `j` on
/// opposite sides become keys; everything else stays in the residual.
pub fn split_join_condition(condition: Option<&Expr>, left_width: usize) -> JoinConditionParts {
    let mut equi_keys = Vec::new();
    let mut residual = Vec::new();
    if let Some(cond) = condition {
        for c in cond.conjuncts() {
            match c {
                Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(i), Expr::Col(j)) if *i < left_width && *j >= left_width => {
                        equi_keys.push((*i, *j - left_width));
                    }
                    (Expr::Col(i), Expr::Col(j)) if *j < left_width && *i >= left_width => {
                        equi_keys.push((*j, *i - left_width));
                    }
                    _ => residual.push(c.clone()),
                },
                other => residual.push(other.clone()),
            }
        }
    }
    JoinConditionParts {
        equi_keys,
        residual: Expr::and_all(residual),
    }
}

/// An interval-overlap pattern extracted from a join condition:
/// `left[l_ts] < right[r_te] ∧ right[r_ts] < left[l_te]` (column indices
/// relative to each side's own row), plus the remaining conjuncts.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapPattern {
    pub l_ts: usize,
    pub l_te: usize,
    pub r_ts: usize,
    pub r_te: usize,
    /// All other conjuncts, in concatenated coordinates.
    pub residual: Option<Expr>,
}

/// Detect the overlap pattern in a condition over `left ++ right` rows —
/// the shape produced by the temporal primitives' group-construction join
/// and by the `sql` baseline. Returns `None` unless exactly one
/// `l.? < r.?` and one `r.? < l.?` strict comparison exist among the
/// top-level conjuncts.
pub fn detect_overlap_pattern(
    condition: Option<&Expr>,
    left_width: usize,
) -> Option<OverlapPattern> {
    let cond = condition?;
    let mut l_starts: Vec<(usize, usize)> = Vec::new(); // (l_col, r_col): l < r
    let mut r_starts: Vec<(usize, usize)> = Vec::new(); // (r_col, l_col): r < l
    let mut residual: Vec<Expr> = Vec::new();
    for c in cond.conjuncts() {
        match c {
            Expr::Cmp(CmpOp::Lt, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(i), Expr::Col(j)) if *i < left_width && *j >= left_width => {
                    l_starts.push((*i, *j - left_width));
                }
                (Expr::Col(i), Expr::Col(j)) if *i >= left_width && *j < left_width => {
                    r_starts.push((*i - left_width, *j));
                }
                _ => residual.push(c.clone()),
            },
            Expr::Cmp(CmpOp::Gt, a, b) => match (a.as_ref(), b.as_ref()) {
                // x > y ≡ y < x
                (Expr::Col(i), Expr::Col(j)) if *j < left_width && *i >= left_width => {
                    l_starts.push((*j, *i - left_width));
                }
                (Expr::Col(i), Expr::Col(j)) if *j >= left_width && *i < left_width => {
                    r_starts.push((*j - left_width, *i));
                }
                _ => residual.push(c.clone()),
            },
            other => residual.push(other.clone()),
        }
    }
    if l_starts.len() != 1 || r_starts.len() != 1 {
        return None;
    }
    let (l_ts, r_te) = l_starts[0];
    let (r_ts, l_te) = r_starts[0];
    Some(OverlapPattern {
        l_ts,
        l_te,
        r_ts,
        r_te,
        residual: Expr::and_all(residual),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn detects_overlap_pattern() {
        // left = (k, ts, te) width 3; right = (k, ts, te):
        // l.ts < r.te ∧ r.ts < l.te ∧ l.k = r.k
        let cond = col(1)
            .lt(col(5))
            .and(col(4).lt(col(2)))
            .and(col(0).eq(col(3)));
        let p = detect_overlap_pattern(Some(&cond), 3).unwrap();
        assert_eq!((p.l_ts, p.l_te, p.r_ts, p.r_te), (1, 2, 1, 2));
        assert_eq!(p.residual.unwrap(), col(0).eq(col(3)));
    }

    #[test]
    fn detects_overlap_written_with_gt() {
        // r.te > l.ts ∧ l.te > r.ts
        let cond = col(5).gt(col(1)).and(col(2).gt(col(4)));
        let p = detect_overlap_pattern(Some(&cond), 3).unwrap();
        assert_eq!((p.l_ts, p.l_te, p.r_ts, p.r_te), (1, 2, 1, 2));
        assert!(p.residual.is_none());
    }

    #[test]
    fn rejects_ambiguous_or_missing_patterns() {
        // two l<r comparisons
        let cond = col(1).lt(col(5)).and(col(0).lt(col(4)));
        assert!(detect_overlap_pattern(Some(&cond), 3).is_none());
        // only one side
        let cond = col(1).lt(col(5));
        assert!(detect_overlap_pattern(Some(&cond), 3).is_none());
        assert!(detect_overlap_pattern(None, 3).is_none());
    }

    #[test]
    fn extracts_equi_pairs_both_directions() {
        // left width 3: cols 0..3 left, 3.. right
        let cond = col(0)
            .eq(col(4))
            .and(col(5).eq(col(2)))
            .and(col(1).lt(col(3)));
        let parts = split_join_condition(Some(&cond), 3);
        assert_eq!(parts.equi_keys, vec![(0, 1), (2, 2)]);
        let residual = parts.residual.unwrap();
        assert_eq!(residual, col(1).lt(col(3)));
    }

    #[test]
    fn same_side_equality_is_residual() {
        let cond = col(0).eq(col(1)); // both on the left
        let parts = split_join_condition(Some(&cond), 3);
        assert!(parts.equi_keys.is_empty());
        assert!(parts.residual.is_some());
    }

    #[test]
    fn literal_equality_is_residual() {
        let cond = col(0).eq(lit(5i64)).and(col(0).eq(col(3)));
        let parts = split_join_condition(Some(&cond), 2);
        assert_eq!(parts.equi_keys, vec![(0, 1)]);
        assert_eq!(parts.residual.unwrap(), col(0).eq(lit(5i64)));
    }

    #[test]
    fn none_condition_yields_empty_parts() {
        let parts = split_join_condition(None, 2);
        assert!(parts.equi_keys.is_empty());
        assert!(parts.residual.is_none());
    }

    #[test]
    fn temporal_reduction_shape_has_two_keys() {
        // A reduced join condition: pcn = pcn AND ts = ts AND te = te,
        // where left row is (pcn, ts, te) and right row is (pcn, ts, te).
        let cond = col(0)
            .eq(col(3))
            .and(col(1).eq(col(4)))
            .and(col(2).eq(col(5)));
        let parts = split_join_condition(Some(&cond), 3);
        assert_eq!(parts.equi_keys.len(), 3);
        assert!(parts.residual.is_none());
    }
}
