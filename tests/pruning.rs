//! Page pruning end to end (ISSUE 7): per-page zone maps and the
//! persistent interval index must (a) never change results — on, off, and
//! in-memory execution agree row-for-row on the paper's synthetic
//! datasets, (b) demonstrably skip pages on selective `AS OF` timeslices
//! (asserted through the `pages_read` / `pages_skipped` counters), and
//! (c) survive a drop/reopen through the manifest, with the frame and SQL
//! surfaces choosing the same access path.

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_alignment::sql::{DatabaseSqlExt, Session};
use temporal_datasets::{ddisj, deq, drand};

/// A unique scratch directory for one test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("talign_pruning_tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flip both pruning GUCs on the shared planner.
fn set_pruning(db: &Database, zonemaps: bool, index: bool) {
    db.set("enable_zonemaps", zonemaps).unwrap();
    db.set("enable_interval_index", index).unwrap();
}

/// Execute `table AS OF v` with an inspectable [`ExecutionState`]:
/// returns the result rows plus the `(pages_read, pages_skipped)`
/// counters of that single execution.
fn run_as_of(db: &Database, table: &str, v: i64) -> (Vec<Row>, (u64, u64)) {
    let plan = db.table(table).unwrap().as_of(v).into_plan().unwrap();
    let physical = db.physical(&plan).unwrap();
    let state = ExecutionState::new(db.config());
    let rel = physical.collect(&state).unwrap();
    (rel.rows().to_vec(), state.stats.pages())
}

/// Brute-force timeslice over the raw rows (trailing `ts`, `te`).
fn oracle_as_of(rel: &TemporalRelation, v: i64) -> Vec<Row> {
    let n = rel.schema().len();
    rel.rows()
        .iter()
        .filter(|r| {
            matches!((&r[n - 2], &r[n - 1]),
                (Value::Int(ts), Value::Int(te)) if *ts <= v && *te > v)
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential: timeslices over persisted tables agree with the
    /// brute-force oracle under every pruning-GUC combination — zone maps
    /// and the interval index may only skip pages, never rows.
    #[test]
    fn pruning_matches_oracle_on_synthetic_datasets(
        n in 50usize..400,
        seed in 0u64..1000,
        pick in 0u64..10_000,
    ) {
        let dir = scratch("proptest-differential");
        let db = Database::open(&dir).unwrap();
        let (dd_r, _) = ddisj(n);
        let (de_r, _) = deq(n);
        let (dr_r, _) = drand(n, seed);
        db.register("dd", &dd_r).unwrap();
        db.register("de", &de_r).unwrap();
        db.register("dr", &dr_r).unwrap();
        for (name, rel) in [("dd", &dd_r), ("de", &de_r), ("dr", &dr_r)] {
            // Instants across (and beyond) each dataset's timeline.
            for v in [0, 1, (pick % (20 * n as u64)) as i64, 100, -5] {
                let expected = oracle_as_of(rel, v);
                for (zm, ix) in [(true, true), (true, false), (false, true), (false, false)] {
                    set_pruning(&db, zm, ix);
                    let (rows, (read, skipped)) = run_as_of(&db, name, v);
                    prop_assert_eq!(
                        &rows, &expected,
                        "{} AS OF {} drifted (zonemaps={}, index={})", name, v, zm, ix
                    );
                    if !zm && !ix {
                        prop_assert_eq!(skipped, 0, "pruning off must not skip pages");
                    }
                    prop_assert!(read + skipped > 0, "scan touched no pages at all");
                }
            }
        }
        set_pruning(&db, true, true);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A selective `AS OF` on a persisted, time-clustered table must read
/// only the overlapping pages: `pages_skipped` dominates, and turning
/// pruning off reads every page of the heap.
#[test]
fn selective_as_of_skips_pages() {
    let dir = scratch("skips-pages");
    let db = Database::open(&dir).unwrap();
    // Ddisj tiles the timeline in registration order, so heap pages are
    // perfectly time-clustered — the worst case for a full scan, the best
    // case for pruning.
    let (r, _) = ddisj(3000);
    db.register("r", &r).unwrap();
    // Explicit: these assertions need pruning on even when the suite
    // runs with TEMPORAL_ZONEMAPS=0 / TEMPORAL_INTERVAL_INDEX=0.
    set_pruning(&db, true, true);
    let total = db.read(|catalog, _| match catalog.source("r").unwrap() {
        TableSource::Stored(t) => t.page_count() as u64,
        TableSource::Mem(_) => panic!("r must be stored"),
    });
    assert!(total > 4, "need a multi-page heap, got {total} pages");

    // AS OF mid-timeline hits exactly one row → at most a page or two.
    let v = 20 * 1500 + 2;
    let (rows, (read, skipped)) = run_as_of(&db, "r", v);
    assert_eq!(rows.len(), 1, "ddisj AS OF mid-slot hits exactly one row");
    assert!(
        skipped > 0 && skipped >= total - 2,
        "expected nearly all of {total} pages skipped, got {skipped} (read {read})"
    );
    assert_eq!(
        read + skipped,
        total,
        "every page is either read or skipped"
    );

    // Zone maps alone (no index) must prune just as hard on clustered data.
    set_pruning(&db, true, false);
    let (rows, (read_zm, skipped_zm)) = run_as_of(&db, "r", v);
    assert_eq!(rows.len(), 1);
    assert!(
        skipped_zm >= total - 2,
        "zone maps alone pruned {skipped_zm}"
    );
    assert!(read_zm <= 2);

    // Pruning off: the scan reads the whole heap and skips nothing.
    set_pruning(&db, false, false);
    let (rows, (read_off, skipped_off)) = run_as_of(&db, "r", v);
    assert_eq!(rows.len(), 1);
    assert_eq!((read_off, skipped_off), (total, 0));
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Half-open boundary semantics survive pruning bit-for-bit: `ts == v`
/// is included, `te == v` is excluded, under every GUC combination.
#[test]
fn boundary_intervals_never_drift() {
    let dir = scratch("boundaries");
    let db = Database::open(&dir).unwrap();
    let rel = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("id", DataType::Int)]),
        vec![
            (vec![Value::Int(1)], Interval::of(5, 10)), // te == v: out
            (vec![Value::Int(2)], Interval::of(10, 15)), // ts == v: in
            (vec![Value::Int(3)], Interval::of(9, 11)), // straddles: in
            (vec![Value::Int(4)], Interval::of(11, 12)), // later: out
        ],
    )
    .unwrap();
    db.register("b", &rel).unwrap();
    for (zm, ix) in [(true, true), (true, false), (false, true), (false, false)] {
        set_pruning(&db, zm, ix);
        let (rows, _) = run_as_of(&db, "b", 10);
        let ids: Vec<_> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            ids,
            vec![Value::Int(2), Value::Int(3)],
            "boundary drift at v=10 (zonemaps={zm}, index={ix})"
        );
    }
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The interval index is registered in the manifest and survives a
/// drop/reopen: the reopened database still plans an IndexScan, answers
/// identically, and `drop_table` removes the index file with the heap.
#[test]
fn interval_index_reopens_through_manifest() {
    let dir = scratch("index-reopen");
    let db = Database::open(&dir).unwrap();
    let (r, _) = drand(3000, 42);
    db.register("r", &r).unwrap();
    // Explicit: these assertions need pruning on even when the suite
    // runs with TEMPORAL_ZONEMAPS=0 / TEMPORAL_INTERVAL_INDEX=0.
    set_pruning(&db, true, true);
    let tidx = dir.join("r.tidx");
    assert!(tidx.exists(), "persist must build {}", tidx.display());

    let v = 5000;
    let explain = db.table("r").unwrap().as_of(v).explain().unwrap();
    assert!(
        explain.contains("IndexScan on r using interval index"),
        "expected an IndexScan access path, got:\n{explain}"
    );
    let (before, _) = run_as_of(&db, "r", v);
    assert_eq!(before, oracle_as_of(&r, v));
    drop(db);

    // Reopen: the manifest's index column re-attaches the .tidx file.
    let db = Database::open(&dir).unwrap();
    set_pruning(&db, true, true); // fresh planner re-reads the env defaults
    let explain = db.table("r").unwrap().as_of(v).explain().unwrap();
    assert!(
        explain.contains("IndexScan on r using interval index"),
        "reopened database lost the index path:\n{explain}"
    );
    let (after, (read, skipped)) = run_as_of(&db, "r", v);
    assert_eq!(before, after, "reopen changed the timeslice");
    assert!(read + skipped > 0);

    // Appends maintain the index without a rebuild.
    let extra: Row = vec![Value::Int(9999), Value::Int(v), Value::Int(v + 1)].into();
    db.insert_rows("r", vec![extra.clone()]).unwrap();
    let (appended, _) = run_as_of(&db, "r", v);
    assert_eq!(appended.len(), after.len() + 1);
    assert!(appended.contains(&extra));

    assert!(db.drop_table("r").unwrap());
    assert!(!tidx.exists(), "drop_table must remove the index file");
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The frame and SQL surfaces print the same chosen access path for the
/// same timeslice — `AS OF` lowers to one canonical predicate.
#[test]
fn explain_access_path_identical_on_both_surfaces() {
    let dir = scratch("explain-parity");
    let db = Database::open(&dir).unwrap();
    let (r, _) = drand(3000, 7);
    db.register("r", &r).unwrap();
    // Explicit: these assertions need pruning on even when the suite
    // runs with TEMPORAL_ZONEMAPS=0 / TEMPORAL_INTERVAL_INDEX=0.
    set_pruning(&db, true, true);
    let v = 4000;

    let frame_explain = db.table("r").unwrap().as_of(v).explain().unwrap();
    let mut session = Session::with_database(db.clone());
    let sql_explain = session
        .explain(&format!("SELECT * FROM r AS OF {v}"))
        .unwrap();

    let scan_line = |s: &str| {
        s.lines()
            .find(|l| l.contains("Scan on "))
            .map(str::trim)
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no scan line in:\n{s}"))
    };
    let (f, s) = (scan_line(&frame_explain), scan_line(&sql_explain));
    assert_eq!(
        f, s,
        "access paths diverge:\n{frame_explain}\nvs\n{sql_explain}"
    );
    assert!(
        f.contains("using interval index") || f.contains("using zonemap"),
        "timeslice did not choose a pruned access path: {f}"
    );

    // SQL SET reaches the same GUCs: forcing pruning off falls back to a
    // plain storage scan on both surfaces.
    db.sql("SET enable_zonemaps = false").unwrap();
    db.sql("SET enable_interval_index = false").unwrap();
    let off = db.table("r").unwrap().as_of(v).explain().unwrap();
    let off_line = scan_line(&off);
    assert!(
        off_line.starts_with("StorageScan on r ["),
        "pruning off must plan a plain scan: {off_line}"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}
