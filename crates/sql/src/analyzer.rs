//! The analyzer: AST → engine logical plan (the "query tree" step of the
//! paper's Fig. 12). Name resolution, wildcard expansion, aggregate
//! extraction, `EXISTS` decorrelation into semi/anti joins, and lowering
//! of `ALIGN` / `NORMALIZE` / `ABSORB` onto the temporal primitives.

use temporal_core::primitives::absorb::AbsorbNode;
use temporal_core::primitives::adjustment::{align_plan, normalize_plan};
use temporal_engine::catalog::Catalog;
use temporal_engine::prelude::*;

use crate::ast::*;
use crate::error::{SqlError, SqlResult};

/// Analyzes statements against a catalog.
pub struct Analyzer<'a> {
    catalog: &'a Catalog,
}

/// CTE scope: ordered name → (plan, schema), later entries shadow earlier
/// ones and catalog tables.
#[derive(Default, Clone)]
struct CteScope {
    entries: Vec<(String, (LogicalPlan, Schema))>,
}

impl CteScope {
    fn get(&self, name: &str) -> Option<&(LogicalPlan, Schema)> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    fn insert(&mut self, name: String, value: (LogicalPlan, Schema)) {
        self.entries.push((name, value));
    }
}

impl<'a> Analyzer<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Analyzer { catalog }
    }

    /// Analyze a SELECT statement into a logical plan.
    pub fn analyze(&self, stmt: &SelectStmt) -> SqlResult<LogicalPlan> {
        let ctes = CteScope::default();
        let (plan, _) = self.select(stmt, &ctes)?;
        Ok(plan)
    }

    fn select(&self, stmt: &SelectStmt, outer_ctes: &CteScope) -> SqlResult<(LogicalPlan, Schema)> {
        let mut ctes = outer_ctes.clone();
        for (name, sub) in &stmt.with {
            let (plan, schema) = self.select(sub, &ctes)?;
            ctes.insert(name.clone(), (plan, schema));
        }
        self.select_body(stmt, &ctes)
    }

    fn select_body(&self, stmt: &SelectStmt, ctes: &CteScope) -> SqlResult<(LogicalPlan, Schema)> {
        // FROM
        let (mut plan, mut schema) = match &stmt.from {
            Some(tr) => self.table_ref(tr, ctes)?,
            None => {
                // SELECT without FROM: a single empty row.
                let rel =
                    Relation::new(Schema::empty(), vec![Row::new(vec![])]).expect("empty schema");
                (LogicalPlan::inline_scan(rel), Schema::empty())
            }
        };

        // WHERE (with EXISTS decorrelation)
        if let Some(w) = &stmt.where_clause {
            let mut plain: Vec<Expr> = Vec::new();
            for conjunct in w.clone().conjuncts() {
                match conjunct {
                    AstExpr::Exists { query, negated } => {
                        // Flush accumulated filters before the join so the
                        // semi/anti join sees the filtered outer side.
                        if let Some(f) = Expr::and_all(plain.drain(..)) {
                            plan = plan.filter(f);
                        }
                        let (p, s) = self.exists_join(plan, &schema, &query, negated, ctes)?;
                        plan = p;
                        schema = s;
                    }
                    other => plain.push(self.scalar(&other, &schema)?),
                }
            }
            if let Some(f) = Expr::and_all(plain) {
                plan = plan.filter(f);
            }
        }

        // Projection / aggregation
        let has_agg = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                _ => false,
            });
        let (mut plan, mut out_schema) = if has_agg {
            self.aggregate_projection(stmt, plan, &schema)?
        } else {
            self.plain_projection(stmt, plan, &schema)?
        };

        // Quantifier
        match stmt.quantifier {
            Quantifier::All => {}
            Quantifier::Distinct => plan = plan.distinct(),
            Quantifier::Absorb => {
                // Paper Sec. 6.2: ABSORB eliminates temporal duplicates.
                // Convention: the projected output's last two columns are
                // the interval.
                if out_schema.len() < 2
                    || out_schema.col(out_schema.len() - 2).dtype != DataType::Int
                    || out_schema.col(out_schema.len() - 1).dtype != DataType::Int
                {
                    return Err(SqlError::Analyze(
                        "ABSORB requires the last two selected columns to be the \
                         interval (Int ts, te)"
                            .into(),
                    ));
                }
                plan = AbsorbNode::plan(plan);
            }
        }

        // ORDER BY (resolved against the output schema)
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for (e, desc) in &stmt.order_by {
                let expr = self.scalar(e, &out_schema)?;
                keys.push(if *desc {
                    SortKey::desc(expr)
                } else {
                    SortKey::asc(expr)
                });
            }
            plan = plan.sort(keys);
        }
        if let Some(n) = stmt.limit {
            plan = plan.limit(n);
        }

        // Set-operation continuation
        if let Some((op, rhs)) = &stmt.set_op {
            let (rhs_plan, rhs_schema) = self.select_body(rhs, ctes)?;
            if !out_schema.union_compatible(&rhs_schema) {
                return Err(SqlError::Analyze(format!(
                    "set operation arguments not union compatible: {out_schema} vs {rhs_schema}"
                )));
            }
            let kind = match op {
                SetOp::Union => SetOpKind::Union,
                SetOp::Except => SetOpKind::Except,
                SetOp::Intersect => SetOpKind::Intersect,
            };
            plan = plan.set_op(kind, rhs_plan);
            out_schema = out_schema.without_qualifiers();
        }

        Ok((plan, out_schema))
    }

    // ---- FROM items ------------------------------------------------------

    /// Lower `AS OF <expr>` to the canonical timeslice predicate
    /// `ts <= v AND te > v` over the table's trailing `(ts, te)` columns —
    /// the same range shape [`TemporalFrame::as_of`] produces, so both
    /// surfaces hit the planner's access-path selection identically.
    fn apply_as_of(
        &self,
        plan: LogicalPlan,
        schema: &Schema,
        as_of: &Option<AstExpr>,
        name: &str,
    ) -> SqlResult<LogicalPlan> {
        let Some(ast) = as_of else {
            return Ok(plan);
        };
        let n = schema.len();
        let temporal = n >= 2
            && schema.cols()[n - 2].dtype == DataType::Int
            && schema.cols()[n - 1].dtype == DataType::Int;
        if !temporal {
            return Err(SqlError::Analyze(format!(
                "AS OF requires a temporal table; '{name}' lacks trailing integer (ts, te) columns"
            )));
        }
        let v = self.scalar(ast, schema)?;
        let predicate = col(n - 2).le(v.clone()).and(col(n - 1).gt(v));
        Ok(plan.filter(predicate))
    }

    fn table_ref(&self, tr: &TableRef, ctes: &CteScope) -> SqlResult<(LogicalPlan, Schema)> {
        match tr {
            TableRef::Named { name, alias, as_of } => {
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                if let Some((plan, schema)) = ctes.get(name) {
                    let q = schema.with_qualifier(&qualifier);
                    let plan = self.apply_as_of(requalify(plan.clone(), &q), &q, as_of, name)?;
                    return Ok((plan, q));
                }
                let schema = self
                    .catalog
                    .schema_of(name)
                    .map_err(|e| SqlError::Analyze(e.to_string()))?
                    .with_qualifier(&qualifier);
                let plan = self.apply_as_of(
                    LogicalPlan::table_scan(name.clone(), schema.clone()),
                    &schema,
                    as_of,
                    name,
                )?;
                Ok((plan, schema))
            }
            TableRef::Subquery { query, alias } => {
                let (plan, schema) = self.select(query, ctes)?;
                let q = schema.with_qualifier(alias);
                Ok((requalify(plan, &q), q))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.table_ref(left, ctes)?;
                let (rp, rs) = self.table_ref(right, ctes)?;
                let combined = ls.concat(&rs);
                let cond = match on {
                    Some(e) => Some(self.scalar(e, &combined)?),
                    None => None,
                };
                let jt = match kind {
                    JoinKind::Inner => JoinType::Inner,
                    JoinKind::Left => JoinType::Left,
                    JoinKind::Right => JoinType::Right,
                    JoinKind::Full => JoinType::Full,
                    JoinKind::Cross => JoinType::Inner,
                };
                Ok((lp.join(rp, jt, cond), combined))
            }
            TableRef::Align {
                left,
                right,
                on,
                alias,
            } => {
                let (lp, ls) = self.table_ref(left, ctes)?;
                let (rp, rs) = self.table_ref(right, ctes)?;
                check_temporal(&ls, "ALIGN left argument")?;
                check_temporal(&rs, "ALIGN right argument")?;
                let combined = ls.concat(&rs);
                let theta = self.scalar(on, &combined)?;
                let plan = align_plan(lp, rp, Some(theta))?;
                let schema = match alias {
                    Some(a) => ls.with_qualifier(a),
                    None => ls,
                };
                Ok((requalify(plan, &schema), schema))
            }
            TableRef::Normalize {
                left,
                right,
                using,
                alias,
            } => {
                let (lp, ls) = self.table_ref(left, ctes)?;
                let (rp, rs) = self.table_ref(right, ctes)?;
                check_temporal(&ls, "NORMALIZE left argument")?;
                check_temporal(&rs, "NORMALIZE right argument")?;
                let mut b = Vec::with_capacity(using.len());
                for name in using {
                    let li = ls
                        .index_of(name)
                        .map_err(|e| SqlError::Analyze(e.to_string()))?;
                    let ri = rs
                        .index_of(name)
                        .map_err(|e| SqlError::Analyze(e.to_string()))?;
                    if li >= ls.len() - 2 || ri >= rs.len() - 2 {
                        return Err(SqlError::Analyze(format!(
                            "USING column '{name}' must be a nontemporal attribute"
                        )));
                    }
                    b.push((li, ri));
                }
                let plan = normalize_plan(lp, rp, &b)?;
                let schema = match alias {
                    Some(a) => ls.with_qualifier(a),
                    None => ls,
                };
                Ok((requalify(plan, &schema), schema))
            }
        }
    }

    /// `[NOT] EXISTS (SELECT … FROM f WHERE c)` → semi/anti join with the
    /// correlated predicate. Correlated references must be qualified with
    /// the outer alias (ambiguous unqualified names are rejected).
    fn exists_join(
        &self,
        outer: LogicalPlan,
        outer_schema: &Schema,
        sub: &SelectStmt,
        negated: bool,
        ctes: &CteScope,
    ) -> SqlResult<(LogicalPlan, Schema)> {
        if !sub.with.is_empty()
            || !sub.group_by.is_empty()
            || sub.set_op.is_some()
            || !sub.order_by.is_empty()
            || sub.limit.is_some()
        {
            return Err(SqlError::Analyze(
                "EXISTS subqueries support only SELECT … FROM … WHERE …".into(),
            ));
        }
        let from = sub
            .from
            .as_ref()
            .ok_or_else(|| SqlError::Analyze("EXISTS subquery needs a FROM clause".into()))?;
        let (sub_plan, sub_schema) = self.table_ref(from, ctes)?;
        let combined = outer_schema.concat(&sub_schema);
        let cond = match &sub.where_clause {
            Some(w) => {
                if w.clone()
                    .conjuncts()
                    .iter()
                    .any(|c| matches!(c, AstExpr::Exists { .. }))
                {
                    return Err(SqlError::Analyze("nested EXISTS is not supported".into()));
                }
                Some(self.scalar(w, &combined)?)
            }
            None => None,
        };
        let jt = if negated {
            JoinType::Anti
        } else {
            JoinType::Semi
        };
        Ok((outer.join(sub_plan, jt, cond), outer_schema.clone()))
    }

    // ---- projections -----------------------------------------------------

    fn plain_projection(
        &self,
        stmt: &SelectStmt,
        plan: LogicalPlan,
        schema: &Schema,
    ) -> SqlResult<(LogicalPlan, Schema)> {
        let mut exprs: Vec<Expr> = Vec::new();
        let mut cols: Vec<Column> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in schema.cols().iter().enumerate() {
                        exprs.push(col(i));
                        cols.push(c.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for (i, c) in schema.cols().iter().enumerate() {
                        if c.qualifier.as_deref() == Some(q.as_str()) {
                            exprs.push(col(i));
                            cols.push(c.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(SqlError::Analyze(format!(
                            "unknown relation alias '{q}' in {q}.*"
                        )));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let e = self.scalar(expr, schema)?;
                    let dtype = e
                        .infer_type(schema)
                        .map_err(|er| SqlError::Analyze(er.to_string()))?;
                    let name = alias.clone().unwrap_or_else(|| derive_name(expr));
                    // Column references keep their qualifier for
                    // downstream resolution (e.g. ORDER BY r.ts).
                    let column = match (&e, alias) {
                        (Expr::Col(i), None) => schema.col(*i).clone(),
                        _ => Column::new(name, dtype),
                    };
                    exprs.push(e);
                    cols.push(column);
                }
            }
        }
        let out_schema = Schema::new(cols);
        let plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: out_schema.clone(),
        };
        Ok((plan, out_schema))
    }

    fn aggregate_projection(
        &self,
        stmt: &SelectStmt,
        plan: LogicalPlan,
        schema: &Schema,
    ) -> SqlResult<(LogicalPlan, Schema)> {
        // Resolve grouping expressions.
        let mut group_exprs: Vec<Expr> = Vec::new();
        for g in &stmt.group_by {
            group_exprs.push(self.scalar(g, schema)?);
        }
        let _n_group = group_exprs.len();

        // Rewrite select items over (group cols ++ agg cols).
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut out_items: Vec<(Expr, Column)> = Vec::new();
        for item in &stmt.items {
            let (expr, alias) = match item {
                SelectItem::Expr { expr, alias } => (expr, alias),
                _ => {
                    return Err(SqlError::Analyze(
                        "wildcards are not allowed with GROUP BY / aggregates".into(),
                    ))
                }
            };
            let rewritten =
                self.rewrite_agg(expr, schema, &stmt.group_by, &group_exprs, &mut aggs)?;
            let name = alias.clone().unwrap_or_else(|| derive_name(expr));
            // Plain column references keep their qualifier so ORDER BY
            // q.col still resolves; types are fixed up below.
            let column = match (expr, alias) {
                (
                    AstExpr::Column {
                        qualifier: Some(q), ..
                    },
                    None,
                ) => Column::qualified(q.clone(), name, DataType::Int),
                _ => Column::new(name, DataType::Int),
            };
            out_items.push((rewritten, column));
        }

        // Build the Aggregate node.
        let group_named: Vec<(Expr, String)> = group_exprs
            .iter()
            .enumerate()
            .map(|(i, e)| (e.clone(), format!("__g{i}")))
            .collect();
        let aggs_named: Vec<(AggCall, String)> = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), format!("__a{i}")))
            .collect();
        let agg_plan = plan
            .aggregate_named(group_named, aggs_named)
            .map_err(|e| SqlError::Analyze(e.to_string()))?;
        let agg_schema = agg_plan.schema();

        // Finalize output columns with proper types.
        let mut exprs = Vec::with_capacity(out_items.len());
        let mut cols = Vec::with_capacity(out_items.len());
        for (e, mut c) in out_items {
            c.dtype = e
                .infer_type(&agg_schema)
                .map_err(|er| SqlError::Analyze(er.to_string()))?;
            exprs.push(e);
            cols.push(c);
        }
        let out_schema = Schema::new(cols);
        let plan = LogicalPlan::Project {
            input: Box::new(agg_plan),
            exprs,
            schema: out_schema.clone(),
        };
        Ok((plan, out_schema))
    }

    /// Rewrite a select-item AST over the aggregate output: grouping
    /// expressions map to their group column, aggregate calls are
    /// registered and map to their agg column; anything else recurses.
    fn rewrite_agg(
        &self,
        ast: &AstExpr,
        input: &Schema,
        group_asts: &[AstExpr],
        group_exprs: &[Expr],
        aggs: &mut Vec<AggCall>,
    ) -> SqlResult<Expr> {
        // Syntactic match with a GROUP BY item?
        if let Some(i) = group_asts.iter().position(|g| g == ast) {
            return Ok(col(i));
        }
        // Semantic match (same resolved expression)?
        if let Ok(resolved) = self.scalar(ast, input) {
            if let Some(i) = group_exprs.iter().position(|g| *g == resolved) {
                return Ok(col(i));
            }
        }
        match ast {
            AstExpr::Func { name, args, star } => {
                if let Some(func) = agg_func(name) {
                    let call = if *star {
                        AggCall::count_star()
                    } else {
                        if args.len() != 1 {
                            return Err(SqlError::Analyze(format!(
                                "aggregate {name} expects one argument"
                            )));
                        }
                        AggCall::new(func, self.scalar(&args[0], input)?)
                    };
                    let idx = aggs.len();
                    aggs.push(call);
                    return Ok(col(group_exprs.len() + idx));
                }
                // Scalar function over rewritten arguments.
                let mut rewritten = Vec::with_capacity(args.len());
                for a in args {
                    rewritten.push(self.rewrite_agg(a, input, group_asts, group_exprs, aggs)?);
                }
                Ok(Expr::Func(scalar_func(name)?, rewritten))
            }
            AstExpr::IntLit(v) => Ok(lit(*v)),
            AstExpr::FloatLit(v) => Ok(lit(*v)),
            AstExpr::StringLit(s) => Ok(lit(Value::str(s))),
            AstExpr::BoolLit(b) => Ok(lit(*b)),
            AstExpr::NullLit => Ok(Expr::Lit(Value::Null)),
            AstExpr::Binary { op, left, right } => {
                let l = self.rewrite_agg(left, input, group_asts, group_exprs, aggs)?;
                let r = self.rewrite_agg(right, input, group_asts, group_exprs, aggs)?;
                Ok(binary(*op, l, r))
            }
            AstExpr::Neg(e) => Ok(Expr::Neg(Box::new(self.rewrite_agg(
                e,
                input,
                group_asts,
                group_exprs,
                aggs,
            )?))),
            AstExpr::Column { qualifier, name } => Err(SqlError::Analyze(format!(
                "column '{}{name}' must appear in GROUP BY or inside an aggregate",
                qualifier
                    .as_ref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            other => Err(SqlError::Analyze(format!(
                "unsupported expression in aggregate select list: {other:?}"
            ))),
        }
    }

    // ---- scalar expressions ----------------------------------------------

    fn scalar(&self, ast: &AstExpr, schema: &Schema) -> SqlResult<Expr> {
        Ok(match ast {
            AstExpr::Column { qualifier, name } => {
                let idx = schema
                    .resolve(qualifier.as_deref(), name)
                    .map_err(|e| SqlError::Analyze(e.to_string()))?;
                col(idx)
            }
            AstExpr::IntLit(v) => lit(*v),
            AstExpr::FloatLit(v) => lit(*v),
            AstExpr::StringLit(s) => lit(Value::str(s)),
            AstExpr::BoolLit(b) => lit(*b),
            AstExpr::NullLit => Expr::Lit(Value::Null),
            AstExpr::Binary { op, left, right } => {
                let l = self.scalar(left, schema)?;
                let r = self.scalar(right, schema)?;
                binary(*op, l, r)
            }
            AstExpr::Not(e) => self.scalar(e, schema)?.not(),
            AstExpr::Neg(e) => Expr::Neg(Box::new(self.scalar(e, schema)?)),
            AstExpr::Func { name, args, star } => {
                if *star || agg_func(name).is_some() {
                    return Err(SqlError::Analyze(format!(
                        "aggregate '{name}' is not allowed in this context"
                    )));
                }
                let mut resolved = Vec::with_capacity(args.len());
                for a in args {
                    resolved.push(self.scalar(a, schema)?);
                }
                Expr::Func(scalar_func(name)?, resolved)
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.scalar(expr, schema)?),
                low: Box::new(self.scalar(low, schema)?),
                high: Box::new(self.scalar(high, schema)?),
                negated: *negated,
            },
            AstExpr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.scalar(expr, schema)?),
                negated: *negated,
            },
            AstExpr::Exists { .. } => {
                return Err(SqlError::Analyze(
                    "EXISTS is only supported as a top-level WHERE conjunct".into(),
                ))
            }
        })
    }
}

fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    match op {
        BinOp::And => l.and(r),
        BinOp::Or => l.or(r),
        BinOp::Eq => l.eq(r),
        BinOp::Ne => l.ne(r),
        BinOp::Lt => l.lt(r),
        BinOp::Le => l.le(r),
        BinOp::Gt => l.gt(r),
        BinOp::Ge => l.ge(r),
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        _ => return None,
    })
}

fn scalar_func(name: &str) -> SqlResult<Func> {
    Ok(match name {
        "dur" => Func::Dur,
        "greatest" => Func::Greatest,
        "least" => Func::Least,
        "coalesce" => Func::Coalesce,
        "abs" => Func::Abs,
        other => return Err(SqlError::Analyze(format!("unknown function '{other}'"))),
    })
}

fn contains_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Func { name, args, star } => {
            *star || agg_func(name).is_some() || args.iter().any(contains_aggregate)
        }
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Not(e) | AstExpr::Neg(e) => contains_aggregate(e),
        AstExpr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        AstExpr::IsNull { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

fn derive_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Func { name, .. } => name.clone(),
        _ => "?column?".to_string(),
    }
}

/// Wrap a plan in an identity projection that re-labels its schema.
fn requalify(plan: LogicalPlan, schema: &Schema) -> LogicalPlan {
    LogicalPlan::Project {
        exprs: (0..schema.len()).map(col).collect(),
        input: Box::new(plan),
        schema: schema.clone(),
    }
}

fn check_temporal(schema: &Schema, what: &str) -> SqlResult<()> {
    if schema.len() < 2
        || schema.col(schema.len() - 2).dtype != DataType::Int
        || schema.col(schema.len() - 1).dtype != DataType::Int
    {
        return Err(SqlError::Analyze(format!(
            "{what} must be a temporal relation (last two columns Int ts/te), found {schema}"
        )));
    }
    Ok(())
}
