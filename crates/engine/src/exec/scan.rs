//! Sequential scan over a materialized relation.

use std::sync::Arc;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::{ExecNode, ExecutionState};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Row;

/// Scans an `Arc<Relation>`; row clones are `Arc` bumps, not deep copies.
/// A scan may cover only a contiguous row range — the morsel shape the
/// parallel planner hands to exchange partitions.
pub struct SeqScanExec {
    rel: Arc<Relation>,
    pos: usize,
    end: usize,
}

impl SeqScanExec {
    pub fn new(rel: Arc<Relation>) -> Self {
        let end = rel.len();
        SeqScanExec { rel, pos: 0, end }
    }

    /// Scan only rows `start..end` (clamped to the relation) — one morsel
    /// of a partitioned scan.
    pub fn with_range(rel: Arc<Relation>, start: usize, end: usize) -> Self {
        let end = end.min(rel.len());
        SeqScanExec {
            rel,
            pos: start.min(end),
            end,
        }
    }
}

impl ExecNode for SeqScanExec {
    fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    fn next(&mut self, _state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let row = self.rel.rows()[self.pos].clone();
        self.pos += 1;
        Ok(Some(row))
    }

    /// Batch path: clone a contiguous chunk of the backing relation (each
    /// clone is an `Arc` bump).
    fn next_batch(&mut self, _state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let end = (self.pos + BATCH_SIZE).min(self.end);
        let chunk = self.rel.rows()[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(RowBatch::new(self.rel.schema().clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int_rel;
    use crate::exec::{collect, BoxedExec};

    #[test]
    fn scans_all_rows_in_order() {
        let rel = int_rel("a", &[3, 1, 2]).into_shared();
        let scan: BoxedExec = Box::new(SeqScanExec::new(rel.clone()));
        let out = collect(scan, &ExecutionState::default()).unwrap();
        assert_eq!(out.rows(), rel.rows());
    }

    #[test]
    fn empty_scan() {
        let rel = int_rel("a", &[]).into_shared();
        let mut scan = SeqScanExec::new(rel);
        let state = ExecutionState::default();
        assert!(scan.next(&state).unwrap().is_none());
        assert!(scan.next(&state).unwrap().is_none());
    }

    #[test]
    fn ranged_scan_covers_exactly_its_morsel() {
        let rel = int_rel("a", &[0, 1, 2, 3, 4]).into_shared();
        let scan: BoxedExec = Box::new(SeqScanExec::with_range(rel.clone(), 1, 4));
        let out = collect(scan, &ExecutionState::default()).unwrap();
        let vals: Vec<i64> = out.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
        // Out-of-bounds ranges clamp.
        let scan: BoxedExec = Box::new(SeqScanExec::with_range(rel, 4, 99));
        let out = collect(scan, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
