//! Change preservation made visible: lineage sets (Def. 6) and the
//! change-preservation checker (Def. 7) on the paper's Examples 3 and 4.
//!
//! Shows *why* the two ω-tuples z3/z4 of Fig. 1(b) must not be coalesced —
//! their lineage differs (z3 derives from reservation r1, z4 from r3) —
//! and demonstrates the checker rejecting a coalesced result. The audited
//! query itself is built with the lazy frame API; the semantic checkers
//! take the operator description ([`TemporalOp`]) they verify against.
//!
//! Run with: `cargo run --example lineage_audit`

use temporal_alignment::core::interval::month::{fmt as mfmt, ym};
use temporal_alignment::core::semantics::{
    check_change_preservation, check_snapshot_reducibility, lineage, TemporalOp,
};
use temporal_alignment::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example's R and P.
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )?;
    let p = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("a", DataType::Int)]),
        vec![
            (vec![Value::Int(50)], Interval::of(ym(2012, 1), ym(2012, 6))),
            (vec![Value::Int(40)], Interval::of(ym(2012, 1), ym(2012, 6))),
            (vec![Value::Int(30)], Interval::of(ym(2012, 1), ym(2013, 1))),
        ],
    )?;

    // The audited query, as a lazy frame: R ⟕ᵀ P.
    let db = Database::new();
    db.register("r", &r)?;
    db.register("p", &p)?;
    let result = db
        .table("r")?
        .left_outer_join(db.table("p")?, None)
        .collect()?;
    println!("R ⟕ᵀ P:\n{}", result.sorted().to_table_with(mfmt));

    // The checkers verify a result against the operator it claims to
    // compute, so they take the operator description.
    let op = TemporalOp::LeftOuterJoin { theta: None };

    // Lineage of the joined tuple (ann, 40) at 2012/2 — Example 3.
    let z1 = vec![Value::str("ann"), Value::Int(40)];
    let lin = lineage(&op, &[&r, &p], &z1, ym(2012, 2))?;
    println!(
        "L[(ann, 40), 2012/2] = ⟨ R{:?}, P{:?} ⟩   (tuple indices)",
        lin[0], lin[1]
    );

    // Lineage of the ω tuple (ann, ω) before and after 2012/8 — Example 4.
    let z_omega = vec![Value::str("ann"), Value::Null];
    let before = lineage(&op, &[&r, &p], &z_omega, ym(2012, 7))?;
    let after = lineage(&op, &[&r, &p], &z_omega, ym(2012, 8))?;
    println!(
        "L[(ann, ω), 2012/7] = ⟨ R{:?}, P(all) ⟩ — derived from r1",
        before[0]
    );
    println!(
        "L[(ann, ω), 2012/8] = ⟨ R{:?}, P(all) ⟩ — derived from r3",
        after[0]
    );
    assert_ne!(before, after);
    println!("→ lineage changes at 2012/8, so the ω tuples stay separate.\n");

    // The produced result passes both checkers …
    let sr = check_snapshot_reducibility(&op, &[&r, &p], &result)?;
    let cp = check_change_preservation(&op, &[&r, &p], &result)?;
    println!("snapshot reducibility violations: {sr:?}");
    println!("change preservation violations:   {cp:?}");
    assert!(sr.is_empty() && cp.is_empty());

    // … while a hand-coalesced variant fails change preservation.
    let mut tampered: Vec<(Vec<Value>, Interval)> = Vec::new();
    for (d, iv) in result.iter() {
        if d[1].is_null() {
            continue; // drop both ω tuples …
        }
        tampered.push((d.to_vec(), iv));
    }
    // … and replace them with one merged tuple [2012/6, 2012/12).
    tampered.push((
        vec![Value::str("ann"), Value::Null],
        Interval::of(ym(2012, 6), ym(2012, 12)),
    ));
    let tampered = TemporalRelation::from_rows(result.data_schema(), tampered)?;
    let violations = check_change_preservation(&op, &[&r, &p], &tampered)?;
    println!(
        "\ncoalescing z3/z4 into one tuple yields {} violation(s):",
        violations.len()
    );
    for v in &violations {
        println!("  - {v}");
    }
    assert!(!violations.is_empty());

    Ok(())
}
