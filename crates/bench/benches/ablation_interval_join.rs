//! Ablation for the future-work extension (paper Sec. 8): alignment with
//! the group-construction join executed by the default nested loop (the
//! paper's PostgreSQL behaviour) vs. the sweep-based interval overlap
//! join, on the workloads where conventional join techniques degrade
//! (θ without equality predicates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_bench::{run_o1, Approach};
use temporal_datasets::{ddisj, drand};
use temporal_engine::prelude::*;

fn bench(c: &mut Criterion) {
    // `PlannerConfig::paper()` keeps the nested loop: the engine's default
    // config would auto-select the sweep join and erase the ablation.
    let paper = Planner::new(PlannerConfig::paper());
    let extended = Planner::new(PlannerConfig {
        enable_intervaljoin: true,
        ..PlannerConfig::paper()
    });

    let mut group = c.benchmark_group("ablation_intervaljoin_o1_ddisj");
    group.sample_size(10);
    for &n in &[1_000usize, 2_000, 4_000] {
        let (r, s) = ddisj(n);
        group.bench_with_input(BenchmarkId::new("nestloop", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| run_o1(Approach::Align, r, s, &paper))
        });
        group.bench_with_input(BenchmarkId::new("sweep", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| run_o1(Approach::Align, r, s, &extended))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_intervaljoin_o1_drand");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let (r, s) = drand(n, 20120520);
        group.bench_with_input(BenchmarkId::new("nestloop", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| run_o1(Approach::Align, r, s, &paper))
        });
        group.bench_with_input(BenchmarkId::new("sweep", n), &(&r, &s), |b, (r, s)| {
            b.iter(|| run_o1(Approach::Align, r, s, &extended))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
