//! Quickstart: register two interval-timestamped relations in a
//! [`Database`] and compose lazy, name-based temporal queries over them —
//! every pipeline compiles to one plan and runs on `collect()`.
//!
//! Run with: `cargo run --example quickstart`

use temporal_alignment::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny project-staffing database: who works on what, and when.
    let staff = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("person", DataType::Str),
            Column::new("team", DataType::Str),
        ]),
        vec![
            (
                vec![Value::str("ann"), Value::str("db")],
                Interval::of(0, 8),
            ),
            (
                vec![Value::str("joe"), Value::str("db")],
                Interval::of(2, 6),
            ),
            (
                vec![Value::str("sam"), Value::str("ui")],
                Interval::of(4, 10),
            ),
        ],
    )?;
    let oncall = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("team", DataType::Str)]),
        vec![
            (vec![Value::str("db")], Interval::of(3, 5)),
            (vec![Value::str("ui")], Interval::of(5, 7)),
        ],
    )?;

    println!("staff:\n{staff}");
    println!("oncall windows:\n{oncall}");

    // One Database owns the catalog and planner behind both the Rust
    // frames below and `db.sql(...)`.
    let db = Database::new();
    db.register("staff", &staff)?;
    db.register("oncall", &oncall)?;

    // Temporal inner join: who was staffed while their team was on call?
    // θ references columns by (qualified) name.
    let theta = col("staff.team").eq(col("oncall.team"));
    let on_duty = db
        .table("staff")?
        .temporal_join(db.table("oncall")?, theta.clone())
        .collect()?;
    println!("on duty (⋈ᵀ):\n{on_duty}");

    // Temporal left outer join: everyone, with ω where no on-call window.
    let coverage = db
        .table("staff")?
        .left_outer_join(db.table("oncall")?, theta.clone())
        .collect()?;
    println!("coverage (⟕ᵀ):\n{coverage}");

    // Temporal anti join: staffed periods with no on-call window at all.
    let idle = db
        .table("staff")?
        .anti_join(db.table("oncall")?, theta.clone())
        .collect()?;
    println!("not on call (▷ᵀ):\n{idle}");

    // Temporal aggregation: headcount over time.
    let headcount = db
        .table("staff")?
        .aggregate(&[], vec![(AggCall::count_star(), "headcount")])
        .collect()?;
    println!("headcount over time (ϑᵀ):\n{headcount}");

    // Frames are lazy: a whole pipeline — filter, join, aggregate — is
    // one physical plan, inspectable before anything runs.
    let pipeline = db
        .table("staff")?
        .filter(col("team").eq(lit("db")))
        .temporal_join(db.table("oncall")?, theta)
        .aggregate(&[], vec![(AggCall::count_star(), "cnt")]);
    println!("EXPLAIN of the composed pipeline:\n{}", pipeline.explain()?);
    println!("…and its result:\n{}", pipeline.collect()?);

    // Every result is snapshot reducible: check one snapshot by hand.
    let t = 4;
    println!("snapshot of staff at t={t}:\n{}", staff.timeslice(t));
    println!(
        "snapshot of headcount at t={t}:\n{}",
        headcount.timeslice(t)
    );

    Ok(())
}
