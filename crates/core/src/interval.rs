//! Half-open time intervals `[ts, te)` over a linearly ordered, discrete
//! time domain Ω^T (paper Sec. 3.1).
//!
//! A time interval is a contiguous set of time points represented by its
//! inclusive start and exclusive end. Intervals are never empty: `ts < te`
//! is an invariant; operations that could produce empty intervals return
//! `Option`.

use std::fmt;

use crate::error::{TemporalError, TemporalResult};

/// A point of the discrete time domain Ω^T.
pub type TimePoint = i64;

/// A non-empty half-open interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: TimePoint,
    end: TimePoint,
}

impl Interval {
    /// Build an interval; errors unless `start < end`.
    pub fn new(start: TimePoint, end: TimePoint) -> TemporalResult<Interval> {
        if start < end {
            Ok(Interval { start, end })
        } else {
            Err(TemporalError::InvalidInterval(format!(
                "[{start}, {end}) is empty or inverted"
            )))
        }
    }

    /// Build an interval, panicking on empty input. For literals in tests
    /// and examples.
    pub fn of(start: TimePoint, end: TimePoint) -> Interval {
        Interval::new(start, end).expect("non-empty interval literal")
    }

    /// `Some` iff `start < end`.
    pub fn try_new(start: TimePoint, end: TimePoint) -> Option<Interval> {
        (start < end).then_some(Interval { start, end })
    }

    /// Inclusive start point Ts.
    #[inline]
    pub fn start(&self) -> TimePoint {
        self.start
    }

    /// Exclusive end point Te.
    #[inline]
    pub fn end(&self) -> TimePoint {
        self.end
    }

    /// Number of time points in the interval (`DUR` in the paper's SQL).
    #[inline]
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// Is time point `t` inside?
    #[inline]
    pub fn contains_point(&self, t: TimePoint) -> bool {
        self.start <= t && t < self.end
    }

    /// Do the two intervals share at least one time point?
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// `other ⊆ self`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// `other ⊂ self` (proper subset) — the absorb condition of Def. 12.
    #[inline]
    pub fn properly_contains(&self, other: &Interval) -> bool {
        self.contains(other) && self != other
    }

    /// The intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        Interval::try_new(self.start.max(other.start), self.end.min(other.end))
    }

    /// The smallest interval covering both (not necessarily their union).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// `self` ends exactly where `other` begins (Allen's *meets*).
    #[inline]
    pub fn meets(&self, other: &Interval) -> bool {
        self.end == other.start
    }

    /// Adjacent or overlapping (i.e. their union is one interval).
    pub fn merges_with(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Iterate the time points of the interval.
    pub fn points(&self) -> impl Iterator<Item = TimePoint> {
        self.start..self.end
    }

    /// Subtract a set of intervals from `self`, returning the maximal
    /// uncovered sub-intervals in ascending order. This is the "gap" part
    /// of the temporal aligner (Def. 10, lines 3–4).
    pub fn subtract_all(&self, covers: &[Interval]) -> Vec<Interval> {
        let mut relevant: Vec<Interval> = covers.iter().filter_map(|c| self.intersect(c)).collect();
        relevant.sort();
        let mut gaps = Vec::new();
        let mut cursor = self.start;
        for c in relevant {
            if c.start > cursor {
                gaps.push(Interval {
                    start: cursor,
                    end: c.start,
                });
            }
            cursor = cursor.max(c.end);
        }
        if cursor < self.end {
            gaps.push(Interval {
                start: cursor,
                end: self.end,
            });
        }
        gaps
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Month-granularity helpers for the paper's running example, where time
/// points are months and `2012/1` is the first month of 2012.
pub mod month {
    use super::TimePoint;

    /// Month `m` (1-based) of `year` as a time point; `ym(2012, 1) == 0`.
    pub const fn ym(year: i64, m: i64) -> TimePoint {
        (year - 2012) * 12 + (m - 1)
    }

    /// Render a time point as `year/month`, inverse of [`ym`].
    pub fn fmt(t: TimePoint) -> String {
        let year = 2012 + t.div_euclid(12);
        let m = t.rem_euclid(12) + 1;
        format!("{year}/{m}")
    }
}

#[cfg(test)]
mod tests {
    use super::month::{fmt as mfmt, ym};
    use super::*;

    #[test]
    fn construction_enforces_non_empty() {
        assert!(Interval::new(1, 5).is_ok());
        assert!(Interval::new(5, 5).is_err());
        assert!(Interval::new(6, 5).is_err());
        assert_eq!(Interval::try_new(3, 3), None);
    }

    #[test]
    fn membership_half_open() {
        let i = Interval::of(2, 5);
        assert!(i.contains_point(2));
        assert!(i.contains_point(4));
        assert!(!i.contains_point(5));
        assert_eq!(i.duration(), 3);
        assert_eq!(i.points().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::of(0, 5);
        let b = Interval::of(3, 8);
        let c = Interval::of(5, 8);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching ≠ overlapping
        assert_eq!(a.intersect(&b), Some(Interval::of(3, 5)));
        assert_eq!(a.intersect(&c), None);
        assert!(a.meets(&c));
    }

    #[test]
    fn containment_proper_and_not() {
        let outer = Interval::of(0, 10);
        let inner = Interval::of(2, 8);
        assert!(outer.contains(&inner));
        assert!(outer.properly_contains(&inner));
        assert!(outer.contains(&outer));
        assert!(!outer.properly_contains(&outer));
        assert!(outer.properly_contains(&Interval::of(0, 9)));
        assert!(outer.properly_contains(&Interval::of(1, 10)));
    }

    #[test]
    fn subtraction_produces_maximal_gaps() {
        let r = Interval::of(0, 10);
        let covers = vec![Interval::of(2, 4), Interval::of(3, 5), Interval::of(8, 12)];
        assert_eq!(
            r.subtract_all(&covers),
            vec![Interval::of(0, 2), Interval::of(5, 8)]
        );
        // nothing covered
        assert_eq!(r.subtract_all(&[]), vec![r]);
        // fully covered
        assert_eq!(r.subtract_all(&[Interval::of(-5, 20)]), vec![]);
        // cover touching the start only
        assert_eq!(
            r.subtract_all(&[Interval::of(0, 1)]),
            vec![Interval::of(1, 10)]
        );
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::of(0, 3);
        let b = Interval::of(7, 9);
        assert_eq!(a.hull(&b), Interval::of(0, 9));
    }

    #[test]
    fn month_helpers_roundtrip() {
        assert_eq!(ym(2012, 1), 0);
        assert_eq!(ym(2012, 12), 11);
        assert_eq!(ym(2013, 1), 12);
        assert_eq!(mfmt(ym(2012, 6)), "2012/6");
        assert_eq!(mfmt(ym(2011, 12)), "2011/12");
        // The running example: reservation r1 = [2012/1, 2012/8).
        let r1 = Interval::of(ym(2012, 1), ym(2012, 8));
        assert_eq!(r1.duration(), 7);
    }

    #[test]
    fn intervals_order_by_start_then_end() {
        let mut v = vec![Interval::of(3, 9), Interval::of(1, 4), Interval::of(1, 2)];
        v.sort();
        assert_eq!(
            v,
            vec![Interval::of(1, 2), Interval::of(1, 4), Interval::of(3, 9)]
        );
    }
}
