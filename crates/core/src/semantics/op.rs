//! A uniform description of the operators of the sequenced temporal
//! algebra, shared by the reduction-rule evaluator, the lineage
//! definitions, the property checkers and the reference oracle.

use temporal_engine::prelude::*;

use crate::algebra::TemporalAlgebra;
use crate::error::{TemporalError, TemporalResult};
use crate::trel::TemporalRelation;

/// One operator of the temporal algebra (Sec. 3.1). θ conditions are
/// engine expressions over the concatenation of full argument rows
/// (data columns plus ts/te, in argument order); per the paper they must
/// only reference nontemporal attributes — original timestamps are
/// available through propagated columns (the extend operator `U`).
#[derive(Debug, Clone)]
pub enum TemporalOp {
    /// σᵀ_θ.
    Selection { predicate: Expr },
    /// πᵀ_B; `attrs` are data-column indices.
    Projection { attrs: Vec<usize> },
    /// _Bϑᵀ_F; `group` are data-column indices, `aggs` named aggregate calls.
    Aggregation {
        group: Vec<usize>,
        aggs: Vec<(AggCall, String)>,
    },
    /// ∪ᵀ.
    Union,
    /// −ᵀ.
    Difference,
    /// ∩ᵀ.
    Intersection,
    /// ×ᵀ.
    CartesianProduct,
    /// ⋈ᵀ_θ.
    Join { theta: Option<Expr> },
    /// ⟕ᵀ_θ.
    LeftOuterJoin { theta: Option<Expr> },
    /// ⟖ᵀ_θ.
    RightOuterJoin { theta: Option<Expr> },
    /// ⟗ᵀ_θ.
    FullOuterJoin { theta: Option<Expr> },
    /// ▷ᵀ_θ.
    AntiJoin { theta: Option<Expr> },
}

impl TemporalOp {
    /// Number of argument relations.
    pub fn arity(&self) -> usize {
        match self {
            TemporalOp::Selection { .. }
            | TemporalOp::Projection { .. }
            | TemporalOp::Aggregation { .. } => 1,
            _ => 2,
        }
    }

    /// Human-readable operator name.
    pub fn name(&self) -> &'static str {
        match self {
            TemporalOp::Selection { .. } => "selection",
            TemporalOp::Projection { .. } => "projection",
            TemporalOp::Aggregation { .. } => "aggregation",
            TemporalOp::Union => "union",
            TemporalOp::Difference => "difference",
            TemporalOp::Intersection => "intersection",
            TemporalOp::CartesianProduct => "cartesian product",
            TemporalOp::Join { .. } => "inner join",
            TemporalOp::LeftOuterJoin { .. } => "left outer join",
            TemporalOp::RightOuterJoin { .. } => "right outer join",
            TemporalOp::FullOuterJoin { .. } => "full outer join",
            TemporalOp::AntiJoin { .. } => "anti join",
        }
    }

    /// Is this one of the paper's *group-based* operators {π, ϑ, ∪, −, ∩}
    /// (reduced with the splitter) as opposed to a *tuple-based* one
    /// (reduced with the aligner)?
    pub fn is_group_based(&self) -> bool {
        matches!(
            self,
            TemporalOp::Projection { .. }
                | TemporalOp::Aggregation { .. }
                | TemporalOp::Union
                | TemporalOp::Difference
                | TemporalOp::Intersection
        )
    }

    /// The θ condition, if the operator has one.
    pub fn theta(&self) -> Option<&Expr> {
        match self {
            TemporalOp::Join { theta }
            | TemporalOp::LeftOuterJoin { theta }
            | TemporalOp::RightOuterJoin { theta }
            | TemporalOp::FullOuterJoin { theta }
            | TemporalOp::AntiJoin { theta } => theta.as_ref(),
            _ => None,
        }
    }

    /// Evaluate through the reduction rules of Table 2.
    pub fn evaluate(
        &self,
        alg: &TemporalAlgebra,
        args: &[&TemporalRelation],
    ) -> TemporalResult<TemporalRelation> {
        if args.len() != self.arity() {
            return Err(TemporalError::Incompatible(format!(
                "{} expects {} argument(s), got {}",
                self.name(),
                self.arity(),
                args.len()
            )));
        }
        match self {
            TemporalOp::Selection { predicate } => alg.selection(args[0], predicate.clone()),
            TemporalOp::Projection { attrs } => alg.projection(args[0], attrs),
            TemporalOp::Aggregation { group, aggs } => {
                alg.aggregation(args[0], group, aggs.clone())
            }
            TemporalOp::Union => alg.union(args[0], args[1]),
            TemporalOp::Difference => alg.difference(args[0], args[1]),
            TemporalOp::Intersection => alg.intersection(args[0], args[1]),
            TemporalOp::CartesianProduct => alg.cartesian_product(args[0], args[1]),
            TemporalOp::Join { theta } => alg.join(args[0], args[1], theta.clone()),
            TemporalOp::LeftOuterJoin { theta } => {
                alg.left_outer_join(args[0], args[1], theta.clone())
            }
            TemporalOp::RightOuterJoin { theta } => {
                alg.right_outer_join(args[0], args[1], theta.clone())
            }
            TemporalOp::FullOuterJoin { theta } => {
                alg.full_outer_join(args[0], args[1], theta.clone())
            }
            TemporalOp::AntiJoin { theta } => alg.anti_join(args[0], args[1], theta.clone()),
        }
    }

    /// The data-column schema of the operator's result (excluding ts/te).
    pub fn result_data_schema(&self, args: &[&TemporalRelation]) -> TemporalResult<Schema> {
        Ok(match self {
            TemporalOp::Selection { .. } => args[0].data_schema(),
            TemporalOp::Projection { attrs } => args[0].data_schema().project(attrs),
            TemporalOp::Aggregation { group, aggs } => {
                let data = args[0].data_schema();
                let full = args[0].schema();
                let mut cols: Vec<Column> = group.iter().map(|&i| data.col(i).clone()).collect();
                for (call, name) in aggs {
                    let arg_t = match &call.arg {
                        Some(e) => Some(e.infer_type(full)?),
                        None => None,
                    };
                    cols.push(Column::new(name.clone(), call.func.result_type(arg_t)));
                }
                Schema::new(cols)
            }
            TemporalOp::Union | TemporalOp::Difference | TemporalOp::Intersection => {
                args[0].data_schema()
            }
            TemporalOp::CartesianProduct
            | TemporalOp::Join { .. }
            | TemporalOp::LeftOuterJoin { .. }
            | TemporalOp::RightOuterJoin { .. }
            | TemporalOp::FullOuterJoin { .. } => {
                args[0].data_schema().concat(&args[1].data_schema())
            }
            TemporalOp::AntiJoin { .. } => args[0].data_schema(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn rel() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            vec![(vec![Value::str("a")], Interval::of(0, 5))],
        )
        .unwrap()
    }

    #[test]
    fn arity_and_classification() {
        assert_eq!(TemporalOp::Union.arity(), 2);
        assert_eq!(
            TemporalOp::Selection {
                predicate: lit(true)
            }
            .arity(),
            1
        );
        assert!(TemporalOp::Union.is_group_based());
        assert!(!TemporalOp::CartesianProduct.is_group_based());
    }

    #[test]
    fn evaluate_checks_arity() {
        let alg = TemporalAlgebra::default();
        let r = rel();
        assert!(TemporalOp::Union.evaluate(&alg, &[&r]).is_err());
    }

    #[test]
    fn result_schema_shapes() {
        let r = rel();
        let join = TemporalOp::Join { theta: None };
        let s = join.result_data_schema(&[&r, &r]).unwrap();
        assert_eq!(s.len(), 2);
        let agg = TemporalOp::Aggregation {
            group: vec![0],
            aggs: vec![(AggCall::count_star(), "c".to_string())],
        };
        let s = agg.result_data_schema(&[&r]).unwrap();
        assert_eq!(s.names(), vec!["v", "c"]);
    }
}
