//! The sequenced temporal algebra, implemented exclusively through the
//! reduction rules of Table 2 (Theorem 1).
//!
//! Query processing is the paper's two-step process: (1) propagate and
//! adjust the interval timestamps of argument tuples (alignment /
//! normalization), then (2) apply the corresponding **nontemporal**
//! operator on the adjusted relations, comparing timestamps only by
//! equality, with the absorb operator α as a final post-processing step
//! for tuple-based operators.

mod frame;
mod plan;
mod reduction;

pub use frame::{Database, SessionGuard, TemporalFrame};
pub use plan::TemporalPlan;
pub use reduction::{
    reduce_aggregation, reduce_antijoin, reduce_join, reduce_projection, reduce_selection,
    reduce_setop, self_pairs,
};

use temporal_engine::prelude::*;

use crate::error::TemporalResult;
use crate::primitives::absorb;
use crate::trel::TemporalRelation;

/// The eager, positional compatibility surface of the temporal algebra:
/// holds the planner (and hence the join-method switches) used for all
/// reduced queries.
///
/// Every method is a thin wrapper that compiles a one-operator
/// [`TemporalPlan`] — the same plans [`TemporalFrame`] builds — and
/// executes it immediately. New code should prefer the name-based, lazy
/// [`Database`] / [`TemporalFrame`] front door, which composes whole
/// multi-operator queries into one pipeline and shares a catalog with the
/// SQL surface; `TemporalAlgebra` remains for positional, one-shot calls
/// over materialized relations.
#[derive(Debug, Default, Clone, Copy)]
pub struct TemporalAlgebra {
    planner: Planner,
}

impl TemporalAlgebra {
    pub fn new(config: PlannerConfig) -> Self {
        TemporalAlgebra {
            planner: Planner::new(config),
        }
    }

    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Start a composed plan over a materialized relation — the entry
    /// point for plan-first, multi-operator queries.
    pub fn plan(&self, r: &TemporalRelation) -> TemporalPlan {
        TemporalPlan::scan(r)
    }

    /// Execute a composed plan with this algebra's planner.
    pub fn run(&self, plan: &TemporalPlan) -> TemporalResult<TemporalRelation> {
        plan.execute(&self.planner)
    }

    // ---- tuple-based operators (aligner) --------------------------------

    /// σᵀ_θ(r) = σ_θ(r): temporal selection needs no adjustment.
    pub fn selection(
        &self,
        r: &TemporalRelation,
        predicate: Expr,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).selection(predicate)?)
    }

    /// ×ᵀ: temporal Cartesian product,
    /// `α((rΦ_true s) ⋈_{r.T=s.T} (sΦ_true r))`.
    pub fn cartesian_product(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
    ) -> TemporalResult<TemporalRelation> {
        self.join(r, s, None)
    }

    /// ⋈ᵀ_θ: temporal inner join,
    /// `α((rΦ_θ s) ⋈_{θ ∧ r.T=s.T} (sΦ_θ r))`. `theta` is expressed over
    /// the concatenation of full `r` and `s` rows.
    pub fn join(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).join(TemporalPlan::scan(s), theta)?)
    }

    /// ⟕ᵀ_θ: temporal left outer join (Table 2, Left O. Join).
    pub fn left_outer_join(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).left_outer_join(TemporalPlan::scan(s), theta)?)
    }

    /// ⟖ᵀ_θ: temporal right outer join.
    pub fn right_outer_join(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).right_outer_join(TemporalPlan::scan(s), theta)?)
    }

    /// ⟗ᵀ_θ: temporal full outer join.
    pub fn full_outer_join(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).full_outer_join(TemporalPlan::scan(s), theta)?)
    }

    /// ▷ᵀ_θ: temporal anti join,
    /// `(rΦ_θ s) ▷_{θ ∧ r.T=s.T} (sΦ_θ r)` — no absorb (Table 2).
    pub fn anti_join(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).anti_join(TemporalPlan::scan(s), theta)?)
    }

    /// ▷ᵀ_θ via the *customized* primitive (Sec. 8 future work): a single
    /// gaps-only plane sweep produces the result directly — no second
    /// alignment, no nontemporal anti join. Semantically identical to
    /// [`TemporalAlgebra::anti_join`].
    pub fn anti_join_optimized(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).anti_join_optimized(TemporalPlan::scan(s), theta)?)
    }

    // ---- group-based operators (splitter) -------------------------------

    /// πᵀ_B(r) = π_{B,T}(N_B(r; r)) with set semantics; `b` are data-column
    /// indices.
    pub fn projection(
        &self,
        r: &TemporalRelation,
        b: &[usize],
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).projection(b)?)
    }

    /// ϑᵀ: temporal aggregation `_Bϑ_F(r) = _{B,T}ϑ_F(N_B(r; r))`.
    /// Aggregate arguments may reference any input column (e.g. a
    /// propagated timestamp: `AVG(DUR(us, ue))`). Output schema:
    /// `B…, aggregates…, ts, te`.
    pub fn aggregation(
        &self,
        r: &TemporalRelation,
        b: &[usize],
        aggs: Vec<(AggCall, String)>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).aggregation(b, aggs)?)
    }

    /// ∪ᵀ: temporal union `N_A(r; s) ∪ N_A(s; r)`.
    pub fn union(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).union(TemporalPlan::scan(s))?)
    }

    /// −ᵀ: temporal difference `N_A(r; s) − N_A(s; r)`.
    pub fn difference(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).difference(TemporalPlan::scan(s))?)
    }

    /// ∩ᵀ: temporal intersection `N_A(r; s) ∩ N_A(s; r)`.
    pub fn intersection(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).intersection(TemporalPlan::scan(s))?)
    }

    // ---- primitives, exposed for composition ----------------------------

    /// The alignment primitive `r Φ_θ s` itself (plane-sweep execution).
    pub fn align(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        theta: Option<Expr>,
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).align(TemporalPlan::scan(s), theta)?)
    }

    /// The normalization primitive `N_B(r; s)` itself.
    pub fn normalize(
        &self,
        r: &TemporalRelation,
        s: &TemporalRelation,
        b: &[(usize, usize)],
    ) -> TemporalResult<TemporalRelation> {
        self.run(&TemporalPlan::scan(r).normalize(TemporalPlan::scan(s), b)?)
    }

    /// The absorb operator α.
    pub fn absorb(&self, r: &TemporalRelation) -> TemporalResult<TemporalRelation> {
        absorb::absorb(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    fn pairs(out: &TemporalRelation) -> Vec<(String, i64, i64)> {
        let mut v: Vec<(String, i64, i64)> = out
            .iter()
            .map(|(d, iv)| {
                (
                    d.iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    iv.start(),
                    iv.end(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn selection_preserves_timestamps() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 5), ("b", 2, 9)]);
        let out = alg.selection(&r, col(0).eq(lit(Value::str("a")))).unwrap();
        assert_eq!(pairs(&out), vec![("a".into(), 0, 5)]);
    }

    #[test]
    fn inner_join_intersects_timestamps() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 5)]);
        let s = rel(&[("x", 3, 9)]);
        let out = alg.join(&r, &s, None).unwrap();
        assert_eq!(pairs(&out), vec![("a,x".into(), 3, 5)]);
    }

    #[test]
    fn left_outer_join_pads_uncovered_parts() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 8)]);
        let s = rel(&[("x", 2, 4)]);
        let out = alg.left_outer_join(&r, &s, None).unwrap();
        assert_eq!(
            pairs(&out),
            vec![
                ("a,x".into(), 2, 4),
                ("a,ω".into(), 0, 2),
                ("a,ω".into(), 4, 8),
            ]
        );
    }

    #[test]
    fn full_outer_join_pads_both_sides() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 4)]);
        let s = rel(&[("x", 2, 6)]);
        let out = alg.full_outer_join(&r, &s, None).unwrap();
        assert_eq!(
            pairs(&out),
            vec![
                ("a,x".into(), 2, 4),
                ("a,ω".into(), 0, 2),
                ("ω,x".into(), 4, 6),
            ]
        );
    }

    #[test]
    fn anti_join_keeps_uncovered_parts_only() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 8)]);
        let s = rel(&[("x", 2, 4)]);
        let out = alg.anti_join(&r, &s, None).unwrap();
        assert_eq!(pairs(&out), vec![("a".into(), 0, 2), ("a".into(), 4, 8)]);
    }

    #[test]
    fn difference_removes_covered_spans() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 8), ("b", 0, 3)]);
        let s = rel(&[("a", 2, 5)]);
        let out = alg.difference(&r, &s).unwrap();
        assert_eq!(
            pairs(&out),
            vec![("a".into(), 0, 2), ("a".into(), 5, 8), ("b".into(), 0, 3),]
        );
    }

    #[test]
    fn union_is_change_preserving_not_coalescing() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 10)]);
        let s = rel(&[("a", 5, 20)]);
        let out = alg.union(&r, &s).unwrap();
        // fragments [0,5), [5,10), [10,20) — lineage changes at 5 and 10.
        assert_eq!(
            pairs(&out),
            vec![
                ("a".into(), 0, 5),
                ("a".into(), 5, 10),
                ("a".into(), 10, 20),
            ]
        );
    }

    #[test]
    fn intersection_keeps_common_spans() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 10)]);
        let s = rel(&[("a", 5, 20), ("b", 0, 10)]);
        let out = alg.intersection(&r, &s).unwrap();
        assert_eq!(pairs(&out), vec![("a".into(), 5, 10)]);
    }

    #[test]
    fn projection_merges_only_at_change_points() {
        let alg = TemporalAlgebra::default();
        let r = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("k", DataType::Str),
                Column::new("w", DataType::Int),
            ]),
            vec![
                (vec![Value::str("a"), Value::Int(1)], Interval::of(0, 5)),
                (vec![Value::str("a"), Value::Int(2)], Interval::of(3, 9)),
            ],
        )
        .unwrap();
        let out = alg.projection(&r, &[0]).unwrap();
        // fragments: [0,3), [3,5) (both tuples), [5,9) — π keeps each once.
        assert_eq!(
            pairs(&out),
            vec![("a".into(), 0, 3), ("a".into(), 3, 5), ("a".into(), 5, 9),]
        );
    }

    #[test]
    fn aggregation_counts_per_fragment() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 5), ("b", 3, 9)]);
        let out = alg
            .aggregation(&r, &[], vec![(AggCall::count_star(), "cnt".to_string())])
            .unwrap();
        assert_eq!(
            pairs(&out),
            vec![("1".into(), 0, 3), ("1".into(), 5, 9), ("2".into(), 3, 5),]
        );
        assert_eq!(out.schema().names(), vec!["cnt", "ts", "te"]);
    }

    #[test]
    fn cartesian_product_equals_join_true() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 5), ("b", 1, 3)]);
        let s = rel(&[("x", 2, 8)]);
        let c = alg.cartesian_product(&r, &s).unwrap();
        let j = alg.join(&r, &s, None).unwrap();
        assert!(c.same_set(&j));
    }

    #[test]
    fn example9_absorb_in_cartesian_product() {
        // Paper Example 9: r = {(a,[1,9)), (b,[3,7))}, s = {(c,[1,9)),
        // (d,[3,7))}; the equality join produces a temporal duplicate
        // (a,c,[3,7)) ⊂ (a,c,[1,9)) which α removes.
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 1, 9), ("b", 3, 7)]);
        let s = rel(&[("c", 1, 9), ("d", 3, 7)]);
        let out = alg.cartesian_product(&r, &s).unwrap();
        assert_eq!(
            pairs(&out),
            vec![
                ("a,c".into(), 1, 9),
                ("a,d".into(), 3, 7),
                ("b,c".into(), 3, 7),
                ("b,d".into(), 3, 7),
            ]
        );
    }

    #[test]
    fn setops_require_union_compatibility() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 5)]);
        let s = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("x", DataType::Str),
                Column::new("y", DataType::Int),
            ]),
            vec![(vec![Value::str("a"), Value::Int(1)], Interval::of(0, 5))],
        )
        .unwrap();
        assert!(alg.union(&r, &s).is_err());
    }
}
