//! The future-work extension (paper Sec. 8): a sweep-based interval
//! overlap join for the group-construction step of the temporal
//! primitives, when "conventional join techniques cannot be evaluated
//! efficiently" (θ without equality predicates). The default planner
//! auto-detects the overlap pattern (`enable_intervaljoin_auto`) and costs
//! the sweep against the nested loop; `PlannerConfig::paper()` keeps the
//! paper-faithful behaviour, and `enable_intervaljoin` force-allows the
//! candidate. Results must be identical either way.

mod common;

use common::random_trel;
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;

fn sweep_config() -> PlannerConfig {
    PlannerConfig {
        enable_intervaljoin: true,
        ..PlannerConfig::paper()
    }
}

#[test]
fn heuristic_picks_interval_join_paper_config_does_not() {
    let r = random_trel(21, 30, 5, 40);
    let s = random_trel(22, 30, 5, 40);
    // The alignment group-construction join with θ = true is a pure
    // overlap join — no equi keys.
    let plan = align_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        None,
    )
    .unwrap();
    let catalog = temporal_engine::catalog::Catalog::new();

    let paper_physical = Planner::new(PlannerConfig::paper())
        .plan(&plan, &catalog)
        .unwrap();
    assert!(
        paper_physical.explain().contains("NestedLoopJoin[Left]"),
        "paper-faithful config must nested-loop:\n{}",
        paper_physical.explain()
    );

    // The default planner auto-detects the overlap pattern and the sweep
    // wins on cost — no manual switch needed.
    let auto_physical = Planner::default().plan(&plan, &catalog).unwrap();
    assert!(
        auto_physical
            .explain()
            .contains("IntervalJoin[Left] (sweep)"),
        "heuristic must pick the sweep join:\n{}",
        auto_physical.explain()
    );

    let sweep_physical = Planner::new(sweep_config()).plan(&plan, &catalog).unwrap();
    assert!(
        sweep_physical
            .explain()
            .contains("IntervalJoin[Left] (sweep)"),
        "forced extension must pick the sweep join:\n{}",
        sweep_physical.explain()
    );
}

#[test]
fn alignment_results_identical_with_and_without_sweep_join() {
    for seed in 0..8u64 {
        let r = random_trel(seed + 400, 12, 3, 24);
        let s = random_trel(seed + 500, 12, 3, 24);
        let base = TemporalAlgebra::default();
        let ext = TemporalAlgebra::new(sweep_config());

        let a = base.align(&r, &s, None).unwrap();
        let b = ext.align(&r, &s, None).unwrap();
        assert!(a.same_set(&b), "align mismatch at seed {seed}");

        let a = base.left_outer_join(&r, &s, None).unwrap();
        let b = ext.left_outer_join(&r, &s, None).unwrap();
        assert!(a.same_set(&b), "LOJ mismatch at seed {seed}");

        let a = base.anti_join(&r, &s, None).unwrap();
        let b = ext.anti_join(&r, &s, None).unwrap();
        assert!(a.same_set(&b), "antijoin mismatch at seed {seed}");
    }
}

#[test]
fn equality_theta_still_uses_hash_join_when_sweep_enabled() {
    // With hashable keys the keyed join should win on cost, sweep or not.
    let r = random_trel(31, 200, 10, 300);
    let plan = align_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(r.rel().clone()),
        Some(col(0).eq(col(3))),
    )
    .unwrap();
    let physical = Planner::new(sweep_config())
        .plan(&plan, &temporal_engine::catalog::Catalog::new())
        .unwrap();
    let text = physical.explain();
    assert!(
        text.contains("HashJoin[Left]") || text.contains("MergeJoin[Left]"),
        "{text}"
    );
}

#[test]
fn sql_set_switch_controls_the_extension() {
    use temporal_alignment::sql::Session;
    let r = random_trel(41, 20, 4, 30);
    let mut session = Session::new();
    session.register_temporal("r", &r).unwrap();
    let q = "SELECT * FROM (r r1 ALIGN r r2 ON 1 = 1) x";
    // The heuristic is on by default, so a fresh session sweeps.
    let auto = session.explain(q).unwrap();
    assert!(auto.contains("IntervalJoin"), "{auto}");
    // Switching the heuristic off restores the paper's nested loop …
    session
        .execute("SET enable_intervaljoin_auto = off")
        .unwrap();
    let off = session.explain(q).unwrap();
    assert!(!off.contains("IntervalJoin"), "{off}");
    // … and the manual force-switch still works on top of that.
    session.execute("SET enable_intervaljoin = on").unwrap();
    let forced = session.explain(q).unwrap();
    assert!(forced.contains("IntervalJoin"), "{forced}");
}

#[test]
fn optimized_antijoin_equals_generic_reduction() {
    // Sec. 8 future work: the gaps-only sweep must produce exactly the
    // Table 2 anti join, on fixtures and random inputs.
    let base = TemporalAlgebra::default();
    for seed in 0..10u64 {
        let r = random_trel(seed + 600, 12, 3, 24);
        let s = random_trel(seed + 700, 12, 3, 24);
        for theta in [None, Some(col(0).eq(col(3))), Some(col(0).lt(col(3)))] {
            let generic = base.anti_join(&r, &s, theta.clone()).unwrap();
            let fast = base.anti_join_optimized(&r, &s, theta).unwrap();
            assert!(
                fast.same_set(&generic),
                "seed {seed}: generic:\n{generic}\nfast:\n{fast}"
            );
        }
    }
}

#[test]
fn optimized_antijoin_plan_has_no_second_alignment() {
    let r = random_trel(801, 10, 3, 20);
    let plan = temporal_core::primitives::adjustment::antijoin_gaps_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(r.rel().clone()),
        Some(col(0).eq(col(3))),
    )
    .unwrap();
    let physical = Planner::default()
        .plan(&plan, &temporal_engine::catalog::Catalog::new())
        .unwrap();
    let text = physical.explain();
    assert!(text.contains("TemporalAntiAligner"), "{text}");
    // exactly one adjustment node, no nontemporal anti join
    assert_eq!(text.matches("Temporal").count(), 1, "{text}");
    assert!(!text.contains("[Anti]"), "{text}");
}
