//! The serving loop: one shared [`Database`], one [`Session`] per
//! connection.
//!
//! The server binds either a TCP address (`host:port`) or — when the
//! address contains a `/` — a Unix-domain socket path. Each accepted
//! connection gets its own OS thread and its own [`Session::scoped`]:
//! planner `SET`s are connection-local, the session counts itself in
//! [`Database::open_sessions`] (so a concurrent `close()` or `Drop`
//! never tears the buffer pools out from under a live connection), and
//! all statements execute against the one shared catalog, buffer pool
//! and WAL.
//!
//! Concurrency comes from the layers below, not from the server:
//! readers run against statement-level heap snapshots and never take the
//! writer lock; writers serialize on the database writer mutex and batch
//! their WAL fsyncs through the group-commit flusher. The server itself
//! holds no locks across statements.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use temporal_core::prelude::Database;
use temporal_engine::prelude::{Column, DataType, Relation, Row, Schema, Value};
use temporal_sql::{Session, SqlOutput};

use crate::protocol;

/// Does `addr` name a Unix-domain socket (any address containing `/`)?
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/')
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// A bound, not-yet-running server. Call [`Server::serve`] to accept
/// connections (blocking), or [`Server::spawn`] to run it on a
/// background thread and keep a [`ServerHandle`] for shutdown.
pub struct Server {
    listener: Listener,
    db: Database,
    addr: String,
    stop: Arc<AtomicBool>,
}

/// Shutdown handle for a spawned server: [`ServerHandle::stop`] makes
/// the accept loop exit after at most one more connection.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: String,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The concrete address the server listens on (the resolved port for
    /// `host:0` TCP binds, the path for Unix sockets).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Ask the accept loop to exit. Existing connections finish their
    /// current statement stream; the listener stops taking new ones.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Poke the listener so a blocked `accept` returns.
        if is_unix_addr(&self.addr) {
            let _ = UnixStream::connect(&self.addr);
        } else {
            let _ = TcpStream::connect(&self.addr);
        }
    }
}

impl Server {
    /// Bind `addr` (TCP `host:port`, or a Unix socket path if it
    /// contains `/`) over the shared database. A stale socket file from
    /// a previous run is removed before binding.
    pub fn bind(db: Database, addr: &str) -> std::io::Result<Server> {
        if is_unix_addr(addr) {
            let path = PathBuf::from(addr);
            // Best-effort cleanup of a leftover socket file; bind reports
            // the real error if the path is genuinely busy.
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            Ok(Server {
                listener: Listener::Unix(listener, path.clone()),
                db,
                addr: path.display().to_string(),
                stop: Arc::new(AtomicBool::new(false)),
            })
        } else {
            let listener = TcpListener::bind(addr)?;
            let addr = listener.local_addr()?.to_string();
            Ok(Server {
                listener: Listener::Tcp(listener),
                db,
                addr,
                stop: Arc::new(AtomicBool::new(false)),
            })
        }
    }

    /// The concrete bound address (see [`ServerHandle::addr`]).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr.clone(),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Accept connections until [`ServerHandle::stop`] is called,
    /// spawning one session thread per connection.
    pub fn serve(self) -> std::io::Result<()> {
        match self.listener {
            Listener::Tcp(listener) => {
                for stream in listener.incoming() {
                    if self.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let db = self.db.clone();
                    thread::spawn(move || {
                        if let Ok(peer) = stream.try_clone() {
                            let _ = serve_connection(
                                Session::scoped(db),
                                BufReader::new(peer),
                                BufWriter::new(stream),
                            );
                        }
                    });
                }
            }
            Listener::Unix(listener, path) => {
                for stream in listener.incoming() {
                    if self.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let db = self.db.clone();
                    thread::spawn(move || {
                        if let Ok(peer) = stream.try_clone() {
                            let _ = serve_connection(
                                Session::scoped(db),
                                BufReader::new(peer),
                                BufWriter::new(stream),
                            );
                        }
                    });
                }
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(())
    }

    /// Run the accept loop on a background thread; returns the shutdown
    /// handle. Used by tests and by `tsql --serve` under the hood.
    pub fn spawn(self) -> ServerHandle {
        let handle = self.handle();
        thread::spawn(move || {
            let _ = self.serve();
        });
        handle
    }
}

/// Build the server's `.stats` result: one `(name, value)` row per
/// metric. Counters and gauges come from one [`Database::metrics_snapshot`]
/// (which polls the buffer pools and the WAL into `pool.*` / `wal.*`
/// gauges); the derived ratios — group-commit fsyncs-per-commit and
/// buffer-pool hit rate — and the statement-latency percentiles
/// (`session.statement_us.p50_us` …) are appended after it.
pub fn stats_relation(db: &Database) -> Relation {
    let snap = db.metrics_snapshot();
    let mut pairs: Vec<(String, String)> = Vec::new();
    pairs.push(("active_sessions".into(), db.open_sessions().to_string()));
    for (k, v) in &snap.counters {
        pairs.push((k.clone(), v.to_string()));
    }
    for (k, v) in &snap.gauges {
        pairs.push((k.clone(), v.to_string()));
    }
    if let Some(wal) = db.wal_stats() {
        pairs.push((
            "wal.group_commit_ratio".into(),
            format!("{:.3}", wal.group_commit_ratio()),
        ));
    }
    if let Some(pool) = db.pool_stats() {
        pairs.push(("pool.hit_rate".into(), format!("{:.3}", pool.hit_rate())));
    }
    let pct = |p: Option<u64>| p.map_or("-".to_string(), |v| v.to_string());
    for (k, h) in &snap.histograms {
        pairs.push((format!("{k}.count"), h.count.to_string()));
        pairs.push((format!("{k}.p50"), pct(h.p50)));
        pairs.push((format!("{k}.p95"), pct(h.p95)));
        pairs.push((format!("{k}.p99"), pct(h.p99)));
    }
    let schema = Schema::new(vec![
        Column::new("name", DataType::Str),
        Column::new("value", DataType::Str),
    ]);
    let rows = pairs
        .into_iter()
        .map(|(n, v)| Row::new(vec![Value::str(n), Value::str(v)]))
        .collect();
    Relation::new(schema, rows).expect("stats relation is well-formed")
}

/// Drive one connection: read a statement per line, execute it on the
/// connection's session, write one framed response. Lines starting with
/// `.` are server commands (currently `.stats`); everything else is SQL.
/// Errors are reported in-band as `ERR …`; only I/O failures end the
/// loop early.
fn serve_connection<R: BufRead, W: Write>(
    mut session: Session,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    session
        .database()
        .metrics()
        .counter("server.connections")
        .inc();
    let statements = session.database().metrics().counter("server.statements");
    for line in reader.lines() {
        let line = line?;
        let stmt = line.trim();
        if stmt.is_empty() {
            continue;
        }
        if stmt == "\\q" {
            break;
        }
        if let Some(cmd) = stmt.strip_prefix('.') {
            match cmd.split_whitespace().next() {
                Some("stats") => {
                    let rel = stats_relation(session.database());
                    protocol::write_output(&mut writer, &SqlOutput::Rows(rel))?;
                }
                _ => protocol::write_error(
                    &mut writer,
                    &format!("unknown server command .{cmd} (supported: .stats)"),
                )?,
            }
            writer.flush()?;
            continue;
        }
        let stmt = stmt.trim_end_matches(';').trim();
        statements.inc();
        match session.execute(stmt) {
            Ok(out) => protocol::write_output(&mut writer, &out)?,
            Err(e) => protocol::write_error(&mut writer, &e.to_string())?,
        }
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::Response;

    #[test]
    fn tcp_server_round_trip() {
        let db = Database::default();
        let server = Server::bind(db, "127.0.0.1:0").expect("bind");
        let addr = server.addr().to_string();
        let handle = server.spawn();

        let mut c = Client::connect(&addr).expect("connect");
        assert_eq!(
            c.execute("CREATE TABLE t (name str, ts int, te int)")
                .unwrap(),
            Response::Ok
        );
        assert_eq!(
            c.execute("INSERT INTO t VALUES ('ann', 0, 7), ('joe', 1, 5);")
                .unwrap(),
            Response::Affected(2)
        );
        match c.execute("SELECT name FROM t ORDER BY name").unwrap() {
            Response::Rows { columns, rows } => {
                assert_eq!(columns, vec!["name"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0].as_deref(), Some("ann"));
            }
            other => panic!("expected rows, got {other:?}"),
        }
        match c.execute("SELECT nope FROM t").unwrap() {
            Response::Error(msg) => assert!(!msg.is_empty(), "error should carry a message"),
            other => panic!("expected error, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn unix_socket_server_round_trip() {
        let dir = std::env::temp_dir().join(format!("tsql-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("db.sock");
        let addr = sock.display().to_string();
        assert!(is_unix_addr(&addr));

        let db = Database::default();
        let handle = Server::bind(db, &addr).expect("bind unix").spawn();
        let mut c = Client::connect(&addr).expect("connect unix");
        assert_eq!(
            c.execute("CREATE TABLE u (x int, ts int, te int)").unwrap(),
            Response::Ok
        );
        assert_eq!(
            c.execute("INSERT INTO u VALUES (1, 0, 2)").unwrap(),
            Response::Affected(1)
        );
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sessions_do_not_share_planner_sets() {
        let db = Database::default();
        let handle = Server::bind(db, "127.0.0.1:0").expect("bind").spawn();
        let addr = handle.addr().to_string();

        let mut a = Client::connect(&addr).unwrap();
        let mut b = Client::connect(&addr).unwrap();
        assert_eq!(
            a.execute("SET enable_mergejoin = off").unwrap(),
            Response::Ok
        );
        // A planner SET on a scoped session lands in the per-connection
        // overlay, so b keeps the shared default and both keep working.
        assert_eq!(
            b.execute("SET enable_mergejoin = on").unwrap(),
            Response::Ok
        );
        match a.execute("SET not_a_guc = on").unwrap() {
            Response::Error(msg) => assert!(msg.contains("not_a_guc")),
            other => panic!("expected error, got {other:?}"),
        }
        handle.stop();
    }
}
