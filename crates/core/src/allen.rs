//! Allen's thirteen interval relations.
//!
//! The paper's related work (Sec. 2) notes that the earliest temporal SQL
//! extensions added "new data types with associated predicates and
//! functions that were strongly influenced by Allen's interval
//! relationships". This module provides that classic vocabulary over
//! [`Interval`] — useful for nonsequenced queries and for formulating θ
//! conditions — while the sequenced machinery of the rest of the crate
//! never needs them (that is the paper's point).

use crate::interval::Interval;

/// The thirteen mutually exclusive relations between two intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `a` ends before `b` starts (a gap in between).
    Before,
    /// `a` ends exactly where `b` starts.
    Meets,
    /// proper overlap: `a` starts first, ends inside `b`.
    Overlaps,
    /// `a` starts with `b` and ends inside it.
    Starts,
    /// `a` is strictly inside `b` (different endpoints).
    During,
    /// `a` ends with `b` and starts inside it.
    Finishes,
    /// identical intervals.
    Equal,
    /// inverse of [`AllenRelation::Finishes`].
    FinishedBy,
    /// inverse of [`AllenRelation::During`].
    Contains,
    /// inverse of [`AllenRelation::Starts`].
    StartedBy,
    /// inverse of [`AllenRelation::Overlaps`].
    OverlappedBy,
    /// inverse of [`AllenRelation::Meets`].
    MetBy,
    /// inverse of [`AllenRelation::Before`].
    After,
}

impl AllenRelation {
    /// The inverse relation (`relate(a, b).inverse() == relate(b, a)`).
    pub fn inverse(&self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equal => Equal,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// Do intervals in this relation share at least one time point?
    pub fn shares_points(&self) -> bool {
        use AllenRelation::*;
        !matches!(self, Before | Meets | MetBy | After)
    }
}

/// Classify the relation between `a` and `b`.
pub fn relate(a: &Interval, b: &Interval) -> AllenRelation {
    use std::cmp::Ordering as O;
    use AllenRelation::*;
    match (
        a.start().cmp(&b.start()),
        a.end().cmp(&b.end()),
        a.end().cmp(&b.start()),
        b.end().cmp(&a.start()),
    ) {
        (O::Equal, O::Equal, _, _) => Equal,
        (O::Equal, O::Less, _, _) => Starts,
        (O::Equal, O::Greater, _, _) => StartedBy,
        (O::Less, O::Equal, _, _) => FinishedBy,
        (O::Greater, O::Equal, _, _) => Finishes,
        (O::Less, O::Greater, _, _) => Contains,
        (O::Greater, O::Less, _, _) => During,
        (O::Less, O::Less, O::Less, _) => Before,
        (O::Less, O::Less, O::Equal, _) => Meets,
        (O::Less, O::Less, O::Greater, _) => Overlaps,
        (O::Greater, O::Greater, _, O::Less) => After,
        (O::Greater, O::Greater, _, O::Equal) => MetBy,
        (O::Greater, O::Greater, _, O::Greater) => OverlappedBy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AllenRelation::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::of(s, e)
    }

    #[test]
    fn all_thirteen_relations() {
        let cases = [
            (iv(0, 2), iv(5, 8), Before),
            (iv(0, 5), iv(5, 8), Meets),
            (iv(0, 6), iv(5, 8), Overlaps),
            (iv(5, 6), iv(5, 8), Starts),
            (iv(6, 7), iv(5, 8), During),
            (iv(6, 8), iv(5, 8), Finishes),
            (iv(5, 8), iv(5, 8), Equal),
            (iv(4, 8), iv(5, 8), FinishedBy),
            (iv(4, 9), iv(5, 8), Contains),
            (iv(5, 9), iv(5, 8), StartedBy),
            (iv(6, 9), iv(5, 8), OverlappedBy),
            (iv(8, 9), iv(5, 8), MetBy),
            (iv(9, 11), iv(5, 8), After),
        ];
        for (a, b, expected) in cases {
            assert_eq!(relate(&a, &b), expected, "{a} vs {b}");
            // inverse consistency
            assert_eq!(relate(&b, &a), expected.inverse(), "inverse {a} vs {b}");
        }
    }

    #[test]
    fn relations_partition_all_pairs() {
        // Exhaustively: every pair of small intervals maps to exactly one
        // relation, consistent with overlap.
        for a_s in 0..6 {
            for a_e in a_s + 1..7 {
                for b_s in 0..6 {
                    for b_e in b_s + 1..7 {
                        let a = iv(a_s, a_e);
                        let b = iv(b_s, b_e);
                        let rel = relate(&a, &b);
                        assert_eq!(rel.shares_points(), a.overlaps(&b), "{a} {rel:?} {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_is_involution() {
        for rel in [
            Before,
            Meets,
            Overlaps,
            Starts,
            During,
            Finishes,
            Equal,
            FinishedBy,
            Contains,
            StartedBy,
            OverlappedBy,
            MetBy,
            After,
        ] {
            assert_eq!(rel.inverse().inverse(), rel);
        }
    }
}
