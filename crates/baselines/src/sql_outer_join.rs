//! Temporal outer joins in standard SQL (Sec. 7.4, following Snodgrass,
//! reference \[21\] of the paper): the `sql` series of Fig. 15.
//!
//! The positive part pairs tuples with overlap predicates and computes the
//! intersection with `GREATEST`/`LEAST`. The negative part enumerates
//! candidate gap endpoints — a gap of `r` w.r.t. its matching `s` tuples
//! starts at `r.ts` or at a matching `s.te`, and ends at `r.te` or at a
//! matching `s.ts` — and keeps a candidate pair `[p1, p2)` iff
//! `NOT EXISTS` a matching `s` tuple overlapping it. Candidate-endpoint
//! construction automatically yields exactly the *maximal* gaps.

use temporal_core::error::{TemporalError, TemporalResult};
use temporal_core::trel::TemporalRelation;
use temporal_engine::catalog::Catalog;
use temporal_engine::prelude::*;

const P1: &str = "__p1";
const P2: &str = "__p2";

/// The overlap conjunct `r.T ∩ s.T ≠ ∅` over `r ++ s` concatenated rows.
fn overlap(wr: usize, ws: usize) -> Expr {
    let (r_ts, r_te) = (wr - 2, wr - 1);
    let (s_ts, s_te) = (wr + ws - 2, wr + ws - 1);
    col(r_ts).lt(col(s_te)).and(col(s_ts).lt(col(r_te)))
}

/// Positive part: `SELECT r.*, s.*, greatest(r.ts, s.ts), least(r.te, s.te)
/// FROM r, s WHERE θ AND overlap`. Shared with the sql+normalize baseline.
pub(crate) fn positive_part(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    let (wr, ws) = (rs.len(), ss.len());
    let cond = match theta {
        Some(t) => t.and(overlap(wr, ws)),
        None => overlap(wr, ws),
    };
    let joined = r.join(s, JoinType::Inner, Some(cond));
    let mut items: Vec<(Expr, String)> = Vec::new();
    for i in 0..wr - 2 {
        items.push((col(i), rs.col(i).name.clone()));
    }
    for i in 0..ws - 2 {
        items.push((col(wr + i), ss.col(i).name.clone()));
    }
    items.push((
        Expr::Func(Func::Greatest, vec![col(wr - 2), col(wr + ws - 2)]),
        "ts".to_string(),
    ));
    items.push((
        Expr::Func(Func::Least, vec![col(wr - 1), col(wr + ws - 1)]),
        "te".to_string(),
    ));
    Ok(joined.project_named(items)?)
}

/// Negative part of `r ⟕ᵀ_θ s`: the maximal sub-intervals of each `r`
/// tuple not covered by any matching `s`, as rows `(r.data, p1, p2)`.
fn negative_part(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    let (wr, ws) = (rs.len(), ss.len());
    let (r_ts, r_te) = (wr - 2, wr - 1);
    let (s_ts, s_te) = (wr + ws - 2, wr + ws - 1);

    // Cheapest conjunct first so the nested loop short-circuits, as a
    // cost-based optimizer would order them.
    let match_cond = |extra: Expr| -> Expr {
        match &theta {
            Some(t) => extra.and(overlap(wr, ws)).and(t.clone()),
            None => extra.and(overlap(wr, ws)),
        }
    };

    let r_items = |extra: (Expr, String)| -> Vec<(Expr, String)> {
        let mut items: Vec<(Expr, String)> =
            (0..wr).map(|i| (col(i), rs.col(i).name.clone())).collect();
        items.push(extra);
        items
    };

    // Candidate gap starts: r.ts itself ∪ matching s.te strictly inside r.
    let self_starts = r
        .clone()
        .project_named(r_items((col(r_ts), P1.to_string())))?;
    let join_starts = r
        .clone()
        .join(
            s.clone(),
            JoinType::Inner,
            Some(match_cond(col(s_te).lt(col(r_te)))),
        )
        .project_named(r_items((col(s_te), P1.to_string())))?;
    let starts = self_starts.set_op(SetOpKind::Union, join_starts);

    // Candidate gap ends: r.te itself ∪ matching s.ts strictly inside r.
    let self_ends = r
        .clone()
        .project_named(r_items((col(r_te), P2.to_string())))?;
    let join_ends = r
        .clone()
        .join(
            s.clone(),
            JoinType::Inner,
            Some(match_cond(col(s_ts).gt(col(r_ts)))),
        )
        .project_named(r_items((col(s_ts), P2.to_string())))?;
    let ends = self_ends.set_op(SetOpKind::Union, join_ends);

    // Pair candidates of the same r tuple with p1 < p2 (equality on the
    // full r tuple → hash-joinable).
    let wc = wr + 1; // width of starts/ends rows
    let mut pair_conj: Vec<Expr> = (0..wr).map(|i| col(i).eq(col(wc + i))).collect();
    pair_conj.push(col(wr).lt(col(wc + wr))); // p1 < p2
    let pairs = starts
        .join(ends, JoinType::Inner, Expr::and_all(pair_conj))
        .project_named({
            let mut items: Vec<(Expr, String)> =
                (0..wr).map(|i| (col(i), rs.col(i).name.clone())).collect();
            items.push((col(wr), P1.to_string()));
            items.push((col(wc + wr), P2.to_string()));
            items
        })?;

    // NOT EXISTS (SELECT * FROM s WHERE θ AND s overlaps [p1, p2)) — an
    // anti join over (pairs ++ s). θ's s-columns shift by the two
    // candidate columns.
    let shifted_theta = theta
        .as_ref()
        .map(|t| t.remap_cols(&|i| if i < wr { i } else { i + 2 }));
    let (p1c, p2c) = (wr, wr + 1);
    let (ps_ts, ps_te) = (wr + 2 + ws - 2, wr + 2 + ws - 1);
    let gap_overlap = col(ps_ts).lt(col(p2c)).and(col(ps_te).gt(col(p1c)));
    let anti_cond = match shifted_theta {
        Some(t) => t.and(gap_overlap),
        None => gap_overlap,
    };
    let gaps = pairs.join(s, JoinType::Anti, Some(anti_cond));
    // Shape for padding: (r.data…, p1, p2).
    let mut keep: Vec<usize> = (0..wr - 2).collect();
    keep.push(p1c);
    keep.push(p2c);
    Ok(gaps.project_cols(&keep))
}

/// ω-pad a negative-part plan `(r.data…, p1, p2)` to the full outer-join
/// schema, with the NULL columns `where_side` ∈ {left, right} of the data.
fn pad_negative(
    neg: LogicalPlan,
    own_names: Vec<String>,
    other_width: usize,
    nulls_on_right: bool,
) -> TemporalResult<LogicalPlan> {
    let own_width = own_names.len();
    let mut items: Vec<(Expr, String)> = Vec::new();
    if nulls_on_right {
        for (i, n) in own_names.iter().enumerate() {
            items.push((col(i), n.clone()));
        }
        for j in 0..other_width {
            items.push((Expr::Lit(Value::Null), format!("__pad{j}")));
        }
    } else {
        for j in 0..other_width {
            items.push((Expr::Lit(Value::Null), format!("__pad{j}")));
        }
        for (i, n) in own_names.iter().enumerate() {
            items.push((col(i), n.clone()));
        }
    }
    items.push((col(own_width), "ts".to_string()));
    items.push((col(own_width + 1), "te".to_string()));
    Ok(neg.project_named(items)?)
}

fn data_names(schema: &Schema) -> Vec<String> {
    schema.cols()[..schema.len() - 2]
        .iter()
        .map(|c| c.name.clone())
        .collect()
}

/// `r ⟕ᵀ_θ s` in standard SQL: positive part ∪ ω-padded negative part.
pub fn sql_left_outer_join_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    if rs.len() < 2 || ss.len() < 2 {
        return Err(TemporalError::InvalidRelation(
            "arguments must carry ts/te columns".into(),
        ));
    }
    let pos = positive_part(r.clone(), s.clone(), theta.clone())?;
    let neg = negative_part(r, s.clone(), theta)?;
    let padded = pad_negative(neg, data_names(&rs), ss.len() - 2, true)?;
    Ok(pos.set_op(SetOpKind::Union, padded))
}

/// `r ⟗ᵀ_θ s` in standard SQL: positive ∪ negative(r) ∪ negative(s).
pub fn sql_full_outer_join_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    let (wr, ws) = (rs.len(), ss.len());
    let pos = positive_part(r.clone(), s.clone(), theta.clone())?;
    let neg_r = negative_part(r.clone(), s.clone(), theta.clone())?;
    let neg_r = pad_negative(neg_r, data_names(&rs), ws - 2, true)?;
    // Negative part of s: swap the roles (θ remapped to s ++ r coords).
    let swapped = theta.map(|e| e.remap_cols(&|i| if i < wr { i + ws } else { i - wr }));
    let neg_s = negative_part(s, r, swapped)?;
    let neg_s = pad_negative(neg_s, data_names(&ss), wr - 2, false)?;
    Ok(pos
        .set_op(SetOpKind::Union, neg_r)
        .set_op(SetOpKind::Union, neg_s))
}

/// Evaluate [`sql_left_outer_join_plan`] on materialized relations.
pub fn sql_left_outer_join(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    planner: &Planner,
) -> TemporalResult<TemporalRelation> {
    let plan = sql_left_outer_join_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        theta,
    )?;
    TemporalRelation::new(planner.run(&plan, &Catalog::new())?)
}

/// Evaluate [`sql_full_outer_join_plan`] on materialized relations.
pub fn sql_full_outer_join(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    planner: &Planner,
) -> TemporalResult<TemporalRelation> {
    let plan = sql_full_outer_join_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        theta,
    )?;
    TemporalRelation::new(planner.run(&plan, &Catalog::new())?)
}

/// The SQL this construction corresponds to (for documentation and the
/// SQL-front-end tests), for the θ-free left outer join of `r(a, ts, te)`
/// and `s(b, ts, te)`.
pub fn sql_left_outer_join_text() -> &'static str {
    "SELECT r.a, s.b, greatest(r.ts, s.ts) AS ts, least(r.te, s.te) AS te \
     FROM r, s \
     WHERE r.ts < s.te AND s.ts < r.te \
     UNION \
     SELECT r.a, NULL, p.p1 AS ts, p.p2 AS te \
     FROM (SELECT r.a, r.ts, r.te, c1.p1, c2.p2 \
           FROM r, (SELECT r.a, r.ts AS p1 FROM r \
                    UNION SELECT r.a, s.te FROM r, s \
                    WHERE r.ts < s.te AND s.ts < r.te AND s.te < r.te) c1, \
                   (SELECT r.a, r.te AS p2 FROM r \
                    UNION SELECT r.a, s.ts FROM r, s \
                    WHERE r.ts < s.te AND s.ts < r.te AND s.ts > r.ts) c2 \
           WHERE c1.p1 < c2.p2) p \
     WHERE NOT EXISTS (SELECT * FROM s \
                       WHERE s.ts < p.p2 AND s.te > p.p1)"
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_core::algebra::TemporalAlgebra;
    use temporal_core::interval::Interval;

    fn rel(q: &str, rows: &[(i64, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::qualified(q, "k", DataType::Int)]),
            rows.iter()
                .map(|&(k, s, e)| (vec![Value::Int(k)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn matches_reduction_on_simple_loj() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 8), (2, 5, 12)]);
        let s = rel("s", &[(7, 2, 4), (8, 6, 15)]);
        let fast = alg.left_outer_join(&r, &s, None).unwrap();
        let sql = sql_left_outer_join(&r, &s, None, alg.planner()).unwrap();
        assert!(fast.same_set(&sql), "align:\n{fast}\nsql:\n{sql}");
    }

    #[test]
    fn matches_reduction_with_theta() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 8), (2, 5, 12), (1, 9, 14)]);
        let s = rel("s", &[(1, 2, 4), (2, 6, 15), (1, 5, 11)]);
        let theta = col(0).eq(col(3)); // r.k = s.k
        let fast = alg.left_outer_join(&r, &s, Some(theta.clone())).unwrap();
        let sql = sql_left_outer_join(&r, &s, Some(theta), alg.planner()).unwrap();
        assert!(fast.same_set(&sql), "align:\n{fast}\nsql:\n{sql}");
    }

    #[test]
    fn matches_reduction_on_full_outer_join() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 8), (2, 3, 6)]);
        let s = rel("s", &[(1, 2, 10), (3, 20, 30)]);
        let theta = col(0).eq(col(3));
        let fast = alg.full_outer_join(&r, &s, Some(theta.clone())).unwrap();
        let sql = sql_full_outer_join(&r, &s, Some(theta), alg.planner()).unwrap();
        assert!(fast.same_set(&sql), "align:\n{fast}\nsql:\n{sql}");
    }

    #[test]
    fn disjoint_data_keeps_whole_intervals() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 5), (2, 20, 25)]);
        let s = rel("s", &[(9, 10, 15)]);
        let sql = sql_left_outer_join(&r, &s, None, alg.planner()).unwrap();
        // no overlaps: every r tuple survives whole, ω-padded.
        assert_eq!(sql.len(), 2);
        for (d, _) in sql.iter() {
            assert!(d[1].is_null());
        }
    }

    #[test]
    fn fully_covered_r_has_no_negative_rows() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 2, 6)]);
        let s = rel("s", &[(9, 0, 10)]);
        let sql = sql_left_outer_join(&r, &s, None, alg.planner()).unwrap();
        assert_eq!(sql.len(), 1);
        let (d, iv) = sql.iter().next().unwrap();
        assert_eq!(d[1], Value::Int(9));
        assert_eq!(iv, Interval::of(2, 6));
    }

    #[test]
    fn sql_text_is_wellformed_doc() {
        let t = sql_left_outer_join_text();
        assert!(t.contains("NOT EXISTS"));
        assert!(t.contains("greatest"));
    }
}
