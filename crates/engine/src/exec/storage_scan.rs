//! Sequential scan over a heap-file table, streaming pages through the
//! buffer pool.
//!
//! Unlike [`crate::exec::SeqScanExec`], which walks an already
//! materialized `Arc<Relation>`, this node decodes slotted pages into
//! [`RowBatch`]es *as they are pulled*: at any moment only the pages the
//! buffer pool holds are in memory, so a table larger than the pool (or
//! than RAM) scans in constant space. Both Volcano protocols pull from
//! the same page cursor, so `next()` and `next_batch()` agree row for
//! row. A scan may cover only a contiguous page range — the morsel shape
//! the parallel planner hands to exchange partitions; concurrent
//! partitions share the table's buffer pool, whose pin path is per-frame
//! (see `temporal_store::buffer`).

use std::collections::VecDeque;
use std::sync::Arc;

use temporal_store::HeapSnapshot;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::instrument::OperatorStats;
use crate::exec::{ExecNode, ExecutionState};
use crate::schema::Schema;
use crate::storage::StoredTable;
use crate::tuple::Row;

/// Scans a [`StoredTable`] page by page. The page set is either a
/// contiguous range (the classic full-scan morsel) or an explicit list of
/// surviving pages handed down by the pruning access paths.
pub struct StorageScanExec {
    table: Arc<StoredTable>,
    /// When `Some`, `next_page..end_page` index into this list instead of
    /// being page numbers themselves.
    pages: Option<Arc<Vec<u32>>>,
    next_page: u32,
    end_page: u32,
    /// The statement snapshot this scan is clamped to, resolved from the
    /// execution state on first pull (constructors don't see the state).
    /// Pages past the snapshot are skipped and the snapshot's tail page is
    /// decoded as a prefix, so the scan never observes a concurrent
    /// writer's in-flight appends.
    snapshot: Option<HeapSnapshot>,
    pending: VecDeque<Row>,
    /// Per-plan-node page ledger (`EXPLAIN ANALYZE`): when attached, page
    /// reads are credited to the originating plan node as well as to the
    /// query-wide stats. All morsels of one scan share one ledger.
    ledger: Option<Arc<OperatorStats>>,
}

impl StorageScanExec {
    pub fn new(table: Arc<StoredTable>) -> Self {
        let end_page = table.page_count();
        StorageScanExec {
            table,
            pages: None,
            next_page: 0,
            end_page,
            snapshot: None,
            pending: VecDeque::new(),
            ledger: None,
        }
    }

    /// Scan only pages `start..end` (clamped) — one morsel of a
    /// partitioned heap scan.
    pub fn with_page_range(table: Arc<StoredTable>, start: u32, end: u32) -> Self {
        let end_page = end.min(table.page_count());
        StorageScanExec {
            table,
            pages: None,
            next_page: start.min(end_page),
            end_page,
            snapshot: None,
            pending: VecDeque::new(),
            ledger: None,
        }
    }

    /// Scan positions `start..end` (clamped) of an explicit page list —
    /// one morsel of a pruned scan, where `pages` is the surviving page
    /// set resolved by a zone-map sweep or an interval-index probe.
    pub fn with_page_list(
        table: Arc<StoredTable>,
        pages: Arc<Vec<u32>>,
        start: u32,
        end: u32,
    ) -> Self {
        let end_page = end.min(pages.len() as u32);
        StorageScanExec {
            table,
            pages: Some(pages),
            next_page: start.min(end_page),
            end_page,
            snapshot: None,
            pending: VecDeque::new(),
            ledger: None,
        }
    }

    /// Attach a per-plan-node page ledger (see the `ledger` field).
    pub fn with_ledger(mut self, ledger: Arc<OperatorStats>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Decode pages until `pending` holds at least `want` rows or the
    /// morsel's page set is exhausted. Every decode is clamped to the
    /// statement snapshot (shared across all morsels of the query via
    /// [`ExecutionState::snapshot_for`]): fully-visible pages decode
    /// whole, the snapshot's tail page decodes as a tuple prefix, and
    /// pages appended after the snapshot are skipped entirely.
    fn refill(&mut self, want: usize, state: &ExecutionState) -> EngineResult<()> {
        let snap = *self
            .snapshot
            .get_or_insert_with(|| state.snapshot_for(&self.table));
        while self.pending.len() < want && self.next_page < self.end_page {
            let page_no = match &self.pages {
                Some(list) => list[self.next_page as usize],
                None => self.next_page,
            };
            self.next_page += 1;
            let rows = match snap.visible_tuples(page_no) {
                None => self.table.decode_page(page_no)?,
                Some(0) => continue,
                Some(tail) => self.table.decode_page_prefix(page_no, tail)?,
            };
            state.note_page_read();
            if let Some(ledger) = &self.ledger {
                ledger.note_page_read();
            }
            self.pending.extend(rows);
        }
        Ok(())
    }
}

impl ExecNode for StorageScanExec {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.pending.is_empty() {
            self.refill(1, state)?;
        }
        Ok(self.pending.pop_front())
    }

    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        self.refill(BATCH_SIZE, state)?;
        if self.pending.is_empty() {
            return Ok(None);
        }
        let take = self.pending.len().min(BATCH_SIZE);
        let rows: Vec<Row> = self.pending.drain(..take).collect();
        Ok(Some(RowBatch::new(self.table.schema().clone(), rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, collect_rowwise, BoxedExec};
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn stored(name: &str, n: i64, pool: usize) -> Arc<StoredTable> {
        let dir = std::env::temp_dir().join("talign_engine_scan_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("label", DataType::Str),
        ]);
        let t = StoredTable::create(&path, "t", schema, pool).unwrap();
        for i in 0..n {
            t.append_row(&Row::new(vec![Value::Int(i), Value::str(format!("r{i}"))]))
                .unwrap();
        }
        t.flush().unwrap();
        Arc::new(t)
    }

    #[test]
    fn batch_scan_streams_and_preserves_order() {
        let t = stored("order.heap", 5000, 2);
        assert!(t.page_count() > 2);
        let scan: BoxedExec = Box::new(StorageScanExec::new(t.clone()));
        let out = collect(scan, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 5000);
        for (i, r) in out.rows().iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn row_protocol_matches_batch_protocol() {
        let t = stored("protocols.heap", 3000, 2);
        let state = ExecutionState::default();
        let batch = collect(
            Box::new(StorageScanExec::new(t.clone())) as BoxedExec,
            &state,
        )
        .unwrap();
        let row = collect_rowwise(Box::new(StorageScanExec::new(t)) as BoxedExec, &state).unwrap();
        assert_eq!(batch.rows(), row.rows());
    }

    #[test]
    fn empty_table_scans_empty() {
        let t = stored("empty.heap", 0, 2);
        let mut scan = StorageScanExec::new(t);
        let state = ExecutionState::default();
        assert!(scan.next_batch(&state).unwrap().is_none());
        assert!(scan.next(&state).unwrap().is_none());
    }

    #[test]
    fn page_list_scan_reads_only_listed_pages() {
        let t = stored("pagelist.heap", 4000, 4);
        let pages = t.page_count();
        assert!(pages >= 4);
        let list: Arc<Vec<u32>> = Arc::new((0..pages).step_by(2).collect());
        let state = ExecutionState::default();
        let out = collect(
            Box::new(StorageScanExec::with_page_list(
                t.clone(),
                list.clone(),
                0,
                list.len() as u32,
            )) as BoxedExec,
            &state,
        )
        .unwrap();
        assert_eq!(state.stats.pages().0, list.len() as u64);
        let whole = collect(
            Box::new(StorageScanExec::new(t)) as BoxedExec,
            &ExecutionState::default(),
        )
        .unwrap();
        assert!(!out.is_empty() && out.len() < whole.len());
        // Rows on even pages only, in page order.
        let ids: Vec<i64> = out
            .rows()
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scan_is_clamped_to_the_statement_snapshot() {
        let t = stored("snapclamp.heap", 1000, 4);
        let state = ExecutionState::default();
        // Pin the statement snapshot, then race in more rows.
        let snap = state.snapshot_for(&t);
        assert_eq!(snap.rows, 1000);
        for i in 1000..2500 {
            t.append_row(&Row::new(vec![Value::Int(i), Value::str(format!("r{i}"))]))
                .unwrap();
        }
        assert_eq!(t.row_count(), 2500);
        // Full scan under the pinned state sees exactly the old prefix…
        let out = collect(
            Box::new(StorageScanExec::new(t.clone())) as BoxedExec,
            &state,
        )
        .unwrap();
        assert_eq!(out.len(), 1000);
        assert_eq!(out.rows().last().unwrap()[0], Value::Int(999));
        // …and so does a morsel over the (now larger) live page range.
        let part = collect(
            Box::new(StorageScanExec::with_page_range(
                t.clone(),
                0,
                t.page_count(),
            )) as BoxedExec,
            &state,
        )
        .unwrap();
        assert_eq!(part.len(), 1000);
        // A fresh state snapshots the current heap and sees everything.
        let fresh = collect(
            Box::new(StorageScanExec::new(t)) as BoxedExec,
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(fresh.len(), 2500);
    }

    #[test]
    fn page_range_morsels_cover_the_table_exactly() {
        let t = stored("morsels.heap", 4000, 4);
        let pages = t.page_count();
        assert!(pages >= 2);
        let state = ExecutionState::default();
        let whole = collect(
            Box::new(StorageScanExec::new(t.clone())) as BoxedExec,
            &state,
        )
        .unwrap();
        let mid = pages / 2;
        let mut rows = Vec::new();
        for (s, e) in [(0, mid), (mid, pages)] {
            let part = collect(
                Box::new(StorageScanExec::with_page_range(t.clone(), s, e)) as BoxedExec,
                &state,
            )
            .unwrap();
            rows.extend(part.rows().to_vec());
        }
        assert_eq!(rows, whole.rows());
    }
}
