//! Sort: materialize the input and emit in key order.
//!
//! The temporal adjustment pipeline (paper Figs. 8/9) sorts the
//! group-construction join output by (group identity, intersection
//! timestamps); this node provides that ordering.

use std::cmp::Ordering;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::{collect_rows_batched, BoxedExec, ExecNode, ExecutionState};
use crate::expr::SortKey;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// Compare two evaluated key vectors under the given sort keys.
fn cmp_keys(keys: &[SortKey], a: &[Value], b: &[Value]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let (va, vb) = (&a[i], &b[i]);
        let ord = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = va.cmp(vb);
                if k.desc {
                    o.reverse()
                } else {
                    o
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a row vector in place by `keys` (decorate–sort–undecorate).
pub fn sort_rows(rows: &mut Vec<Row>, keys: &[SortKey]) -> EngineResult<()> {
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(k.expr.eval(row.values())?);
        }
        decorated.push((kv, row));
    }
    decorated.sort_by(|(ka, ra), (kb, rb)| cmp_keys(keys, ka, kb).then_with(|| ra.cmp(rb)));
    rows.extend(decorated.into_iter().map(|(_, r)| r));
    Ok(())
}

/// [`sort_rows`] with vectorized key decoration: each key expression is
/// evaluated once over the whole row vector instead of once per row, and
/// all-integer key sets (every temporal sort: data ids, timestamps, split
/// points) are order-encoded into flat `i64` vectors so the comparator is
/// a machine-word slice compare instead of a `Value` tree walk. Same order
/// as `sort_rows` in every case: the encoding is an order-isomorphism on
/// the admitted values, with equal encodings ⇔ equal keys, so ties fall to
/// the identical full-row comparator.
pub fn sort_rows_batched(rows: &mut Vec<Row>, keys: &[SortKey]) -> EngineResult<()> {
    let mut key_cols = Vec::with_capacity(keys.len());
    for k in keys {
        key_cols.push(k.expr.eval_batch(rows)?);
    }
    if let Some(enc) = encode_int_keys(&key_cols, keys) {
        let k = keys.len();
        let mut decorated: Vec<(usize, Row)> = rows.drain(..).enumerate().collect();
        decorated.sort_by(|(ia, ra), (ib, rb)| {
            enc[ia * k..ia * k + k]
                .cmp(&enc[ib * k..ib * k + k])
                .then_with(|| ra.cmp(rb))
        });
        rows.extend(decorated.into_iter().map(|(_, r)| r));
        return Ok(());
    }
    let mut key_cols: Vec<_> = key_cols.into_iter().map(Vec::into_iter).collect();
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let kv: Vec<Value> = key_cols
            .iter_mut()
            .map(|c| c.next().expect("key column length"))
            .collect();
        decorated.push((kv, row));
    }
    decorated.sort_by(|(ka, ra), (kb, rb)| cmp_keys(keys, ka, kb).then_with(|| ra.cmp(rb)));
    rows.extend(decorated.into_iter().map(|(_, r)| r));
    Ok(())
}

/// Encode evaluated key columns as flat `i64`s (row-major, stride =
/// `keys.len()`) such that ascending lexicographic order of the encodings
/// equals [`cmp_keys`] order, and equal encodings imply equal key values.
/// NULLs map to the `i64::MIN`/`i64::MAX` sentinels per their position
/// (nulls-first/last) and descending keys negate. Returns `None` — falling
/// back to the general comparator — when any value is not Int/NULL or lies
/// at the extremes, where sentinel/negation collisions would break the
/// isomorphism.
fn encode_int_keys(key_cols: &[Vec<Value>], keys: &[SortKey]) -> Option<Vec<i64>> {
    let n = key_cols.first().map_or(0, Vec::len);
    let mut enc = vec![0i64; n * keys.len()];
    for (ki, (col, key)) in key_cols.iter().zip(keys).enumerate() {
        for (ri, v) in col.iter().enumerate() {
            enc[ri * keys.len() + ki] = match v {
                Value::Null => {
                    // NULLS FIRST sorts below everything, NULLS LAST above
                    // — in encoding space, regardless of `desc` (cmp_keys
                    // places NULLs before applying the direction).
                    if key.nulls_first {
                        i64::MIN
                    } else {
                        i64::MAX
                    }
                }
                Value::Int(x) if *x > i64::MIN + 1 && *x < i64::MAX - 1 => {
                    if key.desc {
                        -x
                    } else {
                        *x
                    }
                }
                _ => return None,
            };
        }
    }
    Some(enc)
}

/// Parallel sort: evaluate key columns over contiguous chunks on workers,
/// sort per-chunk index runs in parallel, then k-way merge the runs.
///
/// The comparator is shared with the serial paths and is a **total
/// order** — key comparison falls through to the full-row comparator on
/// ties — so the merged output is row-identical to [`sort_rows_batched`]
/// regardless of how the input was chunked.
pub fn sort_rows_parallel(
    rows: &mut Vec<Row>,
    keys: &[SortKey],
    threads: usize,
) -> EngineResult<()> {
    use crate::exec::workers::{par_run, split_ranges};
    use std::sync::Mutex;
    let n = rows.len();
    let ranges = split_ranges(n, threads);
    if ranges.len() <= 1 {
        return sort_rows_batched(rows, keys);
    }
    let k = keys.len();
    // Phase 1: evaluate key columns per chunk, on workers.
    let chunk_cols = par_run(threads, ranges.len(), |i| {
        let (a, b) = ranges[i];
        let mut cols = Vec::with_capacity(k);
        for key in keys {
            cols.push(key.expr.eval_batch(&rows[a..b])?);
        }
        Ok(cols)
    })?;
    // The fast path / fallback decision must be global: all chunks encode,
    // or all use the general comparator (per-chunk choices could disagree).
    let chunk_encs: Option<Vec<Vec<i64>>> = if k <= ENC_WIDTH {
        chunk_cols
            .iter()
            .map(|cols| encode_int_keys(cols, keys))
            .collect()
    } else {
        None
    };
    // Move the rows out into their chunks so workers can own them.
    let mut drained = std::mem::take(rows).into_iter();
    let chunk_rows: Vec<Mutex<Option<Vec<Row>>>> = ranges
        .iter()
        .map(|&(a, b)| Mutex::new(Some(drained.by_ref().take(b - a).collect())))
        .collect();

    // Phase 2: each worker sorts its chunk locally — decorated, contiguous,
    // rows moved not cloned — producing a sorted run (keys + rows aligned).
    // Phase 3 merges the runs' heads; the comparator is a total order (key
    // order, full-row tiebreak), so the result is row-identical to the
    // serial sort however the input was chunked.
    match chunk_encs {
        Some(encs) => {
            let enc_slots: Vec<Mutex<Option<Vec<i64>>>> =
                encs.into_iter().map(|e| Mutex::new(Some(e))).collect();
            let runs = par_run(threads, ranges.len(), |i| {
                let chunk = chunk_rows[i]
                    .lock()
                    .expect("chunk lock")
                    .take()
                    .expect("chunk claimed once");
                let enc = enc_slots[i]
                    .lock()
                    .expect("enc lock")
                    .take()
                    .expect("enc claimed once");
                // Pad the per-row encoding to a fixed, `Copy` width; the
                // padding is equal on every row so it never affects order.
                let mut decorated: Vec<([i64; ENC_WIDTH], Row)> = chunk
                    .into_iter()
                    .enumerate()
                    .map(|(j, row)| {
                        let mut a = [0i64; ENC_WIDTH];
                        a[..k].copy_from_slice(&enc[j * k..j * k + k]);
                        (a, row)
                    })
                    .collect();
                decorated
                    .sort_unstable_by(|(ea, ra), (eb, rb)| ea.cmp(eb).then_with(|| ra.cmp(rb)));
                Ok(decorated)
            })?;
            merge_runs(rows, runs, |a, b| a.cmp(b));
        }
        None => {
            let runs = par_run(threads, ranges.len(), |i| {
                let chunk = chunk_rows[i]
                    .lock()
                    .expect("chunk lock")
                    .take()
                    .expect("chunk claimed once");
                let mut cols: Vec<_> = chunk_cols[i].iter().map(|c| c.iter().cloned()).collect();
                let mut decorated: Vec<(Vec<Value>, Row)> = chunk
                    .into_iter()
                    .map(|row| {
                        let kv: Vec<Value> = cols
                            .iter_mut()
                            .map(|c| c.next().expect("key column length"))
                            .collect();
                        (kv, row)
                    })
                    .collect();
                decorated.sort_unstable_by(|(ka, ra), (kb, rb)| {
                    cmp_keys(keys, ka, kb).then_with(|| ra.cmp(rb))
                });
                Ok(decorated)
            })?;
            merge_runs(rows, runs, |a, b| cmp_keys(keys, a, b));
        }
    }
    Ok(())
}

/// Fixed per-row width of the `Copy` integer key encoding in the parallel
/// sort (real key counts are 1–4; wider key sets take the general path).
const ENC_WIDTH: usize = 6;

/// K-way merge of sorted decorated runs into `out`, draining the runs by
/// move. Key order with full-row tiebreak is a total order, so the merge
/// is deterministic.
fn merge_runs<K>(
    out: &mut Vec<Row>,
    runs: Vec<Vec<(K, Row)>>,
    key_cmp: impl Fn(&K, &K) -> Ordering,
) {
    let total: usize = runs.iter().map(Vec::len).sum();
    out.reserve(total);
    let mut iters: Vec<std::vec::IntoIter<(K, Row)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<(K, Row)>> = iters.iter_mut().map(Iterator::next).collect();
    loop {
        let mut best: Option<usize> = None;
        for (c, head) in heads.iter().enumerate() {
            if let Some((ck, cr)) = head {
                best = match best {
                    Some(b) => {
                        let (bk, br) = heads[b].as_ref().expect("best head present");
                        if key_cmp(ck, bk).then_with(|| cr.cmp(br)) == Ordering::Less {
                            Some(c)
                        } else {
                            Some(b)
                        }
                    }
                    None => Some(c),
                };
            }
        }
        let Some(c) = best else { break };
        let (_, row) = heads[c].take().expect("selected head present");
        heads[c] = iters[c].next();
        out.push(row);
    }
}

/// Materializing sort node.
pub struct SortExec {
    input: BoxedExec,
    keys: Vec<SortKey>,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl SortExec {
    pub fn new(input: BoxedExec, keys: Vec<SortKey>) -> Self {
        SortExec {
            input,
            keys,
            sorted: None,
        }
    }
}

impl ExecNode for SortExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.sorted.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next(state)? {
                rows.push(r);
            }
            sort_rows(&mut rows, &self.keys)?;
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().expect("initialized").next())
    }

    /// Batch path: materialize through the input's batch protocol, sort
    /// with vectorized key decoration, then drain a chunk per call.
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        if self.sorted.is_none() {
            let mut rows = collect_rows_batched(self.input.as_mut(), state)?;
            if state.parallel(rows.len()) {
                sort_rows_parallel(&mut rows, &self.keys, state.threads())?;
            } else {
                sort_rows_batched(&mut rows, &self.keys)?;
            }
            self.sorted = Some(rows.into_iter());
        }
        let it = self.sorted.as_mut().expect("initialized");
        let chunk: Vec<Row> = it.by_ref().take(BATCH_SIZE).collect();
        if chunk.is_empty() {
            return Ok(None);
        }
        Ok(Some(RowBatch::new(self.input.schema().clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};
    use crate::expr::col;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};

    #[test]
    fn multi_key_sort_asc_desc() {
        let rel = int2_rel(("a", "b"), &[(2, 1), (1, 2), (1, 9), (2, 5)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let sort = Box::new(SortExec::new(
            scan,
            vec![SortKey::asc(col(0)), SortKey::desc(col(1))],
        ));
        let out = collect(sort, &ExecutionState::default()).unwrap();
        let vals: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(vals, vec![(1, 9), (1, 2), (2, 5), (2, 1)]);
    }

    #[test]
    fn nulls_ordering() {
        let rel = Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel.clone()));
        let sort = Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]));
        let out = collect(sort, &ExecutionState::default()).unwrap();
        assert!(out.rows()[0][0].is_null());
        // NULLS LAST on desc by default:
        let scan = Box::new(SeqScanExec::new(rel));
        let sort = Box::new(SortExec::new(scan, vec![SortKey::desc(col(0))]));
        let out = collect(sort, &ExecutionState::default()).unwrap();
        assert!(out.rows()[2][0].is_null());
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn parallel_sort_is_row_identical_to_serial() {
        // Mixed data: duplicate keys, duplicate full rows, NULLs (breaking
        // the int fast path), and enough rows for several chunks.
        let mut rows: Vec<Row> = (0..997)
            .map(|i: i64| {
                let a = if i % 97 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 13)
                };
                Row::new(vec![a, Value::Int(i % 7)])
            })
            .collect();
        rows.extend(rows.clone()); // duplicate full rows
        let keys = vec![SortKey::asc(col(0)), SortKey::desc(col(1))];
        let mut serial = rows.clone();
        sort_rows_batched(&mut serial, &keys).unwrap();
        for threads in [2, 3, 4, 8] {
            let mut par = rows.clone();
            sort_rows_parallel(&mut par, &keys, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
        // All-int keys (fast path) too.
        let int_rows: Vec<Row> = (0..1000)
            .map(|i: i64| Row::new(vec![Value::Int(i % 13), Value::Int(999 - i)]))
            .collect();
        let mut serial = int_rows.clone();
        sort_rows_batched(&mut serial, &keys).unwrap();
        let mut par = int_rows.clone();
        sort_rows_parallel(&mut par, &keys, 4).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn sort_is_deterministic_via_row_tiebreak() {
        let rel = int2_rel(("a", "b"), &[(1, 5), (1, 3), (1, 4)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        // Sorting only by column a — ties broken by full row order.
        let sort = Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]));
        let out = collect(sort, &ExecutionState::default()).unwrap();
        let b: Vec<i64> = out.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(b, vec![3, 4, 5]);
    }
}
