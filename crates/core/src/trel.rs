//! Interval-timestamped (temporal) relations.
//!
//! A temporal relation schema is `R = (A1, …, Am, T)` (paper Sec. 3.1). As
//! in the paper's PostgreSQL implementation, the timestamp is stored as two
//! plain integer columns; by convention they are **the last two columns**
//! (`ts` inclusive start, `te` exclusive end). Everything before them are
//! the *nontemporal* (data) columns — which may include propagated
//! timestamps added by the extend operator `U`.

use std::collections::HashMap;
use std::fmt;

use temporal_engine::prelude::*;

use crate::error::{TemporalError, TemporalResult};
use crate::interval::{Interval, TimePoint};

/// Default name of the interval start column.
pub const TS: &str = "ts";
/// Default name of the interval end column.
pub const TE: &str = "te";

/// A relation whose last two columns are a valid-time interval `[ts, te)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalRelation {
    rel: Relation,
}

impl TemporalRelation {
    /// Wrap an engine relation. The last two columns must be Int-typed and
    /// every row must carry a non-NULL, non-empty interval.
    pub fn new(rel: Relation) -> TemporalResult<TemporalRelation> {
        if rel.schema().len() < 2 {
            return Err(TemporalError::InvalidRelation(
                "temporal relation needs at least the two timestamp columns".into(),
            ));
        }
        let n = rel.schema().len();
        for i in [n - 2, n - 1] {
            let c = rel.schema().col(i);
            if c.dtype != DataType::Int {
                return Err(TemporalError::InvalidRelation(format!(
                    "timestamp column '{}' must be Int, found {}",
                    c.name, c.dtype
                )));
            }
        }
        let out = TemporalRelation { rel };
        out.validate_intervals()?;
        Ok(out)
    }

    /// Build from a nontemporal schema plus `(values, interval)` rows; the
    /// `ts`/`te` columns are appended.
    pub fn from_rows(
        data_schema: Schema,
        rows: Vec<(Vec<Value>, Interval)>,
    ) -> TemporalResult<TemporalRelation> {
        let mut cols = data_schema.cols().to_vec();
        cols.push(Column::new(TS, DataType::Int));
        cols.push(Column::new(TE, DataType::Int));
        let schema = Schema::new(cols);
        let mut full_rows = Vec::with_capacity(rows.len());
        for (mut vals, iv) in rows {
            vals.push(Value::Int(iv.start()));
            vals.push(Value::Int(iv.end()));
            full_rows.push(Row::new(vals));
        }
        let rel = Relation::new(schema, full_rows).map_err(TemporalError::from)?;
        TemporalRelation::new(rel)
    }

    /// The underlying relation (data columns followed by ts, te).
    #[inline]
    pub fn rel(&self) -> &Relation {
        &self.rel
    }

    /// Consume into the underlying relation.
    pub fn into_rel(self) -> Relation {
        self.rel
    }

    /// Full schema including ts/te.
    #[inline]
    pub fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    /// Number of nontemporal (data) columns.
    #[inline]
    pub fn data_width(&self) -> usize {
        self.rel.schema().len() - 2
    }

    /// Index of the `ts` column.
    #[inline]
    pub fn ts_idx(&self) -> usize {
        self.rel.schema().len() - 2
    }

    /// Index of the `te` column.
    #[inline]
    pub fn te_idx(&self) -> usize {
        self.rel.schema().len() - 1
    }

    /// The data-column part of the schema.
    pub fn data_schema(&self) -> Schema {
        let idxs: Vec<usize> = (0..self.data_width()).collect();
        self.rel.schema().project(&idxs)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    pub fn rows(&self) -> &[Row] {
        self.rel.rows()
    }

    /// The interval of a row of this relation.
    pub fn interval_of(&self, row: &Row) -> Interval {
        let ts = row[self.ts_idx()].as_int().expect("validated ts");
        let te = row[self.te_idx()].as_int().expect("validated te");
        Interval::of(ts, te)
    }

    /// The data values of a row (everything except ts/te).
    pub fn data_of<'r>(&self, row: &'r Row) -> &'r [Value] {
        &row.values()[..self.data_width()]
    }

    /// Iterate `(data, interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], Interval)> + '_ {
        self.rel
            .rows()
            .iter()
            .map(move |r| (self.data_of(r), self.interval_of(r)))
    }

    fn validate_intervals(&self) -> TemporalResult<()> {
        let (ts, te) = (self.ts_idx(), self.te_idx());
        for (i, row) in self.rel.rows().iter().enumerate() {
            let s = row[ts].as_int().ok_or_else(|| {
                TemporalError::InvalidRelation(format!("row {i}: ts is not a non-NULL Int"))
            })?;
            let e = row[te].as_int().ok_or_else(|| {
                TemporalError::InvalidRelation(format!("row {i}: te is not a non-NULL Int"))
            })?;
            if s >= e {
                return Err(TemporalError::InvalidRelation(format!(
                    "row {i}: empty interval [{s}, {e})"
                )));
            }
        }
        Ok(())
    }

    /// Sec. 3.1 duplicate-freeness: no two distinct tuples are
    /// value-equivalent over common time points.
    pub fn is_duplicate_free(&self) -> bool {
        let mut by_data: HashMap<&[Value], Vec<Interval>> = HashMap::new();
        for row in self.rel.rows() {
            by_data
                .entry(self.data_of(row))
                .or_default()
                .push(self.interval_of(row));
        }
        for ivs in by_data.values_mut() {
            ivs.sort();
            for w in ivs.windows(2) {
                if w[0] == w[1] || w[0].overlaps(&w[1]) {
                    return false;
                }
            }
        }
        true
    }

    /// The timeslice operator τ_t (Sec. 3.1): the nontemporal snapshot at
    /// time `t`, with duplicates removed (set semantics).
    pub fn timeslice(&self, t: TimePoint) -> Relation {
        let data_idxs: Vec<usize> = (0..self.data_width()).collect();
        let mut out = Relation::empty(self.data_schema());
        for row in self.rel.rows() {
            if self.interval_of(row).contains_point(t) {
                out.push(row.project(&data_idxs)).expect("schema matches");
            }
        }
        out.dedup();
        out
    }

    /// All distinct interval endpoints, sorted ascending. Snapshots (and
    /// lineage sets) are constant between consecutive endpoints, so these
    /// are the *critical points* for checking sequenced-semantics
    /// properties.
    pub fn endpoints(&self) -> Vec<TimePoint> {
        let mut pts: Vec<TimePoint> = self
            .rel
            .rows()
            .iter()
            .flat_map(|r| {
                let iv = self.interval_of(r);
                [iv.start(), iv.end()]
            })
            .collect();
        pts.sort_unstable();
        pts.dedup();
        pts
    }

    /// Set equality on rows.
    pub fn same_set(&self, other: &TemporalRelation) -> bool {
        self.rel.same_set(&other.rel)
    }

    /// Canonically sorted copy (for display and comparison).
    pub fn sorted(&self) -> TemporalRelation {
        TemporalRelation {
            rel: self.rel.sorted(),
        }
    }

    /// Drop data columns, keeping `keep` (indices into the data columns)
    /// plus the interval; removes exact duplicates (set semantics). This is
    /// the plain (nontemporal) projection used to discard propagated
    /// timestamps after an extended-snapshot-reducible query (Def. 4's
    /// final `π_E`) — deliberately *without* re-normalization, so change
    /// preservation is untouched.
    pub fn project_data(&self, keep: &[usize]) -> TemporalResult<TemporalRelation> {
        for &i in keep {
            if i >= self.data_width() {
                return Err(TemporalError::Incompatible(format!(
                    "projection index {i} out of bounds ({} data columns)",
                    self.data_width()
                )));
            }
        }
        let mut idxs: Vec<usize> = keep.to_vec();
        idxs.push(self.ts_idx());
        idxs.push(self.te_idx());
        let schema = self.rel.schema().project(&idxs);
        let mut rel = Relation::new(
            schema,
            self.rel.rows().iter().map(|r| r.project(&idxs)).collect(),
        )?;
        rel.dedup();
        TemporalRelation::new(rel)
    }

    /// Render with intervals formatted via `fmt_point` (e.g.
    /// [`crate::interval::month::fmt`] for the paper's examples).
    pub fn to_table_with(&self, fmt_point: impl Fn(TimePoint) -> String) -> String {
        let mut cols = self.data_schema().cols().to_vec();
        cols.push(Column::new("T", DataType::Str));
        let schema = Schema::new(cols);
        let rows: Vec<Vec<Value>> = self
            .rel
            .rows()
            .iter()
            .map(|r| {
                let iv = self.interval_of(r);
                let mut vals = self.data_of(r).to_vec();
                vals.push(Value::str(format!(
                    "[{}, {})",
                    fmt_point(iv.start()),
                    fmt_point(iv.end())
                )));
                vals
            })
            .collect();
        Relation::from_values(schema, rows)
            .expect("consistent arity")
            .to_table()
    }
}

impl fmt::Display for TemporalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_with(|t| t.to_string()))
    }
}

/// Build the schema of a temporal relation from data columns.
pub fn temporal_schema(data_cols: Vec<Column>) -> Schema {
    let mut cols = data_cols;
    cols.push(Column::new(TS, DataType::Int));
    cols.push(Column::new(TE, DataType::Int));
    Schema::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("ann")], Interval::of(0, 7)),
                (vec![Value::str("joe")], Interval::of(1, 5)),
                (vec![Value::str("ann")], Interval::of(7, 11)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let r = sample();
        assert_eq!(r.data_width(), 1);
        assert_eq!(r.ts_idx(), 1);
        assert_eq!(r.te_idx(), 2);
        assert_eq!(r.len(), 3);
        let (data, iv) = r.iter().next().unwrap();
        assert_eq!(data, &[Value::str("ann")]);
        assert_eq!(iv, Interval::of(0, 7));
    }

    #[test]
    fn rejects_invalid_intervals() {
        let schema = Schema::new(vec![Column::new("n", DataType::Str)]);
        let bad = Relation::from_values(
            temporal_schema(schema.cols().to_vec()),
            vec![vec![Value::str("x"), Value::Int(5), Value::Int(5)]],
        )
        .unwrap();
        assert!(TemporalRelation::new(bad).is_err());

        let null_ts = Relation::from_values(
            temporal_schema(schema.cols().to_vec()),
            vec![vec![Value::str("x"), Value::Null, Value::Int(5)]],
        )
        .unwrap();
        assert!(TemporalRelation::new(null_ts).is_err());
    }

    #[test]
    fn rejects_non_int_timestamp_columns() {
        let rel = Relation::from_values(
            Schema::new(vec![
                Column::new("n", DataType::Str),
                Column::new(TS, DataType::Str),
                Column::new(TE, DataType::Int),
            ]),
            vec![],
        )
        .unwrap();
        assert!(TemporalRelation::new(rel).is_err());
    }

    #[test]
    fn duplicate_freeness() {
        let r = sample();
        assert!(r.is_duplicate_free()); // ann's intervals meet but don't overlap
        let dup = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("ann")], Interval::of(0, 7)),
                (vec![Value::str("ann")], Interval::of(5, 9)),
            ],
        )
        .unwrap();
        assert!(!dup.is_duplicate_free());
    }

    #[test]
    fn timeslice_is_a_set() {
        let r = sample();
        let s = r.timeslice(3);
        assert_eq!(s.len(), 2); // ann, joe
        let s = r.timeslice(7);
        assert_eq!(s.len(), 1); // second ann tuple starts at 7
        assert_eq!(s.rows()[0][0], Value::str("ann"));
        let s = r.timeslice(11);
        assert!(s.is_empty());
    }

    #[test]
    fn endpoints_sorted_unique() {
        let r = sample();
        assert_eq!(r.endpoints(), vec![0, 1, 5, 7, 11]);
    }

    #[test]
    fn project_data_dedups() {
        let r = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
            vec![
                (vec![Value::Int(1), Value::Int(10)], Interval::of(0, 5)),
                (vec![Value::Int(1), Value::Int(20)], Interval::of(0, 5)),
            ],
        )
        .unwrap();
        let p = r.project_data(&[0]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.data_width(), 1);
        assert!(r.project_data(&[5]).is_err());
    }

    #[test]
    fn display_formats_intervals() {
        use crate::interval::month::{fmt as mfmt, ym};
        let r = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![(
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            )],
        )
        .unwrap();
        let t = r.to_table_with(mfmt);
        assert!(t.contains("[2012/1, 2012/8)"), "{t}");
    }
}
