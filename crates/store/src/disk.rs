//! The disk manager: page-granular file I/O for one heap file.
//!
//! Every v3 page is CRC-stamped on its way to disk and verified on its
//! way back, so a torn or bit-rotted page surfaces as a
//! [`StoreError::Corrupt`] at read time instead of decoding to garbage.
//! Pre-v3 pages (and the interval index's raw node pages, which carry
//! their own magic) pass through untouched. Writes and syncs are counted
//! for observability and pass through the [`crate::failpoints`] sites
//! the crash-matrix tests arm.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::{StoreError, StoreResult};
use crate::failpoints::{self, Action};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Reads and writes whole pages of a single heap file. Thread-safe: the
/// file handle sits behind a mutex, and the page count is derived from the
/// tracked file length.
#[derive(Debug)]
pub struct DiskManager {
    path: PathBuf,
    io_writes: AtomicU64,
    io_syncs: AtomicU64,
    inner: Mutex<DiskInner>,
}

#[derive(Debug)]
struct DiskInner {
    file: File,
    pages: u32,
}

impl DiskManager {
    /// Open (or create) the heap file at `path`. A file length that is
    /// not a multiple of the page size is rejected as corrupt — recovery
    /// uses [`DiskManager::open_trimming`] to repair such torn tails.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<DiskManager> {
        let (dm, trimmed) = Self::open_inner(path.as_ref(), false)?;
        debug_assert!(!trimmed);
        Ok(dm)
    }

    /// Open the heap file, rounding a torn (non-page-multiple) length
    /// *down* to whole pages. Only recovery does this: the discarded
    /// partial page is re-materialized from the WAL's full-page image.
    /// Returns whether anything was trimmed.
    pub fn open_trimming(path: impl AsRef<Path>) -> StoreResult<(DiskManager, bool)> {
        Self::open_inner(path.as_ref(), true)
    }

    fn open_inner(path: &Path, trim: bool) -> StoreResult<(DiskManager, bool)> {
        let path = path.to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let mut trimmed = false;
        if len % PAGE_SIZE as u64 != 0 {
            if !trim {
                return Err(StoreError::Corrupt(format!(
                    "heap file {} has length {len}, not a multiple of the page size {PAGE_SIZE}",
                    path.display()
                )));
            }
            let whole = len - len % PAGE_SIZE as u64;
            eprintln!(
                "temporal-store: trimming torn tail of {} ({len} → {whole} bytes)",
                path.display()
            );
            file.set_len(whole)?;
            trimmed = true;
        }
        let len = file.metadata()?.len();
        let pages = (len / PAGE_SIZE as u64) as u32;
        Ok((
            DiskManager {
                path,
                io_writes: AtomicU64::new(0),
                io_syncs: AtomicU64::new(0),
                inner: Mutex::new(DiskInner { file, pages }),
            },
            trimmed,
        ))
    }

    /// The heap file path (for manifest bookkeeping and error messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages currently in the file.
    pub fn page_count(&self) -> u32 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).pages
    }

    /// Pages written since open (observability, like `io_reads` on the
    /// buffer pool).
    pub fn io_writes(&self) -> u64 {
        self.io_writes.load(Ordering::Relaxed)
    }

    /// Fsyncs issued since open.
    pub fn io_syncs(&self) -> u64 {
        self.io_syncs.load(Ordering::Relaxed)
    }

    /// Read page `id` into `page`, verifying its CRC (v3 pages).
    pub fn read_page(&self, id: PageId, page: &mut Page) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if id >= inner.pages {
            return Err(StoreError::Corrupt(format!(
                "page {id} out of bounds ({} pages in {})",
                inner.pages,
                self.path.display()
            )));
        }
        inner
            .file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        inner.file.read_exact(page.as_bytes_mut())?;
        if !page.crc_ok() {
            return Err(StoreError::Corrupt(format!(
                "page {id} of {} fails its checksum (torn write or bit rot)",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Stamp the CRC (v3 pages) and write the raw block, honoring any
    /// armed failpoint. The caller holds the inner lock.
    fn write_block(&self, inner: &mut DiskInner, id: PageId, page: &Page) -> StoreResult<()> {
        if failpoints::power_cut() {
            return Err(crate::failpoints::power_cut_error());
        }
        // Stamp the CRC on a scratch copy so the caller's in-memory page
        // is untouched (its CRC is allowed to go stale between writes).
        let mut scratch = page.clone();
        scratch.stamp_crc();
        inner
            .file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        match failpoints::hit("disk::write_page") {
            Some(Action::Crash) => {
                #[cfg(feature = "failpoints")]
                failpoints::trip_power_cut();
                return Err(crate::failpoints::power_cut_error());
            }
            Some(Action::Torn { keep }) => {
                let keep = keep.min(PAGE_SIZE);
                inner.file.write_all(&scratch.as_bytes()[..keep])?;
                #[cfg(feature = "failpoints")]
                failpoints::trip_power_cut();
                return Err(crate::failpoints::power_cut_error());
            }
            Some(Action::FlipBit { offset }) => {
                scratch.as_bytes_mut()[offset % PAGE_SIZE] ^= 1;
            }
            None => {}
        }
        inner.file.write_all(scratch.as_bytes())?;
        self.io_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write `page` at page number `id` (must be `<=` the current count;
    /// writing at the count extends the file by one page).
    pub fn write_page(&self, id: PageId, page: &Page) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if id > inner.pages {
            return Err(StoreError::Corrupt(format!(
                "write would leave a hole: page {id}, file has {} pages",
                inner.pages
            )));
        }
        self.write_block(&mut inner, id, page)?;
        if id == inner.pages {
            inner.pages += 1;
        }
        Ok(())
    }

    /// Append a fresh page, returning its id.
    pub fn allocate_page(&self, page: &Page) -> StoreResult<PageId> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = inner.pages;
        self.write_block(&mut inner, id, page)?;
        inner.pages += 1;
        Ok(id)
    }

    /// Truncate the file to `pages` whole pages. Recovery uses this to
    /// drop a trailing page that is corrupt and covered by no WAL record
    /// (such a page can only hold unacknowledged in-flight appends).
    pub fn truncate_pages(&self, pages: u32) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if pages > inner.pages {
            return Err(StoreError::Corrupt(format!(
                "cannot truncate {} to {pages} pages: it has {}",
                self.path.display(),
                inner.pages
            )));
        }
        inner.file.set_len(pages as u64 * PAGE_SIZE as u64)?;
        inner.pages = pages;
        Ok(())
    }

    /// Flush file buffers to the OS (durability point).
    pub fn sync(&self) -> StoreResult<()> {
        if failpoints::power_cut() {
            return Err(crate::failpoints::power_cut_error());
        }
        if let Some(Action::Crash | Action::Torn { .. }) = failpoints::hit("disk::sync") {
            #[cfg(feature = "failpoints")]
            failpoints::trip_power_cut();
            return Err(crate::failpoints::power_cut_error());
        }
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.file.sync_all()?;
        self.io_syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("talign_store_disk_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tmpfile("roundtrip.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 0);
        let mut p = Page::init(9);
        p.insert(b"payload").unwrap();
        let id = dm.allocate_page(&p).unwrap();
        assert_eq!(id, 0);
        assert_eq!(dm.page_count(), 1);
        assert_eq!(dm.io_writes(), 1);

        let mut back = Page::zeroed();
        dm.read_page(0, &mut back).unwrap();
        back.validate(9).unwrap();
        assert_eq!(back.record(0).unwrap(), b"payload");
        // The on-disk copy was CRC-stamped by the write.
        assert!(back.crc_ok());

        // Reopen sees the same page count.
        drop(dm);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1);
        assert!(dm.read_page(1, &mut back).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_torn_files_and_holes() {
        let path = tmpfile("torn.heap");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(DiskManager::open(&path).is_err());
        // The trimming open rounds the length down instead.
        let (dm, trimmed) = DiskManager::open_trimming(&path).unwrap();
        assert!(trimmed);
        assert_eq!(dm.page_count(), 1);
        drop(dm);
        std::fs::remove_file(&path).unwrap();

        let path = tmpfile("holes.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        assert!(dm.write_page(3, &Page::init(0)).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_page_fails_its_checksum_on_read() {
        let path = tmpfile("bitrot.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        let mut p = Page::init(1);
        p.insert(b"precious").unwrap();
        dm.allocate_page(&p).unwrap();
        drop(dm);
        // Flip one bit in the record area.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE - 3] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let dm = DiskManager::open(&path).unwrap();
        let mut back = Page::zeroed();
        let err = dm.read_page(0, &mut back).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err}");
        assert!(err.to_string().contains("checksum"));
        drop(dm);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_pages_drops_the_tail() {
        let path = tmpfile("trunc.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        dm.allocate_page(&Page::init(0)).unwrap();
        dm.allocate_page(&Page::init(0)).unwrap();
        assert_eq!(dm.page_count(), 2);
        dm.truncate_pages(1).unwrap();
        assert_eq!(dm.page_count(), 1);
        assert!(dm.truncate_pages(5).is_err());
        let mut back = Page::zeroed();
        assert!(dm.read_page(1, &mut back).is_err());
        dm.read_page(0, &mut back).unwrap();
        drop(dm);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_is_counted() {
        let path = tmpfile("sync.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.io_syncs(), 0);
        dm.sync().unwrap();
        dm.sync().unwrap();
        assert_eq!(dm.io_syncs(), 2);
        drop(dm);
        std::fs::remove_file(&path).unwrap();
    }
}
