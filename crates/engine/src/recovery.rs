//! ARIES-style redo-only crash recovery for a database directory.
//!
//! On open, the WAL (`wal.log`) is scanned from its last checkpoint and
//! every surviving record is replayed against the heap files it touched.
//! Replay is **idempotent**: each page carries the LSN of the last record
//! applied to it, so a record whose LSN is not newer than the page's is
//! skipped. Torn data pages are re-materialized from full-page images (the
//! WAL images every page the first time it is touched in a checkpoint
//! epoch, before logging logical appends against it), and a torn WAL tail
//! is truncated with a warning — recovery always reopens to the longest
//! consistent prefix of the committed history, never refuses.
//!
//! The interval index is *derived* data: rather than logging index-page
//! writes, recovery rebuilds the index of every touched temporal table
//! from a full heap scan (atomically — temp file, then rename), so after
//! recovery the index answers exactly like a from-scratch rebuild.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use temporal_store::{Manifest, TableHeap, TableMeta, Wal, WalRecord};

use crate::error::{EngineError, EngineResult};
use crate::schema::Schema;
use crate::storage::{
    self, index_path, schema_from_string, temporal_cols, IntervalIndex, INDEX_EXT,
};

/// What one recovery pass did — surfaced so callers (and tests) can tell
/// a clean open from an actual replay.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// WAL records whose effects were (re)applied.
    pub replayed: u64,
    /// WAL records skipped as already applied or referring to a table
    /// incarnation that no longer exists.
    pub skipped: u64,
    /// Whether a torn or corrupt WAL tail was truncated away.
    pub wal_tail_truncated: bool,
    /// Torn heap pages dropped because no durable record covered them.
    pub pages_trimmed: u32,
    /// Tables whose heaps were replayed into (indexes rebuilt).
    pub tables_touched: Vec<String>,
}

impl RecoveryReport {
    /// Did this pass change anything on disk?
    pub fn did_work(&self) -> bool {
        self.replayed > 0 || self.pages_trimmed > 0 || self.wal_tail_truncated
    }
}

/// A heap opened for replay, with the manifest entry it was opened under.
struct RecoveringTable {
    heap: TableHeap,
    fingerprint: u64,
    schema: Schema,
    file: String,
}

/// Open (or create) the WAL of `dir`, replay its surviving records over
/// the directory's heap files, settle every touched table (trim torn
/// tails, recount rows, rebuild interval indexes) and re-save the
/// manifest. Returns the post-recovery manifest, the live WAL handle and
/// a report of what happened.
///
/// Also verifies — after replay, which may legitimately remove entries —
/// that every file the manifest references exists, so a half-copied
/// database directory fails fast with a clear error instead of a
/// confusing mid-query one.
pub fn recover(
    dir: &Path,
    pool_pages: usize,
) -> EngineResult<(Manifest, Arc<Wal>, RecoveryReport)> {
    let mut manifest = Manifest::load(dir).map_err(EngineError::from)?;
    let (wal, scan) = Wal::open(dir).map_err(EngineError::from)?;
    let mut report = RecoveryReport {
        wal_tail_truncated: scan.tail_truncated,
        ..RecoveryReport::default()
    };
    let mut manifest_dirty = false;
    let mut open: BTreeMap<String, RecoveringTable> = BTreeMap::new();

    for (lsn, rec) in &scan.records {
        match rec {
            WalRecord::TableUpsert {
                name,
                file,
                fingerprint,
                rows,
                schema,
                index,
            } => {
                // The create/replace logs *after* its files are renamed
                // into place, so a missing heap means the operation never
                // completed — skip, leaving any previous entry intact.
                if dir.join(file).is_file() {
                    manifest.insert(
                        name.clone(),
                        TableMeta {
                            file: file.clone(),
                            fingerprint: *fingerprint,
                            rows: *rows,
                            schema: schema.clone(),
                            index: index.clone().filter(|i| dir.join(i).is_file()),
                        },
                    );
                    // Later heap records must target the new incarnation.
                    open.remove(name);
                    manifest_dirty = true;
                    report.replayed += 1;
                } else {
                    report.skipped += 1;
                }
            }
            WalRecord::TableDrop { name } => {
                if manifest.remove(name).is_some() {
                    manifest_dirty = true;
                    report.replayed += 1;
                } else {
                    report.skipped += 1;
                }
                open.remove(name);
                let _ = std::fs::remove_file(storage::heap_path(dir, name));
                let _ = std::fs::remove_file(index_path(dir, name));
            }
            WalRecord::HeapAppend {
                table,
                fingerprint,
                page,
                zone,
                record,
            } => match recovering(&mut open, &manifest, dir, table, *fingerprint, pool_pages)? {
                Some(t) => {
                    if t.heap.redo_append(*page, record, *zone, *lsn)? {
                        report.replayed += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                None => report.skipped += 1,
            },
            WalRecord::HeapPageImage {
                table,
                fingerprint,
                page,
                image,
            } => match recovering(&mut open, &manifest, dir, table, *fingerprint, pool_pages)? {
                Some(t) => {
                    if t.heap.redo_page_image(*page, image, *lsn)? {
                        report.replayed += 1;
                    } else {
                        report.skipped += 1;
                    }
                }
                None => report.skipped += 1,
            },
            // Checkpoints reset the scan inside `Wal::open`; one can only
            // surface here if that ever changes — nothing to replay.
            WalRecord::Checkpoint => report.skipped += 1,
        }
    }

    // Settle every heap the replay touched: drop torn tails the log did
    // not cover, recount rows from the (validated) pages, flush, and
    // rebuild derived state.
    for (name, t) in &open {
        report.pages_trimmed += t.heap.trim_corrupt_tail()?;
        let rows = t.heap.recount_rows()?;
        t.heap.flush()?;
        let index = rebuild_index(dir, name, t, pool_pages)?;
        manifest.insert(
            name.clone(),
            TableMeta {
                file: t.file.clone(),
                fingerprint: t.fingerprint,
                rows,
                schema: storage::schema_to_string(&t.schema),
                index,
            },
        );
        manifest_dirty = true;
        report.tables_touched.push(name.clone());
    }
    for (_, t) in open {
        t.heap.close()?;
    }
    if manifest_dirty {
        manifest.save(dir).map_err(EngineError::from)?;
    }
    manifest.verify_files(dir).map_err(EngineError::from)?;
    Ok((manifest, Arc::new(wal), report))
}

/// The lazily-opened heap a WAL record targets, or `None` when the record
/// is stale: the table is gone from the manifest, its fingerprint changed
/// (the table was replaced), or its heap file vanished.
fn recovering<'a>(
    open: &'a mut BTreeMap<String, RecoveringTable>,
    manifest: &Manifest,
    dir: &Path,
    table: &str,
    fingerprint: u64,
    pool_pages: usize,
) -> EngineResult<Option<&'a RecoveringTable>> {
    if let Some(t) = open.get(table) {
        // NLL limitation: re-borrow immutably below instead of returning
        // this borrow directly.
        if t.fingerprint != fingerprint {
            return Ok(None);
        }
        return Ok(open.get(table));
    }
    let Some(meta) = manifest.get(table) else {
        return Ok(None);
    };
    if meta.fingerprint != fingerprint {
        return Ok(None);
    }
    let path = dir.join(&meta.file);
    if !path.is_file() {
        return Ok(None);
    }
    let (heap, trimmed) = TableHeap::open_for_recovery(&path, fingerprint, pool_pages)?;
    if trimmed {
        eprintln!(
            "temporal-engine: trimmed a partial trailing page of {} during recovery",
            path.display()
        );
    }
    let schema = schema_from_string(&meta.schema)?;
    open.insert(
        table.to_string(),
        RecoveringTable {
            heap,
            fingerprint,
            schema,
            file: meta.file.clone(),
        },
    );
    Ok(open.get(table))
}

/// Rebuild the interval index of a touched table from a full heap scan
/// (temp file + rename), returning the manifest index field. Non-temporal
/// tables get any stale index file removed instead.
fn rebuild_index(
    dir: &Path,
    name: &str,
    t: &RecoveringTable,
    pool_pages: usize,
) -> EngineResult<Option<String>> {
    let idx_path = index_path(dir, name);
    let Some((tsi, tei)) = temporal_cols(&t.schema) else {
        let _ = std::fs::remove_file(&idx_path);
        return Ok(None);
    };
    let arity = t.schema.len();
    let mut entries = Vec::new();
    for page_no in 0..t.heap.page_count() {
        t.heap.with_page(page_no, |page| {
            for rec in page.records() {
                let row = storage::decode_row(rec?, arity).map_err(|e| {
                    temporal_store::StoreError::Corrupt(format!("page {page_no}: {e}"))
                })?;
                let values = row.values();
                if let (crate::value::Value::Int(ts), crate::value::Value::Int(te)) =
                    (&values[tsi], &values[tei])
                {
                    entries.push((*ts, *te, page_no));
                }
            }
            Ok(())
        })?;
    }
    let tmp = dir.join(format!(".{name}.{INDEX_EXT}.tmp"));
    let index = IntervalIndex::build(&tmp, pool_pages, entries)?;
    index.flush()?;
    drop(index);
    std::fs::rename(&tmp, &idx_path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        EngineError::Storage(format!(
            "rename {} → {}: {e}",
            tmp.display(),
            idx_path.display()
        ))
    })?;
    Ok(idx_path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned()))
}
