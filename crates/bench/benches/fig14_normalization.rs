//! Fig. 14: normalization with different attribute sets — `N_{}` splits
//! across all endpoints (most expensive), `N_{pcn}` and `N_{ssn}` only
//! within matching groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_bench::run_normalization;
use temporal_datasets::{incumben, prefix, IncumbenSpec};
use temporal_engine::prelude::*;

fn bench(c: &mut Criterion) {
    let data = incumben(IncumbenSpec::default());
    // Paper-faithful planner: the default config would auto-select the
    // sweep interval join on overlap patterns and change the figure.
    let planner = Planner::new(PlannerConfig::paper());
    let mut group = c.benchmark_group("fig14_normalization_attrs");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000] {
        let r = prefix(&data, n);
        let variants: [(&str, &[usize]); 3] = [("N_empty", &[]), ("N_pcn", &[1]), ("N_ssn", &[0])];
        for (label, b_attrs) in variants {
            group.bench_with_input(BenchmarkId::new(label, n), &r, |b, r| {
                b.iter(|| run_normalization(r, b_attrs, &planner))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
