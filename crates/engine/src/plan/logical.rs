//! Logical plans: the engine's "query tree" (paper Fig. 12b).
//!
//! Downstream crates extend the algebra through [`ExtensionNode`] — the
//! same mechanism by which the paper adds `ALIGN`/`NORMALIZE` nodes to
//! PostgreSQL's query tree without touching the relational core.

use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::exec::BoxedExec;
use crate::expr::{AggCall, Expr, SortKey};
use crate::plan::cost::{CostModel, PlanStats};
use crate::plan::{JoinType, SetOpKind};
use crate::relation::Relation;
use crate::schema::{Column, Schema};

/// A user-defined logical operator (e.g. the temporal adjustment primitives).
pub trait ExtensionNode: fmt::Debug + Send + Sync {
    /// Short name for EXPLAIN output.
    fn name(&self) -> &str;

    /// Child plans.
    fn inputs(&self) -> Vec<&LogicalPlan>;

    /// Rebuild with new children (same arity as [`ExtensionNode::inputs`]).
    fn with_new_inputs(&self, inputs: Vec<LogicalPlan>) -> Arc<dyn ExtensionNode>;

    /// Output schema.
    fn schema(&self) -> Schema;

    /// Cardinality/cost estimate given child statistics and the planner's
    /// cost model — the hook the paper describes in Sec. 6.2/6.3 ("the
    /// optimizer needs cost estimations for the new operator").
    fn estimate(&self, input_stats: &[PlanStats], model: &CostModel) -> PlanStats;

    /// Build the executor, given already-built children.
    fn build_exec(&self, children: Vec<BoxedExec>) -> EngineResult<BoxedExec>;

    /// Declare that output column `out_col` is a verbatim copy of column
    /// `in_col` of input `input_idx` **and** that a selection on it
    /// commutes with this node: filtering the input rows on that column
    /// before the node must produce exactly the rows that filtering the
    /// output would keep. The optimizer uses this to push non-timestamp
    /// filters *across* extension boundaries (e.g. below a temporal
    /// alignment, whose data columns partition the plane sweep into
    /// independent groups). Returning `None` (the default) keeps filters
    /// above the node.
    fn passthrough_column(&self, out_col: usize) -> Option<(usize, usize)> {
        let _ = out_col;
        None
    }

    /// One-line description for EXPLAIN.
    fn explain(&self) -> String {
        self.name().to_string()
    }
}

/// A relational logical plan.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan a named catalog table (schema captured at analysis time).
    TableScan {
        name: String,
        schema: Schema,
    },
    /// Scan an inline (already materialized) relation.
    InlineScan {
        rel: Arc<Relation>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group: Vec<Expr>,
        aggs: Vec<AggCall>,
        schema: Schema,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        join_type: JoinType,
        condition: Option<Expr>,
    },
    SetOp {
        kind: SetOpKind,
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
    Extension {
        node: Arc<dyn ExtensionNode>,
    },
}

impl LogicalPlan {
    // ---- constructors ---------------------------------------------------

    /// Scan an inline relation.
    pub fn inline_scan(rel: Relation) -> LogicalPlan {
        LogicalPlan::InlineScan { rel: Arc::new(rel) }
    }

    /// Scan a shared relation without copying.
    pub fn inline_scan_shared(rel: Arc<Relation>) -> LogicalPlan {
        LogicalPlan::InlineScan { rel }
    }

    /// Scan a named table; `schema` must match what the catalog will serve.
    pub fn table_scan(name: impl Into<String>, schema: Schema) -> LogicalPlan {
        LogicalPlan::TableScan {
            name: name.into(),
            schema,
        }
    }

    /// σ: filter by a predicate.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// π: project expressions with explicit output names (types inferred).
    pub fn project_named(self, items: Vec<(Expr, impl Into<String>)>) -> EngineResult<LogicalPlan> {
        let input_schema = self.schema();
        let mut exprs = Vec::with_capacity(items.len());
        let mut cols = Vec::with_capacity(items.len());
        for (e, name) in items {
            let dtype = e.infer_type(&input_schema)?;
            cols.push(Column::new(name.into(), dtype));
            exprs.push(e);
        }
        Ok(LogicalPlan::Project {
            input: Box::new(self),
            exprs,
            schema: Schema::new(cols),
        })
    }

    /// π with fully explicit output columns (names, qualifiers and types
    /// given by the caller) — used where inferred unqualified names would
    /// lose resolution information, e.g. the temporal join reduction.
    pub fn project_columns(self, items: Vec<(Expr, Column)>) -> LogicalPlan {
        let (exprs, cols): (Vec<Expr>, Vec<Column>) = items.into_iter().unzip();
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
            schema: Schema::new(cols),
        }
    }

    /// π onto a set of existing columns (names preserved).
    pub fn project_cols(self, idxs: &[usize]) -> LogicalPlan {
        let schema = self.schema().project(idxs);
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: idxs.iter().map(|&i| Expr::Col(i)).collect(),
            schema,
        }
    }

    /// ϑ: grouped aggregation; output = group columns then aggregates.
    pub fn aggregate_named(
        self,
        group: Vec<(Expr, impl Into<String>)>,
        aggs: Vec<(AggCall, impl Into<String>)>,
    ) -> EngineResult<LogicalPlan> {
        let input_schema = self.schema();
        let mut group_exprs = Vec::with_capacity(group.len());
        let mut cols = Vec::with_capacity(group.len() + aggs.len());
        for (e, name) in group {
            let dtype = e.infer_type(&input_schema)?;
            cols.push(Column::new(name.into(), dtype));
            group_exprs.push(e);
        }
        let mut agg_calls = Vec::with_capacity(aggs.len());
        for (a, name) in aggs {
            let arg_t = match &a.arg {
                Some(e) => Some(e.infer_type(&input_schema)?),
                None => None,
            };
            cols.push(Column::new(name.into(), a.func.result_type(arg_t)));
            agg_calls.push(a);
        }
        Ok(LogicalPlan::Aggregate {
            input: Box::new(self),
            group: group_exprs,
            aggs: agg_calls,
            schema: Schema::new(cols),
        })
    }

    /// Sort by keys.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// δ: duplicate elimination.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }

    /// Join with another plan.
    pub fn join(
        self,
        right: LogicalPlan,
        join_type: JoinType,
        condition: Option<Expr>,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            join_type,
            condition,
        }
    }

    /// Set operation with another plan.
    pub fn set_op(self, kind: SetOpKind, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::SetOp {
            kind,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// LIMIT n.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Wrap an extension node.
    pub fn extension(node: Arc<dyn ExtensionNode>) -> LogicalPlan {
        LogicalPlan::Extension { node }
    }

    // ---- reflection ------------------------------------------------------

    /// The output schema of this plan.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::TableScan { schema, .. } => schema.clone(),
            LogicalPlan::InlineScan { rel } => rel.schema().clone(),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema.clone(),
            LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                if join_type.emits_right() {
                    left.schema().concat(&right.schema())
                } else {
                    left.schema()
                }
            }
            LogicalPlan::SetOp { left, .. } => left.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Extension { node } => node.schema(),
        }
    }

    /// Validate structural invariants (arities, union compatibility,
    /// column-reference bounds). Returns `self` for chaining.
    pub fn validated(self) -> EngineResult<LogicalPlan> {
        self.validate()?;
        Ok(self)
    }

    fn validate(&self) -> EngineResult<()> {
        let check_expr = |e: &Expr, schema: &Schema| -> EngineResult<()> {
            if let Some(m) = e.max_col() {
                if m >= schema.len() {
                    return Err(EngineError::Internal(format!(
                        "expression references column {m} but input has {} columns",
                        schema.len()
                    )));
                }
            }
            Ok(())
        };
        match self {
            LogicalPlan::TableScan { .. } | LogicalPlan::InlineScan { .. } => Ok(()),
            LogicalPlan::Filter { input, predicate } => {
                input.validate()?;
                check_expr(predicate, &input.schema())
            }
            LogicalPlan::Project { input, exprs, .. } => {
                input.validate()?;
                let s = input.schema();
                exprs.iter().try_for_each(|e| check_expr(e, &s))
            }
            LogicalPlan::Aggregate {
                input, group, aggs, ..
            } => {
                input.validate()?;
                let s = input.schema();
                group.iter().try_for_each(|e| check_expr(e, &s))?;
                aggs.iter()
                    .filter_map(|a| a.arg.as_ref())
                    .try_for_each(|e| check_expr(e, &s))
            }
            LogicalPlan::Sort { input, keys } => {
                input.validate()?;
                let s = input.schema();
                keys.iter().try_for_each(|k| check_expr(&k.expr, &s))
            }
            LogicalPlan::Distinct { input } | LogicalPlan::Limit { input, .. } => input.validate(),
            LogicalPlan::Join {
                left,
                right,
                condition,
                ..
            } => {
                left.validate()?;
                right.validate()?;
                if let Some(c) = condition {
                    check_expr(c, &left.schema().concat(&right.schema()))?;
                }
                Ok(())
            }
            LogicalPlan::SetOp { left, right, .. } => {
                left.validate()?;
                right.validate()?;
                if !left.schema().union_compatible(&right.schema()) {
                    return Err(EngineError::SchemaMismatch(format!(
                        "set operation arguments not union compatible: {} vs {}",
                        left.schema(),
                        right.schema()
                    )));
                }
                Ok(())
            }
            LogicalPlan::Extension { node } => {
                node.inputs().into_iter().try_for_each(|p| p.validate())
            }
        }
    }

    /// Pretty-printed plan tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::TableScan { name, .. } => {
                out.push_str(&format!("{pad}TableScan: {name}\n"));
            }
            LogicalPlan::InlineScan { rel } => {
                out.push_str(&format!("{pad}InlineScan: {} rows\n", rel.len()));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!(
                    "{pad}Filter: {}\n",
                    predicate.display(Some(&input.schema()))
                ));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(schema.cols())
                    .map(|(e, c)| format!("{} AS {}", e.display(Some(&input.schema())), c.name))
                    .collect();
                out.push_str(&format!("{pad}Project: {}\n", items.join(", ")));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Aggregate {
                input, group, aggs, ..
            } => {
                let s = input.schema();
                let g: Vec<String> = group.iter().map(|e| e.display(Some(&s))).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|c| match &c.arg {
                        Some(e) => format!("{}({})", c.func.name(), e.display(Some(&s))),
                        None => c.func.name().to_string(),
                    })
                    .collect();
                out.push_str(&format!(
                    "{pad}Aggregate: group=[{}] aggs=[{}]\n",
                    g.join(", "),
                    a.join(", ")
                ));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let s = input.schema();
                let k: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "{}{}",
                            k.expr.display(Some(&s)),
                            if k.desc { " DESC" } else { "" }
                        )
                    })
                    .collect();
                out.push_str(&format!("{pad}Sort: {}\n", k.join(", ")));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => {
                let cond = match condition {
                    Some(c) => c.display(Some(&left.schema().concat(&right.schema()))),
                    None => "true".to_string(),
                };
                out.push_str(&format!("{pad}Join[{}]: {}\n", join_type.name(), cond));
                left.explain_into(out, indent + 1);
                right.explain_into(out, indent + 1);
            }
            LogicalPlan::SetOp { kind, left, right } => {
                out.push_str(&format!("{pad}{}\n", kind.name()));
                left.explain_into(out, indent + 1);
                right.explain_into(out, indent + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.explain_into(out, indent + 1);
            }
            LogicalPlan::Extension { node } => {
                out.push_str(&format!("{pad}{}\n", node.explain()));
                for i in node.inputs() {
                    i.explain_into(out, indent + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::DataType;
    use crate::value::Value;

    fn rel() -> Relation {
        Relation::from_values(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
            vec![vec![Value::Int(1), Value::Int(2)]],
        )
        .unwrap()
    }

    #[test]
    fn schemas_propagate() {
        let p = LogicalPlan::inline_scan(rel())
            .filter(col(0).gt(lit(0i64)))
            .project_named(vec![(col(1), "b2")])
            .unwrap();
        assert_eq!(p.schema().names(), vec!["b2"]);
    }

    #[test]
    fn join_schema_depends_on_type() {
        let l = LogicalPlan::inline_scan(rel());
        let r = LogicalPlan::inline_scan(rel());
        let j = l.clone().join(r.clone(), JoinType::Inner, None);
        assert_eq!(j.schema().len(), 4);
        let j = l.join(r, JoinType::Anti, None);
        assert_eq!(j.schema().len(), 2);
    }

    #[test]
    fn validate_catches_out_of_bounds_columns() {
        let p = LogicalPlan::inline_scan(rel()).filter(col(9).gt(lit(0i64)));
        assert!(p.validated().is_err());
    }

    #[test]
    fn validate_catches_union_incompatibility() {
        let narrow = Relation::from_values(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        let p = LogicalPlan::inline_scan(rel())
            .set_op(SetOpKind::Union, LogicalPlan::inline_scan(narrow));
        assert!(p.validated().is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let p = LogicalPlan::inline_scan(rel()).filter(col(0).eq(lit(1i64)));
        let text = p.explain();
        assert!(text.contains("Filter: a = 1"));
        assert!(text.contains("InlineScan"));
    }
}
