//! # temporal-store
//!
//! Paged on-disk storage for the temporal-alignment workspace: the layer
//! that lets a [`temporal relation`] outlive the process and outgrow RAM.
//!
//! The crate is deliberately **byte-oriented** — it knows nothing about
//! rows, values or schemas. It provides:
//!
//! * [`page::Page`] — fixed-size slotted pages (header with schema
//!   fingerprint, tuple count and free-space pointer; slot array; records
//!   growing downward), whose in-memory form *is* the on-disk form;
//! * [`disk::DiskManager`] — page-granular file I/O for one heap file;
//! * [`buffer::BufferPool`] — a fixed set of frames with pin/unpin
//!   accounting, clock (second-chance) eviction and dirty-page
//!   write-back, so scans over files larger than the pool stream;
//! * [`heap::TableHeap`] — an append-only heap file behind a pool, the
//!   physical shape of one table;
//! * [`manifest::Manifest`] — the `manifest.tsv` catalog-metadata file of
//!   a database directory (table name → heap file, schema fingerprint,
//!   opaque schema string);
//! * [`wal::Wal`] — the write-ahead log (`wal.log`) of one database
//!   directory: CRC-framed, LSN-stamped records with a [`wal::SyncMode`]
//!   policy and sharp checkpoints, the substrate for the engine's
//!   redo-only crash recovery;
//! * [`failpoints`] — named fault-injection sites (crash / torn write /
//!   bit flip) on every write path, active only under the `failpoints`
//!   cargo feature, driving the crash-matrix recovery suite.
//!
//! The tuple encoding (rows ↔ records, schemas ↔ fingerprints) lives one
//! layer up in `temporal-engine`'s storage glue, which also provides the
//! `StorageScanExec` executor node decoding pages straight into row
//! batches.
//!
//! [`temporal relation`]: https://doi.org/10.1145/2213836.2213886
//!
//! ```
//! use temporal_store::heap::TableHeap;
//!
//! let path = std::env::temp_dir().join("talign_store_doc.heap");
//! let heap = TableHeap::create(&path, 0xabc, 4).unwrap();
//! heap.append(b"first").unwrap();
//! heap.append(b"second").unwrap();
//! heap.flush().unwrap();
//!
//! let reopened = TableHeap::open(&path, 0xabc, 4).unwrap();
//! assert_eq!(reopened.row_count(), 2);
//! reopened
//!     .with_page(0, |page| {
//!         assert_eq!(page.record(0).unwrap(), b"first");
//!         Ok(())
//!     })
//!     .unwrap();
//! std::fs::remove_file(&path).unwrap();
//! ```

pub mod buffer;
pub mod crc32c;
pub mod disk;
pub mod error;
pub mod failpoints;
pub mod heap;
pub mod index;
pub mod manifest;
pub mod page;
pub mod wal;

pub use buffer::{BufferPool, PageGuard, PageWriteGuard, PoolStats, DEFAULT_POOL_PAGES};
pub use disk::DiskManager;
pub use error::{StoreError, StoreResult};
pub use heap::{AppendBatch, HeapSnapshot, TableHeap};
pub use index::{IndexEntry, IntervalIndex};
pub use manifest::{Manifest, TableMeta, MANIFEST_FILE};
pub use page::{Page, PageId, PageZone, SlotId, ZoneBounds, MAX_RECORD_SIZE, PAGE_SIZE};
pub use wal::{SyncMode, Wal, WalRecord, WalScan, WalStats, WAL_FILE};
