//! Plan-level reduction rules (Table 2 of the paper).
//!
//! Each function takes logical plans whose last two columns are the
//! interval (the temporal-relation convention) and returns the reduced
//! nontemporal plan. These are used both by
//! [`crate::algebra::TemporalAlgebra`] on materialized relations and by
//! the SQL front end / baselines for composition.

use temporal_engine::prelude::*;

use crate::error::{TemporalError, TemporalResult};
use crate::primitives::absorb::AbsorbNode;
use crate::primitives::adjustment::{align_plan, normalize_plan};

/// Grouping pairs `(i, i)` for self-normalization `N_B(r; r)`.
pub fn self_pairs(b: &[usize]) -> Vec<(usize, usize)> {
    b.iter().map(|&i| (i, i)).collect()
}

/// σᵀ_θ(r) = σ_θ(r) — Table 2, Selection.
pub fn reduce_selection(r: LogicalPlan, predicate: Expr) -> LogicalPlan {
    r.filter(predicate)
}

/// πᵀ_B(r) = π_{B,T}(N_B(r; r)) — Table 2, Projection (set semantics).
pub fn reduce_projection(r: LogicalPlan, b: &[usize]) -> TemporalResult<LogicalPlan> {
    let width = r.schema().len();
    let data_width = width - 2;
    for &i in b {
        if i >= data_width {
            return Err(TemporalError::Incompatible(format!(
                "projection attribute {i} is not a data column (width {data_width})"
            )));
        }
    }
    let normalized = normalize_plan(r.clone(), r, &self_pairs(b))?;
    let mut idxs: Vec<usize> = b.to_vec();
    idxs.push(width - 2);
    idxs.push(width - 1);
    Ok(normalized.project_cols(&idxs).distinct())
}

/// `_Bϑᵀ_F(r) = _{B,T}ϑ_F(N_B(r; r))` — Table 2, Aggregation.
/// Output schema: `B…, aggregates…, ts, te`.
pub fn reduce_aggregation(
    r: LogicalPlan,
    b: &[usize],
    aggs: Vec<(AggCall, String)>,
) -> TemporalResult<LogicalPlan> {
    let schema = r.schema();
    let width = schema.len();
    let data_width = width - 2;
    for &i in b {
        if i >= data_width {
            return Err(TemporalError::Incompatible(format!(
                "grouping attribute {i} is not a data column (width {data_width})"
            )));
        }
    }
    let normalized = normalize_plan(r.clone(), r, &self_pairs(b))?;

    // Engine aggregate: group = (B…, ts, te) → output (B…, ts, te, aggs…).
    let mut group_items: Vec<(Expr, String)> = b
        .iter()
        .map(|&i| (col(i), schema.col(i).name.clone()))
        .collect();
    group_items.push((col(width - 2), schema.col(width - 2).name.clone()));
    group_items.push((col(width - 1), schema.col(width - 1).name.clone()));
    let n_aggs = aggs.len();
    let aggregated = normalized.aggregate_named(group_items, aggs)?;

    // Reorder to (B…, aggs…, ts, te).
    let nb = b.len();
    let mut idxs: Vec<usize> = (0..nb).collect();
    idxs.extend(nb + 2..nb + 2 + n_aggs);
    idxs.push(nb);
    idxs.push(nb + 1);
    Ok(aggregated.project_cols(&idxs))
}

/// ∪ᵀ / −ᵀ / ∩ᵀ: `N_A(r; s) ⟨op⟩ N_A(s; r)` — Table 2, set operators.
pub fn reduce_setop(
    kind: SetOpKind,
    r: LogicalPlan,
    s: LogicalPlan,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    if !rs.union_compatible(&ss) {
        return Err(TemporalError::Incompatible(format!(
            "set operation arguments not union compatible: {rs} vs {ss}"
        )));
    }
    let data_width = rs.len() - 2;
    let all: Vec<usize> = (0..data_width).collect();
    let pairs = self_pairs(&all);
    let rn = normalize_plan(r.clone(), s.clone(), &pairs)?;
    let sn = normalize_plan(s, r, &pairs)?;
    Ok(rn.set_op(kind, sn))
}

/// ×ᵀ, ⋈ᵀ, ⟕ᵀ, ⟖ᵀ, ⟗ᵀ — Table 2, tuple-based joins:
/// `α((rΦ_θ s) ⟨join⟩_{θ ∧ r.T=s.T} (sΦ_θ r))` followed by a projection to
/// `(r.A…, s.C…, T)` where `T` coalesces the two (equal) adjusted
/// timestamps so that ω-padded rows keep the surviving side's interval.
pub fn reduce_join(
    r: LogicalPlan,
    s: LogicalPlan,
    join_type: JoinType,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    if !matches!(
        join_type,
        JoinType::Inner | JoinType::Left | JoinType::Right | JoinType::Full
    ) {
        return Err(TemporalError::Unsupported(format!(
            "reduce_join handles Inner/Left/Right/Full, got {join_type:?}"
        )));
    }
    let rs = r.schema();
    let ss = s.schema();
    let (wr, ws) = (rs.len(), ss.len());

    let r_aligned = align_plan(r.clone(), s.clone(), theta.clone())?;
    let s_aligned = align_plan(s, r, swap_theta(theta.as_ref(), wr, ws))?;

    let mut conjuncts = Vec::new();
    if let Some(t) = theta {
        conjuncts.push(t);
    }
    conjuncts.push(col(wr - 2).eq(col(wr + ws - 2))); // r.ts = s.ts
    conjuncts.push(col(wr - 1).eq(col(wr + ws - 1))); // r.te = s.te
    let cond = Expr::and_all(conjuncts);

    let joined = r_aligned.join(s_aligned, join_type, cond);

    // Project to (r data, s data, ts, te); data columns keep their
    // qualifiers so name-based expressions still resolve downstream.
    let mut items: Vec<(Expr, Column)> = Vec::with_capacity(wr + ws - 2);
    for i in 0..wr - 2 {
        items.push((col(i), rs.col(i).clone()));
    }
    for i in 0..ws - 2 {
        items.push((col(wr + i), ss.col(i).clone()));
    }
    items.push((
        Expr::Func(Func::Coalesce, vec![col(wr - 2), col(wr + ws - 2)]),
        Column::new("ts", DataType::Int),
    ));
    items.push((
        Expr::Func(Func::Coalesce, vec![col(wr - 1), col(wr + ws - 1)]),
        Column::new("te", DataType::Int),
    ));
    let projected = joined.project_columns(items);

    Ok(AbsorbNode::plan(projected))
}

/// ▷ᵀ_θ: `(rΦ_θ s) ▷_{θ ∧ r.T=s.T} (sΦ_θ r)` — Table 2, Anti Join
/// (no absorb).
pub fn reduce_antijoin(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let (wr, ws) = (r.schema().len(), s.schema().len());
    let r_aligned = align_plan(r.clone(), s.clone(), theta.clone())?;
    let s_aligned = align_plan(s, r, swap_theta(theta.as_ref(), wr, ws))?;
    let mut conjuncts = Vec::new();
    if let Some(t) = theta {
        conjuncts.push(t);
    }
    conjuncts.push(col(wr - 2).eq(col(wr + ws - 2)));
    conjuncts.push(col(wr - 1).eq(col(wr + ws - 1)));
    Ok(r_aligned.join(s_aligned, JoinType::Anti, Expr::and_all(conjuncts)))
}

/// Rewrite θ from `(r ++ s)` coordinates to `(s ++ r)` coordinates for the
/// symmetric alignment `s Φ_θ r`.
fn swap_theta(theta: Option<&Expr>, wr: usize, ws: usize) -> Option<Expr> {
    theta.map(|e| e.remap_cols(&|i| if i < wr { i + ws } else { i - wr }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::trel::TemporalRelation;
    use temporal_engine::catalog::Catalog;

    fn rel(rows: &[(i64, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("k", DataType::Int)]),
            rows.iter()
                .map(|&(k, s, e)| (vec![Value::Int(k)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn swap_theta_round_trips() {
        let theta = col(0).eq(col(4)).and(col(2).lt(col(5)));
        let swapped = swap_theta(Some(&theta), 3, 4).unwrap();
        let back = swap_theta(Some(&swapped), 4, 3).unwrap();
        assert_eq!(back, theta);
    }

    #[test]
    fn reduce_join_rejects_semi() {
        let r = rel(&[(1, 0, 5)]);
        let plan = LogicalPlan::inline_scan(r.rel().clone());
        assert!(reduce_join(plan.clone(), plan, JoinType::Semi, None).is_err());
    }

    #[test]
    fn reduced_join_condition_enables_hash_join() {
        // The reduction conjoins r.T = s.T, so even a θ-free temporal join
        // plans as a hash or merge join — the paper's Sec. 7.4 argument.
        let r = rel(&[(1, 0, 5), (2, 3, 9)]);
        let plan = reduce_join(
            LogicalPlan::inline_scan(r.rel().clone()),
            LogicalPlan::inline_scan(r.rel().clone()),
            JoinType::Inner,
            None,
        )
        .unwrap();
        let physical = Planner::default().plan(&plan, &Catalog::new()).unwrap();
        // Find the top-level (reduced) join: it is the first join reachable
        // without descending into the alignment extensions.
        let explain = physical.explain();
        assert!(
            explain.contains("HashJoin[Inner] on 2 key(s)")
                || explain.contains("MergeJoin[Inner] on 2 key(s)"),
            "expected keyed join in:\n{explain}"
        );
    }

    #[test]
    fn antijoin_of_self_is_empty() {
        let r = rel(&[(1, 0, 5), (2, 3, 9)]);
        let plan = reduce_antijoin(
            LogicalPlan::inline_scan(r.rel().clone()),
            LogicalPlan::inline_scan(r.rel().clone()),
            Some(col(0).eq(col(3))), // k = k
        )
        .unwrap();
        let out = Planner::default().run(&plan, &Catalog::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn projection_validates_attributes() {
        let r = rel(&[(1, 0, 5)]);
        let plan = LogicalPlan::inline_scan(r.rel().clone());
        assert!(reduce_projection(plan.clone(), &[1]).is_err()); // ts column
        assert!(reduce_projection(plan, &[0]).is_ok());
    }

    #[test]
    fn aggregation_validates_groups() {
        let r = rel(&[(1, 0, 5)]);
        let plan = LogicalPlan::inline_scan(r.rel().clone());
        assert!(
            reduce_aggregation(plan, &[2], vec![(AggCall::count_star(), "c".to_string())]).is_err()
        );
    }

    #[test]
    fn setop_validates_compatibility() {
        let r = rel(&[(1, 0, 5)]);
        let wide = TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("w", DataType::Int),
            ]),
            vec![(vec![Value::Int(1), Value::Int(2)], Interval::of(0, 5))],
        )
        .unwrap();
        assert!(reduce_setop(
            SetOpKind::Union,
            LogicalPlan::inline_scan(r.rel().clone()),
            LogicalPlan::inline_scan(wide.rel().clone()),
        )
        .is_err());
    }
}
