//! The `Incumben` substitute (see crate docs and DESIGN.md §2).
//!
//! Schema: `(ssn Int, pcn Int, ts, te)` — one row per job assignment
//! (`pcn` = position control number) of an employee (`ssn`) over a time
//! interval at day granularity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_core::prelude::*;
use temporal_engine::prelude::*;

/// Generation parameters, defaulting to the statistics the paper reports
/// for the real dataset (Sec. 7.1).
#[derive(Debug, Clone, Copy)]
pub struct IncumbenSpec {
    /// Number of job assignments (paper: 83,857).
    pub rows: usize,
    /// Number of distinct employees (paper: 49,195).
    pub employees: usize,
    /// Number of distinct positions. The paper does not report this;
    /// N{pcn} sits between N{} and N{ssn} in Fig. 14, so pcn groups must
    /// be markedly larger than ssn groups — 1500 positions gives ≈ 56
    /// assignments per position at full size and keeps the ordering
    /// visible on the 10k-prefix subsets the sweeps use.
    pub positions: usize,
    /// Time domain size in days (paper: 16 years).
    pub days: i64,
    /// Maximum duration in days (paper: 573).
    pub max_duration: i64,
    /// Target mean duration in days (paper: ≈ 180).
    pub mean_duration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IncumbenSpec {
    fn default() -> Self {
        IncumbenSpec {
            rows: 83_857,
            employees: 49_195,
            positions: 1_500,
            days: 16 * 365,
            max_duration: 573,
            mean_duration: 180.0,
            seed: 42,
        }
    }
}

impl IncumbenSpec {
    /// A spec scaled to `rows` assignments, keeping the employee/position
    /// ratios of the full dataset (used for the 10k–80k sweeps).
    pub fn scaled(rows: usize) -> IncumbenSpec {
        let full = IncumbenSpec::default();
        let f = rows as f64 / full.rows as f64;
        IncumbenSpec {
            rows,
            employees: ((full.employees as f64 * f) as usize).max(1),
            positions: ((full.positions as f64 * f) as usize).max(1),
            ..full
        }
    }
}

/// Sample a duration in `[1, max]` days whose truncated-exponential shape
/// lands near `mean` (most assignments short-to-medium, a tail of long
/// ones — the qualitative shape of employment spells).
fn sample_duration(rng: &mut StdRng, mean: f64, max: i64) -> i64 {
    // Exponential with a raised rate so that truncation at `max` keeps the
    // mean near the target (empirically calibrated factor 1.22).
    let lambda = 1.0 / (mean * 1.22);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let d = (-u.ln() / lambda).round() as i64;
    d.clamp(1, max)
}

/// Generate the dataset. Rows are in generation order; use [`prefix`] to
/// take the `n`-tuple subsets of the paper's sweeps.
///
/// The result is **duplicate free** (Sec. 3.1): value-equivalent
/// `(ssn, pcn)` rows never overlap in time — an employee holds a given
/// position in non-overlapping spells, as in the real data. Conflicting
/// candidates are re-drawn.
pub fn incumben(spec: IncumbenSpec) -> TemporalRelation {
    use std::collections::HashMap;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schema = Schema::new(vec![
        Column::new("ssn", DataType::Int),
        Column::new("pcn", DataType::Int),
    ]);
    let mut taken: HashMap<(i64, i64), Vec<Interval>> = HashMap::new();
    let mut rows: Vec<(Vec<Value>, Interval)> = Vec::with_capacity(spec.rows);
    let mut i = 0usize;
    while rows.len() < spec.rows {
        // First `employees` rows introduce distinct employees; the rest
        // are additional assignments of existing employees (≈ 1.7
        // assignments per employee at default ratios, skewed like reuse).
        let ssn = if i < spec.employees {
            i as i64
        } else {
            rng.gen_range(0..spec.employees as i64)
        };
        i += 1;
        let mut placed = false;
        for _attempt in 0..32 {
            let pcn = rng.gen_range(0..spec.positions as i64);
            let dur = sample_duration(&mut rng, spec.mean_duration, spec.max_duration);
            let start = rng.gen_range(0..(spec.days - dur).max(1));
            let iv = Interval::of(start, start + dur);
            let slot = taken.entry((ssn, pcn)).or_default();
            if slot
                .iter()
                .all(|other| !other.overlaps(&iv) && *other != iv)
            {
                slot.push(iv);
                rows.push((vec![Value::Int(ssn), Value::Int(pcn)], iv));
                placed = true;
                break;
            }
        }
        if !placed {
            // Pathological spec (tiny domain): fall back to a fresh ssn so
            // generation always terminates.
            let ssn = i as i64 + spec.employees as i64;
            let dur = sample_duration(&mut rng, spec.mean_duration, spec.max_duration);
            let start = rng.gen_range(0..(spec.days - dur).max(1));
            rows.push((
                vec![Value::Int(ssn), Value::Int(0)],
                Interval::of(start, start + dur),
            ));
        }
    }
    let out =
        TemporalRelation::from_rows(schema, rows).expect("generator produces valid intervals");
    debug_assert!(out.is_duplicate_free());
    out
}

/// The first `n` tuples of a generated relation (the paper's
/// "# input tuples" axis).
pub fn prefix(r: &TemporalRelation, n: usize) -> TemporalRelation {
    let rel = Relation::new(
        r.schema().clone(),
        r.rows().iter().take(n).cloned().collect(),
    )
    .expect("same schema");
    TemporalRelation::new(rel).expect("subset of a valid relation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> TemporalRelation {
        incumben(IncumbenSpec {
            rows: 5_000,
            employees: 2_950,
            positions: 420,
            ..Default::default()
        })
    }

    #[test]
    fn row_count_and_schema() {
        let r = small();
        assert_eq!(r.len(), 5_000);
        assert_eq!(r.schema().names(), vec!["ssn", "pcn", "ts", "te"]);
    }

    #[test]
    fn employee_and_position_cardinalities() {
        let r = small();
        let ssns: HashSet<i64> = r.iter().map(|(d, _)| d[0].as_int().unwrap()).collect();
        let pcns: HashSet<i64> = r.iter().map(|(d, _)| d[1].as_int().unwrap()).collect();
        assert_eq!(ssns.len(), 2_950); // every employee appears
        assert!(pcns.len() <= 420);
        assert!(pcns.len() > 350); // essentially all positions used
    }

    #[test]
    fn durations_match_published_statistics() {
        let r = incumben(IncumbenSpec {
            rows: 20_000,
            employees: 11_800,
            positions: 1_700,
            ..Default::default()
        });
        let durs: Vec<i64> = r.iter().map(|(_, iv)| iv.duration()).collect();
        let min = *durs.iter().min().unwrap();
        let max = *durs.iter().max().unwrap();
        let mean = durs.iter().sum::<i64>() as f64 / durs.len() as f64;
        assert!(min >= 1);
        assert!(max <= 573);
        assert!(
            (150.0..=210.0).contains(&mean),
            "mean duration {mean} out of band"
        );
        // the tail actually reaches the clamp region
        assert!(max > 500, "max duration {max}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.rel(), b.rel());
        let c = incumben(IncumbenSpec {
            seed: 7,
            rows: 5_000,
            employees: 2_950,
            positions: 420,
            ..Default::default()
        });
        assert_ne!(a.rel(), c.rel());
    }

    #[test]
    fn prefix_takes_first_rows() {
        let r = small();
        let p = prefix(&r, 100);
        assert_eq!(p.len(), 100);
        assert_eq!(p.rows()[0], r.rows()[0]);
    }

    #[test]
    fn scaled_spec_keeps_ratios() {
        let s = IncumbenSpec::scaled(10_000);
        assert_eq!(s.rows, 10_000);
        let ratio = s.employees as f64 / s.rows as f64;
        let full_ratio = 49_195.0 / 83_857.0;
        assert!((ratio - full_ratio).abs() < 0.01);
    }

    #[test]
    fn group_size_ordering_supports_fig14() {
        // |groups(ssn)| > |groups(pcn)| ≫ 1 — the premise of Fig. 14.
        let r = small();
        let ssns: HashSet<i64> = r.iter().map(|(d, _)| d[0].as_int().unwrap()).collect();
        let pcns: HashSet<i64> = r.iter().map(|(d, _)| d[1].as_int().unwrap()).collect();
        assert!(ssns.len() > pcns.len());
    }
}
