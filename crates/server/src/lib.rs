//! # temporal-server
//!
//! Concurrent multi-client serving for the temporal database. This crate
//! is the outermost layer of the stack: it owns the `tsql` shell and adds
//! a socket server (`tsql --serve <dir>`) plus a matching client
//! (`tsql --connect <addr>`), speaking a line-oriented protocol simple
//! enough for `nc` (see [`protocol`]).
//!
//! The serving model (DESIGN.md "Serving & concurrency"):
//!
//! * one shared [`temporal_core::prelude::Database`] — one catalog, one
//!   buffer pool per table, one WAL;
//! * one [`temporal_sql::Session`] per connection
//!   ([`temporal_sql::Session::scoped`]): planner `SET`s stay
//!   connection-local, and the session refcount keeps close-time
//!   checkpointing off live connections;
//! * readers run on statement-level heap snapshots (never blocked by
//!   appenders), writers serialize on the database writer lock, and
//!   concurrent commits share WAL fsyncs through the group-commit
//!   flusher.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::Response;
pub use server::{stats_relation, Server, ServerHandle};
