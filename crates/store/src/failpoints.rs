//! Fault injection for the durability test suite.
//!
//! A *failpoint* is a named site on a write path (see [`SITES`]) where a
//! test can arm one [`Action`]: simulate a power cut, tear a write short,
//! or flip a bit. Crash-style actions trip a global *power-cut* switch —
//! every subsequent write or sync through this crate fails until
//! `reset` (exported with the feature) — so nothing (not even the
//! buffer pool's flush-on-`Drop`)
//! can "un-crash" the store by flushing after the injected failure. The
//! recovery suite then reopens the directory and asserts the replayed
//! state is a consistent prefix of the committed history.
//!
//! The whole module compiles to inert no-ops unless the `failpoints`
//! cargo feature is on, so production builds carry zero overhead and
//! cannot be armed.

/// What an armed failpoint does when its site is hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail this write and trip the power-cut switch.
    Crash,
    /// Write only the first `keep` bytes of the buffer (clamped to its
    /// length), then trip the power-cut switch and fail.
    Torn { keep: usize },
    /// Flip one bit at byte `offset` (mod buffer length) of the buffer
    /// being written. The write *succeeds* — this models silent media
    /// corruption, which checksums must catch on read.
    FlipBit { offset: usize },
}

/// Every named injection site, for matrix tests that iterate all of them.
pub const SITES: &[&str] = &[
    "wal::append",
    "wal::sync",
    "wal::checkpoint",
    "disk::write_page",
    "disk::sync",
    "manifest::save",
];

#[cfg(feature = "failpoints")]
mod armed {
    use super::Action;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static POWER_CUT: AtomicBool = AtomicBool::new(false);
    #[allow(clippy::type_complexity)]
    static ARMED: Mutex<Option<(String, Action, usize)>> = Mutex::new(None);

    /// Arm `action` to fire the next time `site` is hit.
    pub fn arm(site: &str, action: Action) {
        arm_nth(site, action, 0);
    }

    /// Arm `action` to fire on the `skip`-th subsequent hit of `site`
    /// (0 = next hit). Earlier hits pass through untouched.
    pub fn arm_nth(site: &str, action: Action, skip: usize) {
        *ARMED.lock().unwrap_or_else(|e| e.into_inner()) = Some((site.to_string(), action, skip));
    }

    /// Disarm everything and clear the power-cut switch.
    pub fn reset() {
        *ARMED.lock().unwrap_or_else(|e| e.into_inner()) = None;
        POWER_CUT.store(false, Ordering::SeqCst);
    }

    /// Has a crash-style action tripped the power-cut switch?
    pub fn power_cut() -> bool {
        POWER_CUT.load(Ordering::SeqCst)
    }

    /// Trip the power-cut switch directly (crash-style actions do this).
    pub fn trip_power_cut() {
        POWER_CUT.store(true, Ordering::SeqCst);
    }

    /// Called by write paths: the armed action for `site`, if it fires
    /// on this hit. Firing consumes the arming (one-shot).
    pub fn hit(site: &str) -> Option<Action> {
        let mut armed = ARMED.lock().unwrap_or_else(|e| e.into_inner());
        match armed.as_mut() {
            Some((s, action, skip)) if s == site => {
                if *skip > 0 {
                    *skip -= 1;
                    None
                } else {
                    let action = *action;
                    *armed = None;
                    Some(action)
                }
            }
            _ => None,
        }
    }
}

#[cfg(feature = "failpoints")]
pub use armed::{arm, arm_nth, hit, power_cut, reset, trip_power_cut};

#[cfg(not(feature = "failpoints"))]
mod inert {
    use super::Action;

    /// Inert: never armed without the `failpoints` feature.
    #[inline(always)]
    pub fn hit(_site: &str) -> Option<Action> {
        None
    }

    /// Inert: the power never cuts without the `failpoints` feature.
    #[inline(always)]
    pub fn power_cut() -> bool {
        false
    }
}

#[cfg(not(feature = "failpoints"))]
pub use inert::{hit, power_cut};

/// The error every write path returns once the power-cut switch is
/// tripped or a crash-style action fires.
pub(crate) fn power_cut_error() -> crate::error::StoreError {
    crate::error::StoreError::Io(std::io::Error::other("failpoint: simulated power cut"))
}
