//! Sort-merge join on equi keys with an optional residual predicate.
//!
//! The planner guarantees both inputs arrive sorted ascending (NULLs first)
//! on the key columns. Supports Inner, Left and Full joins; the planner
//! rewrites Right joins by swapping inputs.

use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::expr::Expr;
use crate::plan::JoinType;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// Merge join over sorted inputs. Output is computed group-by-group and
/// streamed from an internal queue.
pub struct MergeJoinExec {
    left: BoxedExec,
    right: BoxedExec,
    /// `(left column, right column)` pairs.
    keys: Vec<(usize, usize)>,
    residual: Option<Expr>,
    join_type: JoinType,
    schema: Schema,
    left_width: usize,
    right_width: usize,
    out: Option<std::vec::IntoIter<Row>>,
}

impl MergeJoinExec {
    pub fn new(
        left: BoxedExec,
        right: BoxedExec,
        keys: Vec<(usize, usize)>,
        residual: Option<Expr>,
        join_type: JoinType,
    ) -> Self {
        assert!(
            matches!(join_type, JoinType::Inner | JoinType::Left | JoinType::Full),
            "merge join supports Inner/Left/Full, got {join_type:?}"
        );
        let left_width = left.schema().len();
        let right_width = right.schema().len();
        let schema = left.schema().concat(right.schema());
        MergeJoinExec {
            left,
            right,
            keys,
            residual,
            join_type,
            schema,
            left_width,
            right_width,
            out: None,
        }
    }

    fn residual_ok(&self, combined: &Row) -> EngineResult<bool> {
        match &self.residual {
            None => Ok(true),
            Some(e) => e.eval_pred(combined.values()),
        }
    }

    fn compute(&mut self, state: &ExecutionState) -> EngineResult<Vec<Row>> {
        let mut l_rows = Vec::new();
        while let Some(r) = self.left.next(state)? {
            l_rows.push(r);
        }
        let mut r_rows = Vec::new();
        while let Some(r) = self.right.next(state)? {
            r_rows.push(r);
        }

        let lkey =
            |row: &Row| -> Vec<Value> { self.keys.iter().map(|&(l, _)| row[l].clone()).collect() };
        let rkey =
            |row: &Row| -> Vec<Value> { self.keys.iter().map(|&(_, r)| row[r].clone()).collect() };
        let has_null = |k: &[Value]| k.iter().any(Value::is_null);

        let mut out = Vec::new();

        // Rows with NULL keys can never match; handle per join type.
        // They sort to the front (NULLs first), but a NULL may appear in a
        // later key column, so partition explicitly.
        let (l_null, l_rows): (Vec<Row>, Vec<Row>) =
            l_rows.into_iter().partition(|r| has_null(&lkey(r)));
        let (r_null, r_rows): (Vec<Row>, Vec<Row>) =
            r_rows.into_iter().partition(|r| has_null(&rkey(r)));
        if matches!(self.join_type, JoinType::Left | JoinType::Full) {
            for r in &l_null {
                out.push(r.concat_nulls(self.right_width));
            }
        }
        if self.join_type == JoinType::Full {
            for r in &r_null {
                out.push(r.nulls_concat(self.left_width));
            }
        }

        let (mut li, mut ri) = (0usize, 0usize);
        while li < l_rows.len() && ri < r_rows.len() {
            let lk = lkey(&l_rows[li]);
            let rk = rkey(&r_rows[ri]);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => {
                    if matches!(self.join_type, JoinType::Left | JoinType::Full) {
                        out.push(l_rows[li].concat_nulls(self.right_width));
                    }
                    li += 1;
                }
                std::cmp::Ordering::Greater => {
                    if self.join_type == JoinType::Full {
                        out.push(r_rows[ri].nulls_concat(self.left_width));
                    }
                    ri += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Gather the equal-key groups on both sides.
                    let mut lj = li + 1;
                    while lj < l_rows.len() && lkey(&l_rows[lj]) == lk {
                        lj += 1;
                    }
                    let mut rj = ri + 1;
                    while rj < r_rows.len() && rkey(&r_rows[rj]) == rk {
                        rj += 1;
                    }
                    let mut r_matched = vec![false; rj - ri];
                    for lrow in &l_rows[li..lj] {
                        let mut matched = false;
                        for (k, rrow) in r_rows[ri..rj].iter().enumerate() {
                            let combined = lrow.concat(rrow);
                            if self.residual_ok(&combined)? {
                                matched = true;
                                r_matched[k] = true;
                                out.push(combined);
                            }
                        }
                        if !matched && matches!(self.join_type, JoinType::Left | JoinType::Full) {
                            out.push(lrow.concat_nulls(self.right_width));
                        }
                    }
                    if self.join_type == JoinType::Full {
                        for (k, rrow) in r_rows[ri..rj].iter().enumerate() {
                            if !r_matched[k] {
                                out.push(rrow.nulls_concat(self.left_width));
                            }
                        }
                    }
                    li = lj;
                    ri = rj;
                }
            }
        }
        if matches!(self.join_type, JoinType::Left | JoinType::Full) {
            for lrow in &l_rows[li..] {
                out.push(lrow.concat_nulls(self.right_width));
            }
        }
        if self.join_type == JoinType::Full {
            for rrow in &r_rows[ri..] {
                out.push(rrow.nulls_concat(self.left_width));
            }
        }
        Ok(out)
    }
}

impl ExecNode for MergeJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.out.is_none() {
            let rows = self.compute(state)?;
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("initialized").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, ExecutionState, NestedLoopJoinExec, SeqScanExec, SortExec};
    use crate::expr::{col, SortKey};
    use crate::relation::Relation;

    fn sorted_scan(vals: &[(i64, i64)]) -> BoxedExec {
        let scan = Box::new(SeqScanExec::new(int2_rel(("k", "v"), vals).into_shared()));
        Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]))
    }

    fn run_merge(
        l: &[(i64, i64)],
        r: &[(i64, i64)],
        jt: JoinType,
        residual: Option<Expr>,
    ) -> Relation {
        let node = MergeJoinExec::new(sorted_scan(l), sorted_scan(r), vec![(0, 0)], residual, jt);
        collect(Box::new(node), &ExecutionState::default()).unwrap()
    }

    fn run_nl(
        l: &[(i64, i64)],
        r: &[(i64, i64)],
        jt: JoinType,
        residual: Option<Expr>,
    ) -> Relation {
        let cond = match residual {
            None => col(0).eq(col(2)),
            Some(res) => col(0).eq(col(2)).and(res),
        };
        let node = NestedLoopJoinExec::new(sorted_scan(l), sorted_scan(r), jt, Some(cond));
        collect(Box::new(node), &ExecutionState::default()).unwrap()
    }

    #[test]
    fn agrees_with_nested_loop() {
        let l = [(1, 10), (2, 20), (2, 21), (4, 40), (5, 50)];
        let r = [(2, 200), (2, 201), (3, 300), (5, 500)];
        for jt in [JoinType::Inner, JoinType::Left, JoinType::Full] {
            let m = run_merge(&l, &r, jt, None);
            let n = run_nl(&l, &r, jt, None);
            assert!(m.same_bag(&n), "join type {jt:?}: {m} vs {n}");
        }
    }

    #[test]
    fn residual_with_group_duplicates() {
        let l = [(2, 20), (2, 25), (2, 30)];
        let r = [(2, 22), (2, 28)];
        let residual = Some(col(1).lt(col(3)));
        for jt in [JoinType::Inner, JoinType::Left, JoinType::Full] {
            let m = run_merge(&l, &r, jt, residual.clone());
            let n = run_nl(&l, &r, jt, residual.clone());
            assert!(m.same_bag(&n), "join type {jt:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(run_merge(&[], &[(1, 1)], JoinType::Full, None).len(), 1);
        assert_eq!(run_merge(&[(1, 1)], &[], JoinType::Left, None).len(), 1);
        assert_eq!(run_merge(&[], &[], JoinType::Inner, None).len(), 0);
    }

    #[test]
    fn null_keys_surface_as_unmatched() {
        use crate::schema::{Column, DataType, Schema};
        use crate::value::Value;
        let rel = Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ]),
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Int(2), Value::Int(2)],
            ],
        )
        .unwrap()
        .into_shared();
        let l = Box::new(SeqScanExec::new(rel));
        let r = sorted_scan(&[(2, 9)]);
        let node = MergeJoinExec::new(l, r, vec![(0, 0)], None, JoinType::Left);
        let out = collect(Box::new(node), &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 2);
        let unmatched = out.rows().iter().find(|r| r[0].is_null()).unwrap();
        assert!(unmatched[2].is_null());
    }
}
