//! Scalar expressions, aggregate calls and sort keys.
//!
//! Expressions reference input columns either *by index* ([`Expr::Col`],
//! the resolved form every executor works on) or *by name*
//! ([`Expr::Name`], e.g. `col("team")` or the qualified `name("r.team")`).
//! Named references are placeholders: an analyzer pass
//! ([`Expr::resolve`]) binds them to positions against a concrete
//! [`Schema`] — with did-you-mean suggestions for unknown columns — before
//! planning. Join predicates are evaluated over the concatenation
//! `left ++ right` of the two input rows, as in the paper's θ conditions.

mod analysis;
mod batch;
mod eval;
mod fold;
mod resolve;

pub use analysis::{
    detect_overlap_pattern, split_join_condition, JoinConditionParts, OverlapPattern,
};
pub(crate) use batch::CompiledPred;
pub use fold::fold;
pub use resolve::resolve_name;

use std::fmt;

use crate::error::{EngineError, EngineResult};
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with sides swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swapped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `DUR(ts, te)` — duration of the period `[ts, te)`, the UDF from the
    /// paper's SQL examples (Sec. 6.2).
    Dur,
    /// `GREATEST(a, b, …)` — NULL if any argument is NULL (used to compute
    /// interval intersections: `greatest(r.ts, s.ts)`).
    Greatest,
    /// `LEAST(a, b, …)` — NULL if any argument is NULL.
    Least,
    /// `COALESCE(a, b, …)` — first non-NULL argument.
    Coalesce,
    /// `ABS(a)`.
    Abs,
}

impl Func {
    pub fn name(&self) -> &'static str {
        match self {
            Func::Dur => "dur",
            Func::Greatest => "greatest",
            Func::Least => "least",
            Func::Coalesce => "coalesce",
            Func::Abs => "abs",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by index.
    Col(usize),
    /// Input column by (possibly `alias.`-qualified) name — unresolved
    /// until [`Expr::resolve`] binds it to a position.
    Name(String),
    /// A literal value.
    Lit(Value),
    /// Comparison with three-valued logic.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND (Kleene).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (Kleene).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (Kleene).
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Function call.
    Func(Func, Vec<Expr>),
    /// `expr BETWEEN low AND high` (inclusive; three-valued).
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL` (never NULL itself).
    IsNull { expr: Box<Expr>, negated: bool },
}

/// A column reference accepted by [`col`]: a position (`col(1)`, the
/// resolved form) or a name (`col("team")`, `col("r.team")`).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnRef {
    Index(usize),
    Named(String),
}

impl From<usize> for ColumnRef {
    fn from(i: usize) -> Self {
        ColumnRef::Index(i)
    }
}

impl From<&str> for ColumnRef {
    fn from(n: &str) -> Self {
        ColumnRef::Named(n.to_string())
    }
}

impl From<String> for ColumnRef {
    fn from(n: String) -> Self {
        ColumnRef::Named(n)
    }
}

/// Column reference builder: `col(1)` (positional, resolved) or
/// `col("team")` / `col("r.team")` (named, bound by [`Expr::resolve`]).
pub fn col(c: impl Into<ColumnRef>) -> Expr {
    match c.into() {
        ColumnRef::Index(i) => Expr::Col(i),
        ColumnRef::Named(n) => Expr::Name(n),
    }
}

/// Named column reference builder; `name("r1.team")` is the explicit form
/// of `col("r1.team")` for qualified references.
pub fn name(n: impl Into<String>) -> Expr {
    Expr::Name(n.into())
}

/// Literal builder.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    // ---- fluent builders ------------------------------------------------

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            low: Box::new(low),
            high: Box::new(high),
            negated: false,
        }
    }
    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }
    pub fn is_not_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: true,
        }
    }

    /// The conjunction of all expressions, or `None` when empty.
    pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Flatten nested ANDs into a list of conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Largest column index referenced, if any.
    pub fn max_col(&self) -> Option<usize> {
        let mut m: Option<usize> = None;
        self.visit_cols(&mut |i| m = Some(m.map_or(i, |x| x.max(i))));
        m
    }

    /// True iff every referenced column satisfies `pred`.
    pub fn cols_all(&self, pred: &dyn Fn(usize) -> bool) -> bool {
        let mut ok = true;
        self.visit_cols(&mut |i| ok &= pred(i));
        ok
    }

    /// Visit each column reference.
    pub fn visit_cols(&self, f: &mut dyn FnMut(usize)) {
        match self {
            Expr::Col(i) => f(*i),
            Expr::Name(_) | Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                a.visit_cols(f);
                b.visit_cols(f);
            }
            Expr::Not(a) | Expr::Neg(a) => a.visit_cols(f),
            Expr::Func(_, args) => args.iter().for_each(|a| a.visit_cols(f)),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_cols(f);
                low.visit_cols(f);
                high.visit_cols(f);
            }
            Expr::IsNull { expr, .. } => expr.visit_cols(f),
        }
    }

    /// A copy with every column index rewritten by `map`.
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Name(n) => Expr::Name(n.clone()),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_cols(map)),
                Box::new(b.remap_cols(map)),
            ),
            Expr::And(a, b) => Expr::And(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_cols(map))),
            Expr::Neg(a) => Expr::Neg(Box::new(a.remap_cols(map))),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_cols(map)),
                Box::new(b.remap_cols(map)),
            ),
            Expr::Func(func, args) => {
                Expr::Func(*func, args.iter().map(|a| a.remap_cols(map)).collect())
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.remap_cols(map)),
                low: Box::new(low.remap_cols(map)),
                high: Box::new(high.remap_cols(map)),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.remap_cols(map)),
                negated: *negated,
            },
        }
    }

    /// A copy with all column indices shifted by `delta`.
    pub fn shift_cols(&self, delta: usize) -> Expr {
        self.remap_cols(&|i| i + delta)
    }

    /// Best-effort output type inference against `input`.
    pub fn infer_type(&self, input: &Schema) -> EngineResult<DataType> {
        match self {
            Expr::Col(i) => {
                if *i >= input.len() {
                    return Err(EngineError::Internal(format!(
                        "column index {i} out of bounds for schema of width {}",
                        input.len()
                    )));
                }
                Ok(input.col(*i).dtype)
            }
            Expr::Name(n) => {
                let i = input.index_of(n)?;
                Ok(input.col(i).dtype)
            }
            Expr::Lit(v) => Ok(v.dtype().unwrap_or(DataType::Int)),
            Expr::Cmp(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::Between { .. }
            | Expr::IsNull { .. } => Ok(DataType::Bool),
            Expr::Arith(_, a, b) => {
                let ta = a.infer_type(input)?;
                let tb = b.infer_type(input)?;
                if ta == DataType::Double || tb == DataType::Double {
                    Ok(DataType::Double)
                } else {
                    Ok(DataType::Int)
                }
            }
            Expr::Neg(a) => a.infer_type(input),
            Expr::Func(f, args) => match f {
                Func::Dur => Ok(DataType::Int),
                Func::Abs => args
                    .first()
                    .map(|a| a.infer_type(input))
                    .unwrap_or(Ok(DataType::Int)),
                Func::Greatest | Func::Least | Func::Coalesce => args
                    .first()
                    .map(|a| a.infer_type(input))
                    .unwrap_or(Ok(DataType::Int)),
            },
        }
    }

    /// Render against an optional schema (column names instead of indices).
    pub fn display(&self, schema: Option<&Schema>) -> String {
        let col_name = |i: usize| -> String {
            match schema {
                Some(s) if i < s.len() => s.col(i).qualified_name(),
                _ => format!("#{i}"),
            }
        };
        self.render(&col_name)
    }

    fn render(&self, col_name: &dyn Fn(usize) -> String) -> String {
        match self {
            Expr::Col(i) => col_name(*i),
            Expr::Name(n) => n.clone(),
            Expr::Lit(v) => match v {
                Value::Str(s) => format!("'{s}'"),
                Value::Null => "NULL".to_string(),
                other => other.to_string(),
            },
            Expr::Cmp(op, a, b) => format!(
                "{} {} {}",
                a.render(col_name),
                op.symbol(),
                b.render(col_name)
            ),
            Expr::And(a, b) => format!("({} AND {})", a.render(col_name), b.render(col_name)),
            Expr::Or(a, b) => format!("({} OR {})", a.render(col_name), b.render(col_name)),
            Expr::Not(a) => format!("NOT ({})", a.render(col_name)),
            Expr::Neg(a) => format!("-({})", a.render(col_name)),
            Expr::Arith(op, a, b) => format!(
                "({} {} {})",
                a.render(col_name),
                op.symbol(),
                b.render(col_name)
            ),
            Expr::Func(f, args) => format!(
                "{}({})",
                f.name(),
                args.iter()
                    .map(|a| a.render(col_name))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "{} {}BETWEEN {} AND {}",
                expr.render(col_name),
                if *negated { "NOT " } else { "" },
                low.render(col_name),
                high.render(col_name)
            ),
            Expr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr.render(col_name),
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(None))
    }
}

/// Aggregate functions supported by [`crate::exec::HashAggregateExec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Result type given the argument type.
    pub fn result_type(&self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Double,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Int),
        }
    }
}

/// An aggregate call: function plus optional argument expression.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` only for `CountStar`.
    pub arg: Option<Expr>,
}

impl AggCall {
    pub fn count_star() -> Self {
        AggCall {
            func: AggFunc::CountStar,
            arg: None,
        }
    }

    pub fn new(func: AggFunc, arg: Expr) -> Self {
        AggCall {
            func,
            arg: Some(arg),
        }
    }
}

/// One sort criterion.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub desc: bool,
    pub nulls_first: bool,
}

impl SortKey {
    /// Ascending, NULLs first (matches `Value`'s total order).
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            desc: false,
            nulls_first: true,
        }
    }

    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            desc: true,
            nulls_first: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let e = col(0)
            .eq(lit(1i64))
            .and(col(1).lt(lit(2i64)).and(col(2).gt(lit(3i64))));
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn max_col_and_shift() {
        let e = col(1).add(col(4)).eq(lit(0i64));
        assert_eq!(e.max_col(), Some(4));
        let s = e.shift_cols(10);
        assert_eq!(s.max_col(), Some(14));
    }

    #[test]
    fn cols_all_checks_side() {
        let e = col(0).eq(col(3));
        assert!(!e.cols_all(&|i| i < 2));
        assert!(e.cols_all(&|i| i < 4));
    }

    #[test]
    fn display_with_schema() {
        use crate::schema::{Column, DataType, Schema};
        let s = Schema::new(vec![
            Column::qualified("r", "a", DataType::Int),
            Column::qualified("s", "b", DataType::Int),
        ]);
        let e = col(0).eq(col(1)).and(col(0).gt(lit(5i64)));
        assert_eq!(e.display(Some(&s)), "(r.a = s.b AND r.a > 5)");
    }

    #[test]
    fn infer_types() {
        use crate::schema::{Column, DataType, Schema};
        let s = Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("d", DataType::Double),
        ]);
        assert_eq!(col(0).add(col(0)).infer_type(&s).unwrap(), DataType::Int);
        assert_eq!(col(0).add(col(1)).infer_type(&s).unwrap(), DataType::Double);
        assert_eq!(col(0).eq(col(1)).infer_type(&s).unwrap(), DataType::Bool);
        assert!(col(7).infer_type(&s).is_err());
    }

    #[test]
    fn swapped_cmp() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }
}
