//! Civil-date helpers for day-granularity time points.
//!
//! The paper's `Incumben` dataset timestamps are "recorded at the
//! granularity of days". This module maps proleptic-Gregorian civil dates
//! to day numbers (days since 1970-01-01, negative before) so day-level
//! temporal relations can be built from and rendered as dates, using
//! Howard Hinnant's `days_from_civil` / `civil_from_days` algorithms.

use crate::error::{TemporalError, TemporalResult};
use crate::interval::{Interval, TimePoint};

/// A proleptic Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i64,
    /// 1–12.
    pub month: u8,
    /// 1–31 (validated against the month).
    pub day: u8,
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i64, month: u8, day: u8) -> TemporalResult<Date> {
        if !(1..=12).contains(&month) {
            return Err(TemporalError::InvalidInterval(format!(
                "month {month} out of range"
            )));
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(TemporalError::InvalidInterval(format!(
                "day {day} out of range for {year}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Days since 1970-01-01 (Hinnant, `days_from_civil`).
    pub fn to_day_number(&self) -> TimePoint {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (i64::from(self.month) + 9) % 12; // Mar=0 … Feb=11
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`Date::to_day_number`] (Hinnant, `civil_from_days`).
    pub fn from_day_number(z: TimePoint) -> Date {
        let z = z + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        Date {
            year: if m <= 2 { y + 1 } else { y },
            month: m,
            day: d,
        }
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> TemporalResult<Date> {
        let parts: Vec<&str> = s.split('-').collect();
        let err = || TemporalError::InvalidInterval(format!("cannot parse date '{s}'"));
        if parts.len() != 3 {
            return Err(err());
        }
        let year: i64 = parts[0].parse().map_err(|_| err())?;
        let month: u8 = parts[1].parse().map_err(|_| err())?;
        let day: u8 = parts[2].parse().map_err(|_| err())?;
        Date::new(year, month, day)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in a month.
pub fn days_in_month(year: i64, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// `[from, to)` as a day-granularity interval.
pub fn date_interval(from: Date, to: Date) -> TemporalResult<Interval> {
    Interval::new(from.to_day_number(), to.to_day_number())
}

/// Render a day-number time point as `YYYY-MM-DD` (for
/// [`crate::trel::TemporalRelation::to_table_with`]).
pub fn fmt_day(t: TimePoint) -> String {
    Date::from_day_number(t).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_known_days() {
        assert_eq!(Date::new(1970, 1, 1).unwrap().to_day_number(), 0);
        assert_eq!(Date::new(1970, 1, 2).unwrap().to_day_number(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().to_day_number(), -1);
        // The paper's conference dates: 2012-05-20 is day 15480.
        assert_eq!(Date::new(2012, 5, 20).unwrap().to_day_number(), 15480);
    }

    #[test]
    fn roundtrip_across_leap_boundaries() {
        for z in (-1_000_000..1_000_000).step_by(9973) {
            let d = Date::from_day_number(z);
            assert_eq!(d.to_day_number(), z, "{d}");
        }
        // Feb 29 on a leap year
        let d = Date::new(2012, 2, 29).unwrap();
        assert_eq!(Date::from_day_number(d.to_day_number()), d);
        assert!(Date::new(2013, 2, 29).is_err());
        assert!(Date::new(2000, 2, 29).is_ok()); // 400-year rule
        assert!(Date::new(1900, 2, 29).is_err()); // 100-year rule
    }

    #[test]
    fn validation_and_parsing() {
        assert!(Date::new(2020, 13, 1).is_err());
        assert!(Date::new(2020, 0, 1).is_err());
        assert!(Date::new(2020, 4, 31).is_err());
        assert_eq!(
            Date::parse("2012-05-20").unwrap(),
            Date::new(2012, 5, 20).unwrap()
        );
        assert!(Date::parse("2012/05/20").is_err());
        assert!(Date::parse("hello").is_err());
    }

    #[test]
    fn display_and_fmt_day() {
        let d = Date::new(2012, 5, 20).unwrap();
        assert_eq!(d.to_string(), "2012-05-20");
        assert_eq!(fmt_day(15480), "2012-05-20");
    }

    #[test]
    fn date_intervals() {
        let iv = date_interval(
            Date::new(2012, 1, 1).unwrap(),
            Date::new(2012, 6, 1).unwrap(),
        )
        .unwrap();
        assert_eq!(iv.duration(), 152); // Jan 31 + Feb 29 + Mar 31 + Apr 30 + May 31
        assert!(date_interval(
            Date::new(2012, 6, 1).unwrap(),
            Date::new(2012, 1, 1).unwrap(),
        )
        .is_err());
    }

    #[test]
    fn ordering_follows_chronology() {
        let a = Date::new(2011, 12, 31).unwrap();
        let b = Date::new(2012, 1, 1).unwrap();
        assert!(a < b);
        assert!(a.to_day_number() < b.to_day_number());
    }
}
