//! LIMIT: stop after `n` rows.

use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode, ExecutionState};
use crate::schema::Schema;
use crate::tuple::Row;

/// Emits at most `n` input rows.
pub struct LimitExec {
    input: BoxedExec,
    remaining: usize,
}

impl LimitExec {
    pub fn new(input: BoxedExec, n: usize) -> Self {
        LimitExec {
            input,
            remaining: n,
        }
    }
}

impl ExecNode for LimitExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next(state)? {
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int_rel;
    use crate::exec::{collect, ExecutionState, SeqScanExec};

    #[test]
    fn caps_output() {
        let scan = Box::new(SeqScanExec::new(int_rel("a", &[1, 2, 3]).into_shared()));
        let out = collect(
            Box::new(LimitExec::new(scan, 2)),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let scan = Box::new(SeqScanExec::new(int_rel("a", &[1]).into_shared()));
        let out = collect(
            Box::new(LimitExec::new(scan, 5)),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let scan = Box::new(SeqScanExec::new(int_rel("a", &[1]).into_shared()));
        let out = collect(
            Box::new(LimitExec::new(scan, 0)),
            &ExecutionState::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 0);
    }
}
