//! WAL-backed crash recovery end to end (ISSUE 8): committed work
//! survives a crash (simulated by leaking the `Database` so nothing is
//! flushed or checkpointed); a torn WAL tail — truncated at *every*
//! byte offset of the final records — recovers a prefix-consistent
//! state and never refuses to open; bit flips are detected and
//! truncated with a warning; missing storage files are a clear error;
//! `sync_mode` / `wal_checkpoint_pages` are settable through both
//! surfaces; and the rebuilt interval index + zone maps answer `AS OF`
//! timeslices identically to a brute-force oracle after recovery.

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_alignment::engine::storage::SyncMode;
use temporal_alignment::sql::Session;
use temporal_datasets::{ddisj, deq, drand};

/// A unique scratch directory for one test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("talign_recovery_tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Rows of a frame collect, as plain vectors.
fn collect_rows(db: &Database, table: &str) -> Vec<Row> {
    db.table(table)
        .unwrap()
        .collect()
        .unwrap()
        .rel()
        .rows()
        .to_vec()
}

/// An `(id, ts, te)` row matching the synthetic datasets' `r` schema.
fn row(id: i64, ts: i64, te: i64) -> Row {
    vec![Value::Int(id), Value::Int(ts), Value::Int(te)].into()
}

/// Crash the process image: leak the handle so neither the buffer pool
/// flush nor the `Drop` checkpoint runs — only what already reached the
/// heap files and the WAL survives, exactly like a `kill -9`.
fn crash(db: Database) {
    std::mem::forget(db);
}

/// Brute-force timeslice over the raw rows (trailing `ts`, `te`).
fn oracle_as_of(rows: &[Row], v: i64) -> Vec<Row> {
    rows.iter()
        .filter(|r| {
            let n = r.len();
            matches!((&r[n - 2], &r[n - 1]),
                (Value::Int(ts), Value::Int(te)) if *ts <= v && *te > v)
        })
        .cloned()
        .collect()
}

/// Execute `table AS OF v` and return the rows.
fn run_as_of(db: &Database, table: &str, v: i64) -> Vec<Row> {
    let plan = db.table(table).unwrap().as_of(v).into_plan().unwrap();
    let physical = db.physical(&plan).unwrap();
    let state = ExecutionState::new(db.config());
    physical.collect(&state).unwrap().rows().to_vec()
}

/// After recovery the pruned access paths (zone maps, interval index)
/// must answer timeslices identically to both the brute-force oracle
/// and the unpruned scan — i.e. the rebuilt index is consistent.
fn assert_pruning_consistent(db: &Database, table: &str, rows: &[Row], instants: &[i64]) {
    for &v in instants {
        let expected = oracle_as_of(rows, v);
        for (zm, ix) in [(true, true), (true, false), (false, true), (false, false)] {
            db.set("enable_zonemaps", zm).unwrap();
            db.set("enable_interval_index", ix).unwrap();
            let got = run_as_of(db, table, v);
            assert_eq!(
                got, expected,
                "{table} AS OF {v} drifted after recovery (zonemaps={zm}, index={ix})"
            );
        }
    }
    db.set("enable_zonemaps", true).unwrap();
    db.set("enable_interval_index", true).unwrap();
}

/// Committed inserts survive a crash: nothing was flushed or
/// checkpointed, so every row after the base registration exists only
/// in the WAL — reopen must replay them and rebuild the index.
#[test]
fn committed_inserts_survive_a_crash() {
    let dir = scratch("crash-basic");
    let (base, _) = ddisj(50);
    let mut expected = base.rows().to_vec();

    let db = Database::open(&dir).unwrap();
    db.register("r", &base).unwrap();
    for i in 0..40 {
        let r = row(1000 + i, 7 * i, 7 * i + 5);
        db.insert_rows("r", vec![r.clone()]).unwrap();
        expected.push(r);
    }
    crash(db);

    let db = Database::open(&dir).unwrap();
    assert_eq!(
        collect_rows(&db, "r"),
        expected,
        "recovery lost or reordered committed rows"
    );
    assert_pruning_consistent(&db, "r", &expected, &[0, 35, 140, 999, 100_000]);

    // A second crash-free reopen sees the checkpointed state unchanged
    // (recovery that did work checkpoints, so the WAL does not regrow).
    db.close().unwrap();
    let db = Database::open(&dir).unwrap();
    assert_eq!(collect_rows(&db, "r"), expected);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Parse the WAL's frame boundaries: byte offsets where each record
/// starts, after the 8-byte file header. Frame = `[len u32][crc u32]
/// [lsn u64][payload]`.
fn frame_starts(wal: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut pos = 8;
    while pos + 16 <= wal.len() {
        starts.push(pos);
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 16 + len;
    }
    assert_eq!(pos, wal.len(), "seed WAL must end on a frame boundary");
    starts
}

/// Copy a database directory byte for byte.
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The acceptance matrix for torn writes: a database whose WAL holds a
/// committed insert sequence, with the log truncated at **every** byte
/// offset spanning the last two records. Every truncation point must
/// (a) open without error and (b) recover the base table plus a prefix
/// of the insert sequence, with the prefix length non-decreasing in
/// the number of surviving bytes.
#[test]
fn torn_wal_tail_recovers_a_consistent_prefix_at_every_offset() {
    let seed_dir = scratch("torn-tail-seed");
    let (base, _) = ddisj(10);
    let base_rows = base.rows().to_vec();
    const INSERTS: i64 = 6;

    let db = Database::open(&seed_dir).unwrap();
    db.register("r", &base).unwrap();
    let mut inserted = Vec::new();
    for i in 0..INSERTS {
        let r = row(500 + i, 3 * i, 3 * i + 2);
        db.insert_rows("r", vec![r.clone()]).unwrap();
        inserted.push(r);
    }
    crash(db);

    let wal_path = seed_dir.join("wal.log");
    let wal = std::fs::read(&wal_path).unwrap();
    let starts = frame_starts(&wal);
    assert!(
        starts.len() >= 3,
        "expected TableUpsert + image + appends, got {} frames",
        starts.len()
    );
    // Cut everywhere inside the last two frames, plus the clean end.
    let first_cut = starts[starts.len() - 2];
    let mut last_prefix = 0usize;
    for cut in first_cut..=wal.len() {
        let case = scratch(&format!("torn-tail-{cut}"));
        copy_dir(&seed_dir, &case);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(case.join("wal.log"))
            .unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        // "Never refuse to open": a torn tail is truncated with a
        // warning, not reported as an error.
        let db = Database::open(&case)
            .unwrap_or_else(|e| panic!("cut at byte {cut} refused to open: {e}"));
        let rows = collect_rows(&db, "r");
        assert!(
            rows.len() >= base_rows.len(),
            "cut at {cut} lost base rows: {} < {}",
            rows.len(),
            base_rows.len()
        );
        let prefix = rows.len() - base_rows.len();
        assert!(
            prefix <= inserted.len(),
            "cut at {cut} invented rows: {prefix} > {}",
            inserted.len()
        );
        let mut expected = base_rows.clone();
        expected.extend_from_slice(&inserted[..prefix]);
        assert_eq!(
            rows, expected,
            "cut at {cut} is not a prefix of the committed sequence"
        );
        assert!(
            prefix >= last_prefix,
            "recovery went backwards at cut {cut}: {prefix} < {last_prefix}"
        );
        last_prefix = prefix;
        drop(db);
        std::fs::remove_dir_all(&case).unwrap();
    }
    assert_eq!(
        last_prefix,
        inserted.len(),
        "an untorn log must recover every committed insert"
    );
    std::fs::remove_dir_all(&seed_dir).unwrap();
}

/// A flipped bit mid-log fails the frame CRC: recovery truncates there
/// (keeping everything before) instead of refusing to open or replaying
/// garbage. A mangled file header starts a fresh log — the manifest
/// still opens the base table.
#[test]
fn corrupt_wal_is_truncated_never_fatal() {
    let seed_dir = scratch("flip-seed");
    let (base, _) = ddisj(10);
    let base_rows = base.rows().to_vec();

    let db = Database::open(&seed_dir).unwrap();
    db.register("r", &base).unwrap();
    for i in 0..4 {
        db.insert_rows("r", vec![row(900 + i, i, i + 1)]).unwrap();
    }
    crash(db);

    let wal_path = seed_dir.join("wal.log");
    let wal = std::fs::read(&wal_path).unwrap();
    let starts = frame_starts(&wal);

    // Flip a payload bit in the last frame: only that insert is lost.
    let flip_dir = scratch("flip-payload");
    copy_dir(&seed_dir, &flip_dir);
    let mut bytes = wal.clone();
    let off = starts[starts.len() - 1] + 16; // first payload byte
    bytes[off] ^= 0x40;
    std::fs::write(flip_dir.join("wal.log"), &bytes).unwrap();
    let db = Database::open(&flip_dir).unwrap();
    let rows = collect_rows(&db, "r");
    assert_eq!(
        rows.len(),
        base_rows.len() + 3,
        "a corrupt last record must truncate exactly there"
    );
    drop(db);
    std::fs::remove_dir_all(&flip_dir).unwrap();

    // Mangle the 8-byte header: nothing in the log can be trusted, so a
    // fresh log is started — but the manifest-registered table opens.
    let hdr_dir = scratch("flip-header");
    copy_dir(&seed_dir, &hdr_dir);
    let mut bytes = wal.clone();
    bytes[1] ^= 0xFF;
    std::fs::write(hdr_dir.join("wal.log"), &bytes).unwrap();
    let db = Database::open(&hdr_dir).unwrap();
    assert_eq!(
        collect_rows(&db, "r"),
        base_rows,
        "a mangled header must fall back to the persisted base state"
    );
    drop(db);
    std::fs::remove_dir_all(&hdr_dir).unwrap();
    std::fs::remove_dir_all(&seed_dir).unwrap();
}

/// A database directory missing a heap or index file the manifest
/// references is rejected with a clear error naming the file — not a
/// panic, not a silently empty table.
#[test]
fn missing_storage_files_are_a_clear_error() {
    let dir = scratch("missing-files");
    {
        let db = Database::open(&dir).unwrap();
        let (r, _) = ddisj(200);
        db.register("r", &r).unwrap();
        db.close().unwrap();
    }

    // Missing index file.
    let tidx = dir.join("r.tidx");
    let saved = std::fs::read(&tidx).unwrap();
    std::fs::remove_file(&tidx).unwrap();
    let err = Database::open(&dir).expect_err("open must reject a missing .tidx");
    let msg = err.to_string();
    assert!(
        msg.contains("missing storage file") && msg.contains("r.tidx"),
        "unhelpful error: {msg}"
    );
    std::fs::write(&tidx, saved).unwrap();

    // Missing heap file.
    std::fs::remove_file(dir.join("r.heap")).unwrap();
    let err = Database::open(&dir).expect_err("open must reject a missing heap");
    let msg = err.to_string();
    assert!(
        msg.contains("missing storage file") && msg.contains("r.heap"),
        "unhelpful error: {msg}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `SET sync_mode` round-trips through the SQL surface (including the
/// `off` spelling, which lexes as a boolean) and the frame surface, and
/// rejects junk with a helpful message.
#[test]
fn sync_mode_is_settable_through_both_surfaces() {
    let dir = scratch("sync-mode");
    let db = Database::open(&dir).unwrap();
    assert!(db.is_durable());
    assert!(db.sync_mode().is_some());

    let mut session = Session::with_database(db.clone());
    for (stmt, want) in [
        ("SET sync_mode = always", SyncMode::Always),
        ("SET sync_mode = commit", SyncMode::Commit),
        ("SET sync_mode = off", SyncMode::Off),
    ] {
        session.execute(stmt).unwrap();
        assert_eq!(db.sync_mode(), Some(want), "{stmt}");
    }
    db.set_str("sync_mode", "always").unwrap();
    assert_eq!(db.sync_mode(), Some(SyncMode::Always));

    let err = session.execute("SET sync_mode = bananas").unwrap_err();
    assert!(
        err.to_string().contains("off, commit or always"),
        "unhelpful error: {err}"
    );
    let err = db.set_str("no_such_setting", "x").unwrap_err();
    assert!(err.to_string().contains("no_such_setting"));

    // In-memory databases accept the setting as an inert no-op and
    // report no mode at all.
    let mem = Database::new();
    assert_eq!(mem.sync_mode(), None);
    mem.set_str("sync_mode", "always").unwrap();
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoints bound the log: with `wal_checkpoint_pages = 1` a long
/// insert stream keeps `wal.log` small, and an explicit checkpoint
/// truncates it to a single record.
#[test]
fn checkpoints_bound_the_wal() {
    let dir = scratch("checkpoint-bound");
    let db = Database::open(&dir).unwrap();
    let (base, _) = ddisj(10);
    db.register("r", &base).unwrap();
    db.set_int("wal_checkpoint_pages", 1).unwrap();

    let wal_path = dir.join("wal.log");
    let mut peak = 0u64;
    for i in 0..600 {
        db.insert_rows("r", vec![row(i, i, i + 1)]).unwrap();
        peak = peak.max(std::fs::metadata(&wal_path).unwrap().len());
    }
    // 600 single-row inserts write well over two pages of log traffic;
    // the auto-checkpoint must have recycled it long before that.
    assert!(
        peak < 4 * 8192,
        "wal.log grew to {peak} bytes despite wal_checkpoint_pages = 1"
    );

    db.checkpoint().unwrap();
    let after = std::fs::metadata(&wal_path).unwrap().len();
    assert!(
        after < 64,
        "an explicit checkpoint must leave a near-empty log, got {after} bytes"
    );

    // And the checkpointed state is complete on reopen.
    let rows = collect_rows(&db, "r");
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(collect_rows(&db, "r"), rows);

    let err = db.set_int("wal_checkpoint_pages", 0).unwrap_err();
    assert!(err.to_string().contains("positive"), "{err}");
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// DDL is redo-logged too: a table created (or dropped) right before a
/// crash exists (or stays gone) after reopen.
#[test]
fn ddl_survives_a_crash() {
    let dir = scratch("ddl-crash");
    let (r, s) = ddisj(30);

    let db = Database::open(&dir).unwrap();
    db.register("keep", &r).unwrap();
    db.register("goner", &s).unwrap();
    assert!(db.drop_table("goner").unwrap());
    crash(db);

    let db = Database::open(&dir).unwrap();
    assert_eq!(db.list_tables(), vec!["keep".to_string()]);
    assert_eq!(collect_rows(&db, "keep"), r.rows().to_vec());
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash recovery on the paper's synthetic datasets: register a
    /// base relation, append committed rows, crash, reopen — the
    /// recovered table equals base + inserts exactly, and the rebuilt
    /// interval index / zone maps answer timeslices like the oracle.
    #[test]
    fn crash_recovery_round_trip_on_synthetic_datasets(
        n in 2usize..60,
        k in 1usize..30,
        seed in 0u64..1000,
    ) {
        for (name, rel) in [
            ("ddisj", ddisj(n).0),
            ("deq", deq(n).0),
            ("drand", drand(n, seed).0),
        ] {
            let dir = scratch(&format!("proptest-{name}"));
            let mut expected = rel.rows().to_vec();
            let db = Database::open(&dir).unwrap();
            db.register("t", &rel).unwrap();
            for i in 0..k as i64 {
                let r = row(10_000 + i, 11 * i, 11 * i + seed as i64 % 7 + 1);
                db.insert_rows("t", vec![r.clone()]).unwrap();
                expected.push(r);
            }
            crash(db);

            let db = Database::open(&dir).unwrap();
            prop_assert_eq!(
                collect_rows(&db, "t"), expected.clone(),
                "{} (n={}, k={}, seed={}) lost committed rows", name, n, k, seed
            );
            let probe = (seed % (25 * n as u64)) as i64;
            assert_pruning_consistent(&db, "t", &expected, &[0, probe, 50, 11 * k as i64]);
            drop(db);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
