//! The paper's running example (Example 1, Figs. 1–7): a hotel with
//! seasonal price categories and reservations.
//!
//! Reproduces:
//! * query Q1 = R ⟕ᵀ_{Min ≤ DUR(R.T) ≤ Max} P (Fig. 1b) — a temporal left
//!   outer join whose θ references the *original* timestamp of R, i.e.
//!   extended snapshot reducibility via timestamp propagation;
//! * the normalization N_{}(R; R) (Fig. 3);
//! * the alignment of P with respect to U(R) (Fig. 4);
//! * query Q2 = ϑᵀ_{AVG(DUR(R.T))}(R) (Fig. 7) — temporal aggregation.
//!
//! Run with: `cargo run --example hotel_reservations`

use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_core::interval::month::{fmt as mfmt, ym};

fn reservations() -> TemporalRelation {
    // R: guest name N, valid-time T.
    TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )
    .expect("valid fixture")
}

fn prices() -> TemporalRelation {
    // P: daily price A, Min/Max stay duration for the category, valid T.
    let row = |a: i64, min: i64, max: i64, from: (i64, i64), to: (i64, i64)| {
        (
            vec![Value::Int(a), Value::Int(min), Value::Int(max)],
            Interval::of(ym(from.0, from.1), ym(to.0, to.1)),
        )
    };
    TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            row(50, 1, 2, (2012, 1), (2012, 6)),  // s1: short term, winter
            row(40, 3, 7, (2012, 1), (2012, 6)),  // s2: long term, winter
            row(30, 8, 12, (2012, 1), (2013, 1)), // s3: permanent
            row(50, 1, 2, (2012, 10), (2013, 1)), // s4
            row(40, 3, 7, (2012, 10), (2013, 1)), // s5
        ],
    )
    .expect("valid fixture")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = reservations();
    let p = prices();
    println!("R (reservations):\n{}", r.to_table_with(mfmt));
    println!("P (prices):\n{}", p.to_table_with(mfmt));

    let alg = TemporalAlgebra::default();

    // ---- Q1 (Fig. 1b) ----------------------------------------------------
    // The join predicate references R.T, so we propagate R's timestamp
    // first (extended snapshot reducibility): U(R) has data columns
    // (n, us, ue).
    let ur = extend(&r)?;
    println!("U(R) (timestamps propagated):\n{}", ur.to_table_with(mfmt));

    // θ: Min ≤ DUR(us, ue) ≤ Max over U(R) ++ P rows:
    // U(R) = (n, us, ue, ts, te), P = (a, min, max, ts, te).
    let dur = Expr::Func(Func::Dur, vec![col(1), col(2)]);
    let theta = dur.between(col(6), col(7));

    let q1_with_u = alg.left_outer_join(&ur, &p, Some(theta))?;
    // Drop the propagated timestamps (Def. 4's final projection):
    // data columns of the join result are (n, us, ue, a, min, max).
    let q1 = q1_with_u.project_data(&[0, 3, 4, 5])?;
    println!(
        "Q1 = R ⟕ᵀ(Min ≤ DUR(R.T) ≤ Max) P   (Fig. 1b):\n{}",
        q1.sorted().to_table_with(mfmt)
    );

    // The two ω tuples z3/z4 stay separate (change preservation): the
    // change at 2012/8, where one reservation of Ann ends and another
    // starts, is preserved.
    let omega_rows = q1.iter().filter(|(d, _)| d[1].is_null()).count();
    assert_eq!(omega_rows, 2);

    // ---- Fig. 3: normalization N_{}(R; R) ---------------------------------
    let n = alg.normalize(&r, &r, &[])?;
    println!(
        "N_{{}}(R; R)   (Fig. 3):\n{}",
        n.sorted().to_table_with(mfmt)
    );

    // ---- Fig. 4: alignment of P with respect to U(R) ----------------------
    // θ ≡ Min ≤ DUR(U) ≤ Max over P ++ U(R) rows:
    // P = (a, min, max, ts, te), U(R) = (n, us, ue, ts, te).
    let dur_u = Expr::Func(Func::Dur, vec![col(6), col(7)]);
    let theta_pu = dur_u.between(col(1), col(2));
    let aligned_p = alg.align(&p, &ur, Some(theta_pu))?;
    println!(
        "P Φ_θ U(R)   (Fig. 4):\n{}",
        aligned_p.sorted().to_table_with(mfmt)
    );

    // ---- Q2 (Fig. 7): temporal aggregation --------------------------------
    // AVG over the duration of the *original* reservation intervals, so it
    // operates on U(R); grouping attributes B = {} (a single group per
    // normalized fragment).
    let avg_dur = AggCall::new(AggFunc::Avg, Expr::Func(Func::Dur, vec![col(1), col(2)]));
    let q2 = alg.aggregation(&ur, &[], vec![(avg_dur, "avg_dur".to_string())])?;
    println!(
        "Q2 = ϑᵀ AVG(DUR(R.T)) (R)   (Fig. 7):\n{}",
        q2.sorted().to_table_with(mfmt)
    );

    Ok(())
}
