//! The wire protocol spoken between `tsql --serve` and its clients.
//!
//! The protocol is a deliberately simple, line-oriented exchange — the
//! serving layer is infrastructure for the paper's algebra, not a study
//! of wire formats — chosen so that `nc`/`socat` work as ad-hoc clients:
//!
//! * **Request**: one SQL statement per line (a trailing `;` is
//!   accepted and stripped). Blank lines are ignored; `\q` closes the
//!   connection.
//! * **Response**: exactly one of
//!   * `OK` — statement succeeded with no result (SET, CREATE TABLE, …),
//!   * `AFFECTED <n>` — statement appended/changed `n` rows (INSERT, COPY),
//!   * `ERR <message>` — failure; `<message>` is escaped onto one line,
//!   * `ROWS <nrows> <ncols>` — followed by one header line of
//!     tab-separated column names, `<nrows>` tab-separated data lines,
//!     and a trailing `END` line.
//!
//! Fields escape `\` as `\\`, tab as `\t`, newline as `\n`, and carriage
//! return as `\r`; SQL `NULL` is the bare field `\N` (as in PostgreSQL's
//! `COPY` text format). EXPLAIN output is returned as a one-row, one-column
//! (`plan`) result set with the newlines of the rendered plan escaped.

use std::io::{self, BufRead, Write};

use temporal_engine::prelude::{Relation, Value};
use temporal_sql::SqlOutput;

/// Escape one field for the wire: `\\`, `\t`, `\n`, `\r`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Invert [`escape`]. Unknown escapes keep the escaped character; a
/// trailing lone backslash is kept literally.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Serialize one value as a wire field (`\N` for NULL).
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "\\N".to_string(),
        Value::Str(s) => escape(s),
        other => escape(&other.to_string()),
    }
}

/// Decode one wire field (`\N` → `None`).
pub fn decode_field(field: &str) -> Option<String> {
    if field == "\\N" {
        None
    } else {
        Some(unescape(field))
    }
}

/// Write the `ROWS` framing for a result relation.
fn write_relation<W: Write>(w: &mut W, rel: &Relation) -> io::Result<()> {
    writeln!(w, "ROWS {} {}", rel.len(), rel.schema().len())?;
    let header: Vec<String> = rel.schema().names().into_iter().map(escape).collect();
    writeln!(w, "{}", header.join("\t"))?;
    for row in rel.iter() {
        let fields: Vec<String> = row.values().iter().map(encode_value).collect();
        writeln!(w, "{}", fields.join("\t"))?;
    }
    writeln!(w, "END")
}

/// Serialize one statement outcome.
pub fn write_output<W: Write>(w: &mut W, out: &SqlOutput) -> io::Result<()> {
    match out {
        SqlOutput::Ok => writeln!(w, "OK"),
        SqlOutput::Affected(n) => writeln!(w, "AFFECTED {n}"),
        SqlOutput::Rows(rel) => write_relation(w, rel),
        SqlOutput::Explain(plan) => {
            writeln!(w, "ROWS 1 1")?;
            writeln!(w, "plan")?;
            writeln!(w, "{}", escape(plan))?;
            writeln!(w, "END")
        }
    }
}

/// Serialize a failure.
pub fn write_error<W: Write>(w: &mut W, msg: &str) -> io::Result<()> {
    writeln!(w, "ERR {}", escape(msg))
}

/// A parsed server response (the client side of [`write_output`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK`
    Ok,
    /// `AFFECTED <n>`
    Affected(u64),
    /// `ERR <message>` (unescaped)
    Error(String),
    /// `ROWS …` block; `None` cells are SQL NULLs.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Option<String>>>,
    },
}

impl Response {
    /// Render for an interactive client: a plain aligned table for rows,
    /// the bare status otherwise.
    pub fn render(&self) -> String {
        match self {
            Response::Ok => "OK".to_string(),
            Response::Affected(n) => format!("AFFECTED {n}"),
            Response::Error(msg) => format!("error: {msg}"),
            Response::Rows { columns, rows } => {
                let mut out = String::new();
                out.push_str(&columns.join("\t"));
                for row in rows {
                    out.push('\n');
                    let line: Vec<&str> =
                        row.iter().map(|c| c.as_deref().unwrap_or("NULL")).collect();
                    out.push_str(&line.join("\t"));
                }
                out.push_str(&format!("\n({} rows)", rows.len()));
                out
            }
        }
    }
}

fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Read one full response from the server.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let status = read_line(r)?;
    if status == "OK" {
        return Ok(Response::Ok);
    }
    if let Some(rest) = status.strip_prefix("AFFECTED ") {
        let n = rest.trim().parse::<u64>().map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad count: {status}"))
        })?;
        return Ok(Response::Affected(n));
    }
    if let Some(rest) = status.strip_prefix("ERR ") {
        return Ok(Response::Error(unescape(rest)));
    }
    if status == "ERR" {
        return Ok(Response::Error(String::new()));
    }
    let Some(rest) = status.strip_prefix("ROWS ") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response line: {status}"),
        ));
    };
    let mut parts = rest.split_whitespace();
    let (nrows, ncols) = match (
        parts.next().and_then(|p| p.parse::<usize>().ok()),
        parts.next().and_then(|p| p.parse::<usize>().ok()),
    ) {
        (Some(r), Some(c)) => (r, c),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad ROWS header: {status}"),
            ))
        }
    };
    let header = read_line(r)?;
    let columns: Vec<String> = if ncols == 0 {
        Vec::new()
    } else {
        header.split('\t').map(unescape).collect()
    };
    if columns.len() != ncols {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("header has {} columns, expected {ncols}", columns.len()),
        ));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let line = read_line(r)?;
        let row: Vec<Option<String>> = line.split('\t').map(decode_field).collect();
        if row.len() != ncols {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row has {} fields, expected {ncols}", row.len()),
            ));
        }
        rows.push(row);
    }
    let end = read_line(r)?;
    if end != "END" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("missing END terminator, got: {end}"),
        ));
    }
    Ok(Response::Rows { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_engine::prelude::*;

    #[test]
    fn escape_roundtrips() {
        for s in ["", "plain", "a\tb", "line\nbreak", "back\\slash", "\\N"] {
            assert_eq!(unescape(&escape(s)), s, "roundtrip of {s:?}");
        }
        // The escaped form of the literal string "\N" is not the NULL
        // sentinel: the backslash doubles.
        assert_eq!(escape("\\N"), "\\\\N");
        assert_eq!(decode_field("\\N"), None);
        assert_eq!(decode_field("\\\\N"), Some("\\N".to_string()));
    }

    #[test]
    fn rows_roundtrip_through_the_wire() {
        let rel = Relation::new(
            Schema::new(vec![
                Column::new("name", DataType::Str),
                Column::new("n", DataType::Int),
            ]),
            vec![
                Row::new(vec![Value::str("ann\tor\nnot"), Value::Int(-3)]),
                Row::new(vec![Value::Null, Value::Int(7)]),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_output(&mut buf, &SqlOutput::Rows(rel)).unwrap();
        let resp = read_response(&mut buf.as_slice()).unwrap();
        match resp {
            Response::Rows { columns, rows } => {
                assert_eq!(columns, vec!["name", "n"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0].as_deref(), Some("ann\tor\nnot"));
                assert_eq!(rows[0][1].as_deref(), Some("-3"));
                assert_eq!(rows[1][0], None);
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn statuses_roundtrip() {
        let mut buf = Vec::new();
        write_output(&mut buf, &SqlOutput::Ok).unwrap();
        write_output(&mut buf, &SqlOutput::Affected(42)).unwrap();
        write_error(&mut buf, "boom:\nmulti line").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_response(&mut r).unwrap(), Response::Ok);
        assert_eq!(read_response(&mut r).unwrap(), Response::Affected(42));
        assert_eq!(
            read_response(&mut r).unwrap(),
            Response::Error("boom:\nmulti line".to_string())
        );
    }

    #[test]
    fn explain_is_a_one_row_result() {
        let mut buf = Vec::new();
        write_output(&mut buf, &SqlOutput::Explain("Scan r\n  Filter".into())).unwrap();
        match read_response(&mut buf.as_slice()).unwrap() {
            Response::Rows { columns, rows } => {
                assert_eq!(columns, vec!["plan"]);
                assert_eq!(rows[0][0].as_deref(), Some("Scan r\n  Filter"));
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }
}
