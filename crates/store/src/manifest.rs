//! The database manifest: the small catalog-metadata file mapping table
//! names to heap files and their (opaque) schema descriptions.
//!
//! A persisted database directory contains one `manifest.tsv` plus one
//! `<table>.heap` file per table. The manifest is a line-oriented text
//! file — trivially inspectable, no external dependencies:
//!
//! ```text
//! # temporal-store manifest v1
//! staff <TAB> staff.heap <TAB> 1f00dcafe <TAB> 3 <TAB> person:str,team:str,ts:int,te:int
//! ```
//!
//! (tab-separated: name, heap file, schema fingerprint in hex, row count,
//! schema string, and — when the table has a persistent interval index —
//! a sixth field naming the index file). The schema string is opaque to
//! this crate — the engine layer defines and parses it. Saves are atomic
//! (temp file + rename). Five-field lines from pre-index manifests still
//! load: the index is simply absent.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::error::{StoreError, StoreResult};

/// Manifest file name inside a database directory.
pub const MANIFEST_FILE: &str = "manifest.tsv";

const HEADER: &str = "# temporal-store manifest v1";

/// Per-table metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Heap file name, relative to the database directory.
    pub file: String,
    /// Schema fingerprint (must match every page header of the heap).
    pub fingerprint: u64,
    /// Row count at last save (a cached statistic, re-derived on open).
    pub rows: u64,
    /// Schema description, opaque at this layer.
    pub schema: String,
    /// Interval-index file name (relative to the database directory),
    /// if the table has a persistent interval index.
    pub index: Option<String>,
}

/// The table-name → [`TableMeta`] map of one database directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    tables: BTreeMap<String, TableMeta>,
    /// Snapshot epoch: bumped by every committed write batch and saved
    /// with the manifest, so a reopened database resumes its version
    /// counter instead of restarting at zero. Serialized as a
    /// `# epoch <n>` comment line — pre-epoch loaders skip it, and a
    /// manifest without one loads as epoch 0.
    epoch: u64,
}

impl Manifest {
    /// The manifest path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Load the manifest of `dir`; a missing file is an empty manifest.
    pub fn load(dir: &Path) -> StoreResult<Manifest> {
        let path = Self::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Manifest::default());
            }
            Err(e) => return Err(e.into()),
        };
        let mut tables = BTreeMap::new();
        let mut epoch = 0u64;
        for (i, line) in text.lines().enumerate() {
            if line.starts_with('#') || line.trim().is_empty() {
                if let Some(rest) = line.strip_prefix("# epoch ") {
                    epoch = rest.trim().parse::<u64>().map_err(|_| {
                        StoreError::Corrupt(format!("manifest line {}: bad epoch", i + 1))
                    })?;
                }
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 5 && fields.len() != 6 {
                return Err(StoreError::Corrupt(format!(
                    "manifest line {}: expected 5 or 6 tab-separated fields, got {}",
                    i + 1,
                    fields.len()
                )));
            }
            let fingerprint = u64::from_str_radix(fields[2], 16).map_err(|_| {
                StoreError::Corrupt(format!("manifest line {}: bad fingerprint", i + 1))
            })?;
            let rows = fields[3].parse::<u64>().map_err(|_| {
                StoreError::Corrupt(format!("manifest line {}: bad row count", i + 1))
            })?;
            tables.insert(
                fields[0].to_string(),
                TableMeta {
                    file: fields[1].to_string(),
                    fingerprint,
                    rows,
                    schema: fields[4].to_string(),
                    index: fields.get(5).map(|s| s.to_string()),
                },
            );
        }
        Ok(Manifest { tables, epoch })
    }

    /// Atomically save the manifest into `dir` (temp file + rename).
    pub fn save(&self, dir: &Path) -> StoreResult<()> {
        if crate::failpoints::power_cut() {
            return Err(crate::failpoints::power_cut_error());
        }
        std::fs::create_dir_all(dir)?;
        let mut out = String::from(HEADER);
        out.push('\n');
        out.push_str(&format!("# epoch {}\n", self.epoch));
        for (name, meta) in &self.tables {
            let index = meta.index.as_deref().unwrap_or("");
            for field in [
                name.as_str(),
                meta.file.as_str(),
                meta.schema.as_str(),
                index,
            ] {
                if field.contains('\t') || field.contains('\n') {
                    return Err(StoreError::Corrupt(format!(
                        "manifest field may not contain tabs or newlines: {field:?}"
                    )));
                }
            }
            out.push_str(&format!(
                "{name}\t{}\t{:x}\t{}\t{}",
                meta.file, meta.fingerprint, meta.rows, meta.schema
            ));
            if let Some(index) = &meta.index {
                out.push('\t');
                out.push_str(index);
            }
            out.push('\n');
        }
        let tmp = dir.join(format!(".{MANIFEST_FILE}.tmp"));
        match crate::failpoints::hit("manifest::save") {
            Some(crate::failpoints::Action::Crash) => {
                #[cfg(feature = "failpoints")]
                crate::failpoints::trip_power_cut();
                return Err(crate::failpoints::power_cut_error());
            }
            Some(crate::failpoints::Action::Torn { keep }) => {
                // Tear the *temp* file and stop before the rename: the
                // previous manifest must survive untouched.
                let keep = keep.min(out.len());
                std::fs::write(&tmp, &out.as_bytes()[..keep])?;
                #[cfg(feature = "failpoints")]
                crate::failpoints::trip_power_cut();
                return Err(crate::failpoints::power_cut_error());
            }
            Some(crate::failpoints::Action::FlipBit { offset }) => {
                let mut bytes = out.into_bytes();
                let len = bytes.len();
                bytes[offset % len] ^= 1;
                out = String::from_utf8_lossy(&bytes).into_owned();
            }
            None => {}
        }
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, Self::path_in(dir))?;
        Ok(())
    }

    /// Check that every file the manifest references exists in `dir`,
    /// returning a [`StoreError::Missing`] naming the first absent heap
    /// or index file. Run at open time: failing fast with a clear error
    /// beats a confusing mid-query I/O failure from a half-copied
    /// database directory.
    pub fn verify_files(&self, dir: &Path) -> StoreResult<()> {
        for (name, meta) in &self.tables {
            let heap = dir.join(&meta.file);
            if !heap.is_file() {
                return Err(StoreError::Missing(format!(
                    "table {name:?}: heap file {} referenced by the manifest does not exist",
                    heap.display()
                )));
            }
            if let Some(index) = &meta.index {
                let index = dir.join(index);
                if !index.is_file() {
                    return Err(StoreError::Missing(format!(
                        "table {name:?}: index file {} referenced by the manifest does not exist",
                        index.display()
                    )));
                }
            }
        }
        Ok(())
    }

    /// The persisted snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set the snapshot epoch recorded by the next save.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Metadata of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    /// Insert or replace an entry.
    pub fn insert(&mut self, name: impl Into<String>, meta: TableMeta) {
        self.tables.insert(name.into(), meta);
    }

    /// Remove an entry, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<TableMeta> {
        self.tables.remove(name)
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TableMeta)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the manifest empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("talign_store_manifest_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(file: &str) -> TableMeta {
        TableMeta {
            file: file.to_string(),
            fingerprint: 0xdead_beef,
            rows: 12,
            schema: "a:int,ts:int,te:int".to_string(),
            index: None,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut m = Manifest::default();
        m.insert("r", meta("r.heap"));
        m.insert("staff", meta("staff.heap"));
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.get("r").unwrap().rows, 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_field_roundtrips_and_old_lines_still_load() {
        let dir = tmpdir("index_field");
        let mut m = Manifest::default();
        m.insert("plain", meta("plain.heap"));
        let mut with_index = meta("r.heap");
        with_index.index = Some("r.tidx".to_string());
        m.insert("r", with_index);
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.get("r").unwrap().index.as_deref(), Some("r.tidx"));
        assert_eq!(back.get("plain").unwrap().index, None);
        // A hand-written five-field (pre-index) line loads with no index.
        std::fs::write(
            Manifest::path_in(&dir),
            "old\told.heap\tabc\t7\ta:int,ts:int,te:int\n",
        )
        .unwrap();
        let old = Manifest::load(&dir).unwrap();
        assert_eq!(old.get("old").unwrap().index, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_roundtrips_and_defaults_to_zero() {
        let dir = tmpdir("epoch");
        let mut m = Manifest::default();
        m.insert("r", meta("r.heap"));
        assert_eq!(m.epoch(), 0);
        m.set_epoch(41);
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back.epoch(), 41);
        assert_eq!(back, m);
        // A pre-epoch manifest (no comment line) loads as epoch 0.
        std::fs::write(
            Manifest::path_in(&dir),
            "old\told.heap\tabc\t7\ta:int,ts:int,te:int\n",
        )
        .unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().epoch(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_empty() {
        let dir = tmpdir("missing");
        assert!(Manifest::load(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        let dir = tmpdir("corrupt");
        std::fs::write(Manifest::path_in(&dir), "r\tonly-two-fields\n").unwrap();
        assert!(matches!(Manifest::load(&dir), Err(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tabs_in_fields_refuse_to_save() {
        let dir = tmpdir("tabs");
        let mut m = Manifest::default();
        m.insert("bad\tname", meta("f.heap"));
        assert!(m.save(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_files_names_the_missing_file() {
        let dir = tmpdir("verify");
        let mut m = Manifest::default();
        let mut r = meta("r.heap");
        r.index = Some("r.tidx".to_string());
        m.insert("r", r);
        // Nothing on disk yet: the heap is reported first.
        let err = m.verify_files(&dir).unwrap_err();
        assert!(matches!(&err, StoreError::Missing(msg) if msg.contains("r.heap")));
        std::fs::write(dir.join("r.heap"), b"").unwrap();
        let err = m.verify_files(&dir).unwrap_err();
        assert!(matches!(&err, StoreError::Missing(msg) if msg.contains("r.tidx")));
        std::fs::write(dir.join("r.tidx"), b"").unwrap();
        m.verify_files(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_and_iter() {
        let mut m = Manifest::default();
        m.insert("b", meta("b.heap"));
        m.insert("a", meta("a.heap"));
        let names: Vec<&String> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(m.remove("a").is_some());
        assert!(m.remove("a").is_none());
        assert_eq!(m.len(), 1);
    }
}
