//! Smoke test keeping every file in `examples/` executable: each one is run
//! through `cargo run --example` and must exit 0. `cargo test` has already
//! type-checked the examples by the time this runs, so the subprocess cost
//! is one incremental link per example.

use std::path::Path;
use std::process::Command;

/// The checked-in examples. Listing them explicitly (rather than globbing
/// `examples/`) makes a missing or renamed example fail loudly here.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "employee_history",
    "hotel_reservations",
    "lineage_audit",
    "calendar_dates",
    "sql_interface",
];

#[test]
fn all_examples_run_cleanly() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());

    let listed: std::collections::BTreeSet<_> = EXAMPLES.iter().map(|e| e.to_string()).collect();
    let on_disk: std::collections::BTreeSet<_> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension()? == "rs").then(|| path.file_stem()?.to_str().map(str::to_string))?
        })
        .collect();
    assert_eq!(
        listed, on_disk,
        "EXAMPLES list out of sync with the examples/ directory"
    );

    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
