//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a source-compatible shim covering the API subset its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::finish`], [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it takes `sample_size`
//! wall-clock samples of one iteration each (after one warm-up) and prints
//! `group/id: median … (min … max …)` per benchmark — enough to eyeball the
//! figure-level trends the paper reproduction cares about. Honors the
//! standard harness's `--bench` / `--test` CLI flags so `cargo bench` and
//! `cargo test --benches` both work; any other positional argument is
//! treated as a substring filter on `group/id` names.
//!
//! To use the real crate instead, point the `criterion` entry in the root
//! `[workspace.dependencies]` at a registry version.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each registered bench function.
pub struct Criterion {
    filter: Option<String>,
    /// When true (under `cargo test --benches`) run one iteration per
    /// benchmark and skip timing entirely.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {
                    // Ignore unknown criterion flags; consume a value only
                    // for flags known to take one, so a boolean flag never
                    // swallows the benchmark name filter after it.
                    const VALUE_FLAGS: &[&str] = &[
                        "--sample-size",
                        "--warm-up-time",
                        "--measurement-time",
                        "--save-baseline",
                        "--baseline",
                        "--load-baseline",
                        "--color",
                        "--output-format",
                    ];
                    if !a.contains('=') && VALUE_FLAGS.contains(&a) {
                        let _ = args.next();
                    }
                }
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for source compatibility; the shim's sampling is bounded by
    /// [`Self::sample_size`] alone, not wall-clock time.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; the shim takes one warm-up sample
    /// regardless.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.0);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                samples: Vec::new(),
                iters: 1,
            };
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size + 1),
            iters: self.sample_size + 1,
        };
        f(&mut b);
        // Drop the warm-up sample.
        let mut samples = b.samples;
        if samples.len() > 1 {
            samples.remove(0);
        }
        samples.sort();
        if samples.is_empty() {
            println!("{full}: no samples (Bencher::iter never called)");
            return;
        }
        let median = samples[samples.len() / 2];
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{full}: median {} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Run `routine` once per configured sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId(s.into())
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0usize;
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("count", 1), &2u64, |b, &two| {
            b.iter(|| {
                calls += 1;
                two * 2
            })
        });
        group.finish();
        // 3 samples + 1 warm-up.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            test_mode: false,
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("other", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }
}
