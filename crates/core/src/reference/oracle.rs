//! Point-wise oracle evaluation (see module docs of [`crate::reference`]).

use std::collections::{BTreeMap, HashSet};

use temporal_engine::exec::aggregate_rows;
use temporal_engine::prelude::*;

use crate::error::TemporalResult;
use crate::interval::{Interval, TimePoint};
use crate::semantics::lineage::{lineage, Lineage};
use crate::semantics::op::TemporalOp;
use crate::trel::TemporalRelation;

/// Evaluate the **nontemporal** counterpart of `op` on the snapshots of
/// `args` at time `t`, returning the set of result *data* rows.
///
/// θ conditions reference full argument rows, so live rows keep their
/// ts/te columns during evaluation and are projected to data columns at
/// the end.
///
/// One deliberate deviation from the literal definitions: a *global*
/// aggregation (empty grouping) over an empty snapshot yields no row
/// (instead of the identity row a nontemporal aggregate would produce),
/// because a temporal relation can only represent results over finitely
/// many intervals. The reduction rules behave identically.
pub fn snapshot_eval(
    op: &TemporalOp,
    args: &[&TemporalRelation],
    t: TimePoint,
) -> TemporalResult<Vec<Row>> {
    let live = |r: &TemporalRelation| -> Vec<Row> {
        r.rows()
            .iter()
            .filter(|row| r.interval_of(row).contains_point(t))
            .cloned()
            .collect()
    };
    let dedup = |rows: Vec<Row>| -> Vec<Row> {
        let mut seen = HashSet::new();
        rows.into_iter()
            .filter(|r| seen.insert(r.clone()))
            .collect()
    };

    let out: Vec<Row> = match op {
        TemporalOp::Selection { predicate } => {
            let r = args[0];
            let mut rows = Vec::new();
            for row in live(r) {
                if predicate.eval_pred(row.values())? {
                    rows.push(Row::new(r.data_of(&row).to_vec()));
                }
            }
            dedup(rows)
        }
        TemporalOp::Projection { attrs } => {
            let r = args[0];
            dedup(live(r).into_iter().map(|row| row.project(attrs)).collect())
        }
        TemporalOp::Aggregation { group, aggs } => {
            let r = args[0];
            let rows = live(r);
            if rows.is_empty() {
                Vec::new()
            } else {
                let group_exprs: Vec<Expr> = group.iter().map(|&i| col(i)).collect();
                let calls: Vec<AggCall> = aggs.iter().map(|(c, _)| c.clone()).collect();
                aggregate_rows(&rows, &group_exprs, &calls)?
            }
        }
        TemporalOp::Union => {
            let (r, s) = (args[0], args[1]);
            let mut rows: Vec<Row> = live(r)
                .into_iter()
                .map(|row| Row::new(r.data_of(&row).to_vec()))
                .collect();
            rows.extend(
                live(s)
                    .into_iter()
                    .map(|row| Row::new(s.data_of(&row).to_vec())),
            );
            dedup(rows)
        }
        TemporalOp::Difference => {
            let (r, s) = (args[0], args[1]);
            let s_set: HashSet<Row> = live(s)
                .into_iter()
                .map(|row| Row::new(s.data_of(&row).to_vec()))
                .collect();
            dedup(
                live(r)
                    .into_iter()
                    .map(|row| Row::new(r.data_of(&row).to_vec()))
                    .filter(|row| !s_set.contains(row))
                    .collect(),
            )
        }
        TemporalOp::Intersection => {
            let (r, s) = (args[0], args[1]);
            let s_set: HashSet<Row> = live(s)
                .into_iter()
                .map(|row| Row::new(s.data_of(&row).to_vec()))
                .collect();
            dedup(
                live(r)
                    .into_iter()
                    .map(|row| Row::new(r.data_of(&row).to_vec()))
                    .filter(|row| s_set.contains(row))
                    .collect(),
            )
        }
        TemporalOp::CartesianProduct
        | TemporalOp::Join { .. }
        | TemporalOp::LeftOuterJoin { .. }
        | TemporalOp::RightOuterJoin { .. }
        | TemporalOp::FullOuterJoin { .. } => {
            let (r, s) = (args[0], args[1]);
            let theta = op.theta();
            let (lr, ls) = (live(r), live(s));
            let (dr, ds) = (r.data_width(), s.data_width());
            let mut rows = Vec::new();
            let mut r_matched = vec![false; lr.len()];
            let mut s_matched = vec![false; ls.len()];
            for (i, rrow) in lr.iter().enumerate() {
                for (j, srow) in ls.iter().enumerate() {
                    let combined = rrow.concat(srow);
                    let ok = match theta {
                        None => true,
                        Some(e) => e.eval_pred(combined.values())?,
                    };
                    if ok {
                        r_matched[i] = true;
                        s_matched[j] = true;
                        let mut vals = r.data_of(rrow).to_vec();
                        vals.extend_from_slice(s.data_of(srow));
                        rows.push(Row::new(vals));
                    }
                }
            }
            let pad_left = matches!(
                op,
                TemporalOp::LeftOuterJoin { .. } | TemporalOp::FullOuterJoin { .. }
            );
            let pad_right = matches!(
                op,
                TemporalOp::RightOuterJoin { .. } | TemporalOp::FullOuterJoin { .. }
            );
            if pad_left {
                for (i, rrow) in lr.iter().enumerate() {
                    if !r_matched[i] {
                        let mut vals = r.data_of(rrow).to_vec();
                        vals.extend(std::iter::repeat_n(Value::Null, ds));
                        rows.push(Row::new(vals));
                    }
                }
            }
            if pad_right {
                for (j, srow) in ls.iter().enumerate() {
                    if !s_matched[j] {
                        let mut vals = vec![Value::Null; dr];
                        vals.extend_from_slice(s.data_of(srow));
                        rows.push(Row::new(vals));
                    }
                }
            }
            dedup(rows)
        }
        TemporalOp::AntiJoin { theta } => {
            let (r, s) = (args[0], args[1]);
            let (lr, ls) = (live(r), live(s));
            let mut rows = Vec::new();
            for rrow in &lr {
                let mut matched = false;
                for srow in &ls {
                    let combined = rrow.concat(srow);
                    let ok = match theta {
                        None => true,
                        Some(e) => e.eval_pred(combined.values())?,
                    };
                    if ok {
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    rows.push(Row::new(r.data_of(rrow).to_vec()));
                }
            }
            dedup(rows)
        }
    };
    Ok(out)
}

/// Evaluate `op(args)` by snapshots + lineage stitching (see module docs).
pub fn evaluate_oracle(
    op: &TemporalOp,
    args: &[&TemporalRelation],
) -> TemporalResult<TemporalRelation> {
    let data_schema = op.result_data_schema(args)?;

    // Critical points: all argument endpoints. Snapshots and lineage are
    // constant within [p_i, p_{i+1}).
    let mut points: Vec<TimePoint> = Vec::new();
    for a in args {
        points.extend(a.endpoints());
    }
    points.sort_unstable();
    points.dedup();

    let mut out: Vec<(Vec<Value>, Interval)> = Vec::new();
    // value row → (segment start, lineage at that segment)
    let mut active: BTreeMap<Row, (TimePoint, Lineage)> = BTreeMap::new();

    for win in points.windows(2) {
        let (seg_start, _seg_end) = (win[0], win[1]);
        let rows = snapshot_eval(op, args, seg_start)?;
        let mut current: BTreeMap<Row, Lineage> = BTreeMap::new();
        for row in rows {
            let lin = lineage(op, args, row.values(), seg_start)?;
            current.insert(row, lin);
        }
        // Close tuples that disappeared or changed lineage.
        let mut to_close: Vec<Row> = Vec::new();
        for (row, (_, lin)) in &active {
            match current.get(row) {
                Some(new_lin) if new_lin == lin => {}
                _ => to_close.push(row.clone()),
            }
        }
        for row in to_close {
            let (start, _) = active.remove(&row).expect("present");
            out.push((row.to_vec(), Interval::of(start, seg_start)));
        }
        // Open tuples that appeared (or reopened with new lineage).
        for (row, lin) in current {
            active.entry(row).or_insert((seg_start, lin));
        }
    }
    // Close everything at the final endpoint.
    if let Some(&last) = points.last() {
        for (row, (start, _)) in active {
            out.push((row.to_vec(), Interval::of(start, last)));
        }
    }

    TemporalRelation::from_rows(data_schema, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TemporalAlgebra;
    use crate::interval::Interval;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn oracle_left_outer_join_fragments_correctly() {
        let r = rel(&[("a", 0, 8)]);
        let s = rel(&[("x", 2, 4)]);
        let op = TemporalOp::LeftOuterJoin { theta: None };
        let out = evaluate_oracle(&op, &[&r, &s]).unwrap();
        let expected = TemporalRelation::from_rows(
            op.result_data_schema(&[&r, &s]).unwrap(),
            vec![
                (vec![Value::str("a"), Value::Null], Interval::of(0, 2)),
                (vec![Value::str("a"), Value::str("x")], Interval::of(2, 4)),
                (vec![Value::str("a"), Value::Null], Interval::of(4, 8)),
            ],
        )
        .unwrap();
        assert!(out.same_set(&expected), "{out}");
    }

    #[test]
    fn oracle_preserves_changes_at_touching_intervals() {
        // Two value-equivalent r tuples that meet at 5: the union keeps
        // the change (two fragments), because lineage flips.
        let r = rel(&[("a", 0, 5), ("a", 5, 9)]);
        let s = rel(&[]);
        let out = evaluate_oracle(&TemporalOp::Union, &[&r, &s]).unwrap();
        assert_eq!(out.len(), 2, "{out}");
    }

    #[test]
    fn oracle_matches_reduction_on_difference() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 8), ("b", 0, 3)]);
        let s = rel(&[("a", 2, 5)]);
        let fast = alg.difference(&r, &s).unwrap();
        let slow = evaluate_oracle(&TemporalOp::Difference, &[&r, &s]).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
    }

    #[test]
    fn oracle_matches_reduction_on_aggregation() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 5), ("b", 3, 9), ("c", 4, 6)]);
        let op = TemporalOp::Aggregation {
            group: vec![],
            aggs: vec![(AggCall::count_star(), "cnt".to_string())],
        };
        let fast = op.evaluate(&alg, &[&r]).unwrap();
        let slow = evaluate_oracle(&op, &[&r]).unwrap();
        assert!(fast.same_set(&slow), "fast:\n{fast}\nslow:\n{slow}");
    }

    #[test]
    fn snapshot_eval_respects_theta() {
        let r = rel(&[("a", 0, 9)]);
        let s = rel(&[("a", 0, 9), ("b", 0, 9)]);
        // θ: r.v = s.v → concat cols: r.v=0, s.v=3.
        let op = TemporalOp::Join {
            theta: Some(col(0).eq(col(3))),
        };
        let rows = snapshot_eval(&op, &[&r, &s], 1).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values()[1], Value::str("a"));
    }

    #[test]
    fn empty_args_produce_empty_results() {
        let r = rel(&[]);
        let out = evaluate_oracle(&TemporalOp::Union, &[&r, &r]).unwrap();
        assert!(out.is_empty());
        let op = TemporalOp::Aggregation {
            group: vec![],
            aggs: vec![(AggCall::count_star(), "c".to_string())],
        };
        let out = evaluate_oracle(&op, &[&r]).unwrap();
        assert!(out.is_empty());
    }
}
