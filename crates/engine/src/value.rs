//! Dynamically typed values.
//!
//! `Value::Null` doubles as the paper's ω: the padding value produced by
//! outer joins and the "unknown" of three-valued predicate logic. Equality,
//! ordering and hashing are *structural and total* (`Null == Null`,
//! `Int(1) != Double(1.0)`), which is what grouping, set operations and
//! sorting need; SQL-style comparisons with numeric coercion and
//! null-propagation live in [`Value::sql_cmp`] and the expression evaluator.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EngineError, EngineResult};
use crate::schema::DataType;

/// A single dynamically-typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL; also the ω padding value of outer joins (paper Sec. 1).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer. Time points of the discrete time domain Ω^T
    /// are represented as `Int` (day / month number), as in the PostgreSQL
    /// implementation which stores Ts/Te as plain columns.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is `Null` (ω).
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
        }
    }

    /// The data type of a non-null value.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Integer accessor (no coercion).
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric accessor with Int → Double coercion.
    #[inline]
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Boolean accessor.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Expect an integer, with a descriptive error otherwise. Used by
    /// executor nodes that require interval endpoints.
    pub fn expect_int(&self, what: &str) -> EngineResult<i64> {
        self.as_int().ok_or_else(|| {
            EngineError::TypeError(format!("{what}: expected int, got {}", self.type_name()))
        })
    }

    /// SQL comparison: `None` if either side is NULL or the types are not
    /// comparable; numeric cross-type comparison coerces Int ↔ Double.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => Some(a.total_cmp(b)),
            (Int(a), Double(b)) => Some((*a as f64).total_cmp(b)),
            (Double(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SQL equality as a three-valued predicate: `None` when either side is
    /// NULL, `Some(bool)` otherwise (incomparable types are simply unequal).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match self.sql_cmp(other) {
            Some(o) => Some(o == Ordering::Equal),
            None => Some(false),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

/// Structural, total equality: `Null == Null`, `Int(1) != Double(1.0)`,
/// doubles compared by `total_cmp` (so `NaN == NaN`, `-0.0 != 0.0`).
/// Consistent with `Hash` and `Ord`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Double(a), Double(b)) => a.total_cmp(b) == Ordering::Equal,
            (Str(a), Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

/// Total order used by `Sort` and canonical relation ordering:
/// NULL first, then bools, then numerics (Int/Double interleaved by numeric
/// value, ties broken by type rank so `Eq` stays structural), then strings.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64)
                .total_cmp(b)
                .then(self.rank().cmp(&other.rank())),
            (Double(a), Int(b)) => a
                .total_cmp(&(*b as f64))
                .then(self.rank().cmp(&other.rank())),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "ω"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Checked SQL addition with numeric coercion; NULL-propagating.
pub fn num_add(a: &Value, b: &Value) -> EngineResult<Value> {
    num_binop(a, b, "+", i64::checked_add, |x, y| x + y)
}

/// Checked SQL subtraction with numeric coercion; NULL-propagating.
pub fn num_sub(a: &Value, b: &Value) -> EngineResult<Value> {
    num_binop(a, b, "-", i64::checked_sub, |x, y| x - y)
}

/// Checked SQL multiplication with numeric coercion; NULL-propagating.
pub fn num_mul(a: &Value, b: &Value) -> EngineResult<Value> {
    num_binop(a, b, "*", i64::checked_mul, |x, y| x * y)
}

/// SQL division. Integer division by zero is an error; `Int/Int` is integer
/// division as in PostgreSQL.
pub fn num_div(a: &Value, b: &Value) -> EngineResult<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(_), Value::Int(0)) => Err(EngineError::Evaluation("division by zero".into())),
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x / y)),
        _ => {
            let (x, y) = coerce_doubles(a, b, "/")?;
            Ok(Value::Double(x / y))
        }
    }
}

fn num_binop(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: fn(i64, i64) -> Option<i64>,
    dbl_op: fn(f64, f64) -> f64,
) -> EngineResult<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| EngineError::Evaluation(format!("integer overflow in {x} {op} {y}"))),
        _ => {
            let (x, y) = coerce_doubles(a, b, op)?;
            Ok(Value::Double(dbl_op(x, y)))
        }
    }
}

fn coerce_doubles(a: &Value, b: &Value, op: &str) -> EngineResult<(f64, f64)> {
    match (a.as_double(), b.as_double()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EngineError::TypeError(format!(
            "cannot apply {op} to {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn structural_equality_is_total() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Int(1), Value::Double(1.0));
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
        assert_ne!(Value::Double(-0.0), Value::Double(0.0));
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(h(&Value::Null), h(&Value::Null));
        assert_eq!(h(&Value::str("x")), h(&Value::str("x")));
        assert_eq!(h(&Value::Double(f64::NAN)), h(&Value::Double(f64::NAN)));
        // Not required by the Hash contract, but we rely on it for grouping:
        assert_ne!(h(&Value::Int(1)), h(&Value::Double(1.0)));
    }

    #[test]
    fn total_order_nulls_first() {
        let mut v = [
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Double(2.5),
            Value::Bool(true),
        ];
        v.sort();
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Bool(true));
        assert_eq!(v[2], Value::Double(2.5));
        assert_eq!(v[3], Value::Int(3));
        assert_eq!(v[4], Value::str("b"));
    }

    #[test]
    fn mixed_numeric_order_is_numeric() {
        assert_eq!(Value::Int(1).cmp(&Value::Double(1.5)), Ordering::Less);
        assert_eq!(Value::Double(2.5).cmp(&Value::Int(2)), Ordering::Greater);
        // Numerically equal values are ordered by type rank, not equal:
        assert_eq!(Value::Int(1).cmp(&Value::Double(1.0)), Ordering::Less);
    }

    #[test]
    fn sql_cmp_propagates_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Double(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).sql_eq(&Value::str("1")), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn arithmetic_with_coercion() {
        assert_eq!(
            num_add(&Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            num_add(&Value::Int(2), &Value::Double(0.5)).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(num_sub(&Value::Null, &Value::Int(1)).unwrap(), Value::Null);
        assert!(num_add(&Value::Int(i64::MAX), &Value::Int(1)).is_err());
        assert!(num_div(&Value::Int(1), &Value::Int(0)).is_err());
        assert_eq!(
            num_div(&Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert!(num_add(&Value::Int(1), &Value::str("x")).is_err());
    }

    #[test]
    fn display_uses_omega_for_null() {
        assert_eq!(Value::Null.to_string(), "ω");
        assert_eq!(Value::Int(42).to_string(), "42");
    }
}
