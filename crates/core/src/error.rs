//! Error type for the temporal layer.

use std::fmt;

use temporal_engine::prelude::EngineError;

/// Errors produced by the temporal algebra and primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// Propagated engine error (planning/execution).
    Engine(EngineError),
    /// An interval was empty or inverted (`te <= ts`) or had NULL endpoints.
    InvalidInterval(String),
    /// A relation did not satisfy temporal-relation invariants
    /// (e.g. missing ts/te columns, duplicates over common time points).
    InvalidRelation(String),
    /// Arguments to an operator were incompatible.
    Incompatible(String),
    /// The requested feature is not supported.
    Unsupported(String),
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalError::Engine(e) => write!(f, "{e}"),
            TemporalError::InvalidInterval(m) => write!(f, "invalid interval: {m}"),
            TemporalError::InvalidRelation(m) => write!(f, "invalid temporal relation: {m}"),
            TemporalError::Incompatible(m) => write!(f, "incompatible arguments: {m}"),
            TemporalError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for TemporalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TemporalError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for TemporalError {
    fn from(e: EngineError) -> Self {
        TemporalError::Engine(e)
    }
}

/// Result alias for the temporal layer.
pub type TemporalResult<T> = Result<T, TemporalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_convert() {
        fn fails() -> TemporalResult<()> {
            Err(EngineError::UnknownColumn("x".into()))?;
            Ok(())
        }
        let e = fails().unwrap_err();
        assert!(matches!(e, TemporalError::Engine(_)));
        assert!(e.to_string().contains("unknown column"));
    }

    #[test]
    fn display_kinds() {
        assert!(TemporalError::InvalidInterval("[5,5)".into())
            .to_string()
            .contains("invalid interval"));
    }
}
