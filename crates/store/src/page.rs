//! Slotted heap pages — the on-disk unit of the storage layer.
//!
//! Every page is a fixed [`PAGE_SIZE`]-byte block with the classic
//! PostgreSQL-style slotted layout:
//!
//! ```text
//! +--------------------------------- PAGE_SIZE ---------------------------------+
//! | header | slot 0 | slot 1 | …  ->  free space  <-  … | record 1 | record 0 |
//! +------------------------------------------------------------------------------+
//!   80 B     4 B each (offset,len)                         grows downward
//! ```
//!
//! The fixed header carries a magic number, the **schema fingerprint** of
//! the owning table (so a page can never be decoded under the wrong
//! schema), the **tuple count**, the slot/free-space pointers `lower`
//! (end of the slot array, grows up) and `upper` (start of record data,
//! grows down) — `upper - lower` is the free space — and a **zone map**:
//! min/max of the valid-time start (`ts`) and end (`te`) plus min/max of
//! the first key column over every record in the page. The zone map is
//! maintained by [`Page::zone_add`] on append and lets a scan decide from
//! the header alone that no record in the page can satisfy a temporal
//! range predicate, skipping the decode entirely. Appends that carry no
//! zone information ([`Page::zone_clear`]) mark the zone *unknown*, which
//! pruning must treat as "may match" — conservative by construction.
//!
//! ## Header versions
//!
//! The v3 header (`"TPG3"`, 80 bytes) extends v2's 68 bytes with a
//! **page LSN** (the WAL sequence number of the last logged change —
//! replay applies a record only when the page LSN proves it missing,
//! making redo idempotent) and a **page CRC** (CRC-32C over the whole
//! page with the CRC field zeroed, stamped by the disk manager on every
//! write and verified on read, so a torn or bit-rotted page is detected
//! instead of decoded). v2 (`"TPG2"`, zone map, no LSN/CRC) and v1
//! (`"TPAG"`, no zone map either) pages are still readable; the heap
//! treats them as full, so appends land on fresh v3 pages whose changes
//! can be logged.

use crate::crc32c::crc32c_append;
use crate::error::{StoreError, StoreResult};

/// Size of every page in bytes. 4 KiB keeps a page comfortably
/// cache-resident while holding on the order of a hundred typical tuples.
pub const PAGE_SIZE: usize = 4096;

/// Logical page number within one heap file (0-based).
pub type PageId = u32;

/// Slot index within a page.
pub type SlotId = u16;

const MAGIC_V3: u32 = 0x5450_4733; // "TPG3" — v3 header (page LSN + CRC)
const MAGIC_V2: u32 = 0x5450_4732; // "TPG2" — v2 header (zone map, no LSN/CRC)
const MAGIC_V1: u32 = 0x5450_4147; // "TPAG" — v1 header (no zone map)
/// v3 header size — also where the slot array of a v3 page starts.
const HEADER_SIZE: usize = 80;
/// v1/v2 header size (those pages' slot arrays start here).
const HEADER_SIZE_V2: usize = 68;
/// Bytes per slot-array entry (offset u16 + length u16). Exposed so the
/// heap's fits-in-tail-page check can never diverge from
/// [`Page::insert`]'s free-space arithmetic.
pub const SLOT_SIZE: usize = 4;

const OFF_MAGIC: usize = 0;
const OFF_FINGERPRINT: usize = 4;
const OFF_TUPLE_COUNT: usize = 12;
const OFF_LOWER: usize = 14;
const OFF_UPPER: usize = 16;
const OFF_ZONE_FLAGS: usize = 18;
const OFF_MIN_TS: usize = 20;
const OFF_MAX_TS: usize = 28;
const OFF_MIN_TE: usize = 36;
const OFF_MAX_TE: usize = 44;
const OFF_MIN_KEY: usize = 52;
const OFF_MAX_KEY: usize = 60;
// v3-only fields (past the v2 header end at 68).
const OFF_LSN: usize = 68;
const OFF_CRC: usize = 76;

/// Zone flag: the temporal min/max fields describe every record.
const ZONE_TIME_VALID: u16 = 1;
/// Zone flag: the key min/max fields describe every record.
const ZONE_KEY_VALID: u16 = 2;

/// The largest record a page can hold (one slot plus the data).
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// The per-page zone map: min/max synopses over every record's valid-time
/// interval (`[ts, te)`) and first key column. `time_valid` / `key_valid`
/// distinguish a *known* zone from an unknown one (some record was
/// appended without zone information): unknown zones must never prune.
/// An empty-but-valid zone (fresh page) has `min > max`, so every bound
/// check fails and the page prunes away — correct, it holds no records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageZone {
    pub time_valid: bool,
    pub key_valid: bool,
    pub min_ts: i64,
    pub max_ts: i64,
    pub min_te: i64,
    pub max_te: i64,
    pub min_key: i64,
    pub max_key: i64,
}

/// A conjunction of one-sided bounds a pruned scan pushes down: a record
/// matches only if it satisfies every `Some` bound. `ts_le: Some(v)`
/// means `ts <= v`, `te_gt: Some(v)` means `te > v`, and so on; an
/// `AS OF v` timeslice is exactly `{ts_le: v, te_gt: v}` under the
/// half-open `[ts, te)` convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneBounds {
    pub ts_le: Option<i64>,
    pub ts_ge: Option<i64>,
    pub te_gt: Option<i64>,
    pub te_lt: Option<i64>,
    pub key_le: Option<i64>,
    pub key_ge: Option<i64>,
}

impl ZoneBounds {
    /// The timeslice bounds: rows whose interval contains `v`.
    pub fn as_of(v: i64) -> ZoneBounds {
        ZoneBounds {
            ts_le: Some(v),
            te_gt: Some(v),
            ..ZoneBounds::default()
        }
    }

    /// No bound at all — matches everything, prunes nothing.
    pub fn is_empty(&self) -> bool {
        self == &ZoneBounds::default()
    }

    /// True when the temporal side carries at least one bound.
    pub fn has_time(&self) -> bool {
        self.ts_le.is_some() || self.ts_ge.is_some() || self.te_gt.is_some() || self.te_lt.is_some()
    }

    /// Number of bounds set — a crude selectivity proxy for costing.
    pub fn bound_count(&self) -> usize {
        [
            self.ts_le,
            self.ts_ge,
            self.te_gt,
            self.te_lt,
            self.key_le,
            self.key_ge,
        ]
        .iter()
        .filter(|b| b.is_some())
        .count()
    }
}

impl std::fmt::Display for ZoneBounds {
    /// The EXPLAIN rendering of the bounds, e.g. `ts<=7, te>7`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        for (name, op, v) in [
            ("ts", ">=", self.ts_ge),
            ("ts", "<=", self.ts_le),
            ("te", ">", self.te_gt),
            ("te", "<", self.te_lt),
            ("key", ">=", self.key_ge),
            ("key", "<=", self.key_le),
        ] {
            if let Some(v) = v {
                write!(f, "{sep}{name}{op}{v}")?;
                sep = ", ";
            }
        }
        Ok(())
    }
}

impl PageZone {
    /// Could any record in a page with this zone satisfy `bounds`? False
    /// positives are fine (the filter above the scan re-checks rows);
    /// false negatives would drop rows, so unknown zones always match.
    pub fn may_match(&self, bounds: &ZoneBounds) -> bool {
        if self.time_valid {
            if bounds.ts_le.is_some_and(|v| self.min_ts > v) {
                return false;
            }
            if bounds.ts_ge.is_some_and(|v| self.max_ts < v) {
                return false;
            }
            if bounds.te_gt.is_some_and(|v| self.max_te <= v) {
                return false;
            }
            if bounds.te_lt.is_some_and(|v| self.min_te >= v) {
                return false;
            }
        }
        if self.key_valid {
            if bounds.key_le.is_some_and(|v| self.min_key > v) {
                return false;
            }
            if bounds.key_ge.is_some_and(|v| self.max_key < v) {
                return false;
            }
        }
        true
    }
}

/// A fixed-size slotted page. The in-memory representation is exactly the
/// on-disk representation: reading and writing a page is a plain block
/// copy, no (de)serialization step.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("tuple_count", &self.tuple_count())
            .field("free_space", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page {
            bytes: Box::new([0u8; PAGE_SIZE]),
        }
    }
}

impl Page {
    /// An uninitialized (all-zero) page, ready to be read into.
    pub fn zeroed() -> Page {
        Page::default()
    }

    /// A fresh, empty page carrying `fingerprint` in its header. The zone
    /// map starts valid-and-empty (`min > max`): it describes all zero
    /// records, and the first append either widens it or marks it unknown.
    /// New pages are always v3 (LSN 0, CRC stamped at write time).
    pub fn init(fingerprint: u64) -> Page {
        let mut p = Page::default();
        p.put_u32(OFF_MAGIC, MAGIC_V3);
        p.put_u64(OFF_FINGERPRINT, fingerprint);
        p.put_u16(OFF_TUPLE_COUNT, 0);
        p.put_u16(OFF_LOWER, HEADER_SIZE as u16);
        p.put_u16(OFF_UPPER, PAGE_SIZE as u16);
        p.put_u16(OFF_ZONE_FLAGS, ZONE_TIME_VALID | ZONE_KEY_VALID);
        p.put_i64(OFF_MIN_TS, i64::MAX);
        p.put_i64(OFF_MAX_TS, i64::MIN);
        p.put_i64(OFF_MIN_TE, i64::MAX);
        p.put_i64(OFF_MAX_TE, i64::MIN);
        p.put_i64(OFF_MIN_KEY, i64::MAX);
        p.put_i64(OFF_MAX_KEY, i64::MIN);
        p
    }

    // ---- raw access (for the disk manager) -------------------------------

    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    // ---- header fields ---------------------------------------------------

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.bytes[off], self.bytes[off + 1]])
    }

    fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("4 bytes"))
    }

    fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }

    fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn get_i64(&self, off: usize) -> i64 {
        self.get_u64(off) as i64
    }

    fn put_i64(&mut self, off: usize, v: i64) {
        self.put_u64(off, v as u64);
    }

    /// Schema fingerprint stamped at init time.
    pub fn fingerprint(&self) -> u64 {
        self.get_u64(OFF_FINGERPRINT)
    }

    /// Header version: 3/2/1 for the known magics, 0 for garbage.
    pub fn version(&self) -> u8 {
        match self.get_u32(OFF_MAGIC) {
            MAGIC_V3 => 3,
            MAGIC_V2 => 2,
            MAGIC_V1 => 1,
            _ => 0,
        }
    }

    /// Where this page's slot array starts (version-dependent: the v3
    /// header grew past the v2 one, so v2 slot arrays start earlier).
    fn slot_base(&self) -> usize {
        if self.version() == 3 {
            HEADER_SIZE
        } else {
            HEADER_SIZE_V2
        }
    }

    /// The page LSN: the WAL sequence number of the last logged change
    /// (0 for never-logged and pre-v3 pages). Replay skips records whose
    /// LSN is ≤ this, making redo idempotent.
    pub fn lsn(&self) -> u64 {
        if self.version() == 3 {
            self.get_u64(OFF_LSN)
        } else {
            0
        }
    }

    /// Stamp the page LSN (v3 pages only; a no-op on older versions,
    /// which are never append targets).
    pub fn set_lsn(&mut self, lsn: u64) {
        if self.version() == 3 {
            self.put_u64(OFF_LSN, lsn);
        }
    }

    /// CRC-32C over the whole page with the CRC field zeroed.
    fn compute_crc(&self) -> u32 {
        let crc = crc32c_append(0, &self.bytes[..OFF_CRC]);
        let crc = crc32c_append(crc, &[0u8; 4]);
        crc32c_append(crc, &self.bytes[OFF_CRC + 4..])
    }

    /// Stamp the page CRC (v3 only). The disk manager calls this on
    /// every write, so in-memory pages may carry a stale CRC but on-disk
    /// v3 pages never do.
    pub fn stamp_crc(&mut self) {
        if self.version() == 3 {
            let crc = self.compute_crc();
            self.put_u32(OFF_CRC, crc);
        }
    }

    /// Does the stored CRC match the page contents? Pre-v3 pages (which
    /// carry no CRC) always pass.
    pub fn crc_ok(&self) -> bool {
        self.version() != 3 || self.get_u32(OFF_CRC) == self.compute_crc()
    }

    /// Number of records stored in this page.
    pub fn tuple_count(&self) -> u16 {
        self.get_u16(OFF_TUPLE_COUNT)
    }

    fn lower(&self) -> usize {
        self.get_u16(OFF_LOWER) as usize
    }

    fn upper(&self) -> usize {
        self.get_u16(OFF_UPPER) as usize
    }

    /// Bytes available for one more record *including* its slot entry.
    pub fn free_space(&self) -> usize {
        self.upper().saturating_sub(self.lower())
    }

    /// Would a record of `len` bytes fit in this page right now? Exactly
    /// the check [`Page::insert`] performs.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    // ---- zone map --------------------------------------------------------

    /// The page's zone map, read from the header alone (no record decode).
    /// v1 pages predate zone maps, so theirs is reported fully unknown.
    pub fn zone(&self) -> PageZone {
        let flags = if self.version() == 1 {
            0
        } else {
            self.get_u16(OFF_ZONE_FLAGS)
        };
        PageZone {
            time_valid: flags & ZONE_TIME_VALID != 0,
            key_valid: flags & ZONE_KEY_VALID != 0,
            min_ts: self.get_i64(OFF_MIN_TS),
            max_ts: self.get_i64(OFF_MAX_TS),
            min_te: self.get_i64(OFF_MIN_TE),
            max_te: self.get_i64(OFF_MAX_TE),
            min_key: self.get_i64(OFF_MIN_KEY),
            max_key: self.get_i64(OFF_MAX_KEY),
        }
    }

    /// Widen the zone map for one appended record with interval
    /// `[ts, te)` and (optionally) its first key column. `key: None`
    /// marks the key zone unknown — the record has no integer key, so
    /// key-based pruning can no longer be trusted for this page.
    pub fn zone_add(&mut self, ts: i64, te: i64, key: Option<i64>) {
        self.put_i64(OFF_MIN_TS, self.get_i64(OFF_MIN_TS).min(ts));
        self.put_i64(OFF_MAX_TS, self.get_i64(OFF_MAX_TS).max(ts));
        self.put_i64(OFF_MIN_TE, self.get_i64(OFF_MIN_TE).min(te));
        self.put_i64(OFF_MAX_TE, self.get_i64(OFF_MAX_TE).max(te));
        match key {
            Some(k) => {
                self.put_i64(OFF_MIN_KEY, self.get_i64(OFF_MIN_KEY).min(k));
                self.put_i64(OFF_MAX_KEY, self.get_i64(OFF_MAX_KEY).max(k));
            }
            None => {
                let flags = self.get_u16(OFF_ZONE_FLAGS);
                self.put_u16(OFF_ZONE_FLAGS, flags & !ZONE_KEY_VALID);
            }
        }
    }

    /// Mark the whole zone map unknown: a record was appended without
    /// zone information, so header-only pruning must pass this page.
    pub fn zone_clear(&mut self) {
        self.put_u16(OFF_ZONE_FLAGS, 0);
    }

    /// Validate the structural invariants of a page read from disk,
    /// checking its fingerprint against the expected table schema.
    pub fn validate(&self, expected_fingerprint: u64) -> StoreResult<()> {
        if self.version() == 0 {
            return Err(StoreError::Corrupt("bad page magic".into()));
        }
        if self.fingerprint() != expected_fingerprint {
            return Err(StoreError::Corrupt(format!(
                "page fingerprint {:#x} does not match table schema fingerprint {:#x}",
                self.fingerprint(),
                expected_fingerprint
            )));
        }
        let base = self.slot_base();
        let (lower, upper) = (self.lower(), self.upper());
        if lower < base || upper > PAGE_SIZE || lower > upper {
            return Err(StoreError::Corrupt(format!(
                "page pointers out of bounds: lower={lower} upper={upper}"
            )));
        }
        if (lower - base) / SLOT_SIZE != self.tuple_count() as usize {
            return Err(StoreError::Corrupt(
                "slot array length disagrees with tuple count".into(),
            ));
        }
        Ok(())
    }

    // ---- records ---------------------------------------------------------

    /// Append a record; returns its slot, or `None` when the page is full.
    /// Records larger than [`MAX_RECORD_SIZE`] are a [`StoreError::Capacity`].
    pub fn insert(&mut self, record: &[u8]) -> StoreResult<Option<SlotId>> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StoreError::Capacity(format!(
                "record of {} bytes exceeds page capacity of {MAX_RECORD_SIZE} bytes",
                record.len()
            )));
        }
        if self.free_space() < record.len() + SLOT_SIZE {
            return Ok(None);
        }
        let upper = self.upper() - record.len();
        self.bytes[upper..upper + record.len()].copy_from_slice(record);
        let slot = self.tuple_count();
        let slot_off = self.slot_base() + slot as usize * SLOT_SIZE;
        self.put_u16(slot_off, upper as u16);
        self.put_u16(slot_off + 2, record.len() as u16);
        self.put_u16(OFF_LOWER, (slot_off + SLOT_SIZE) as u16);
        self.put_u16(OFF_UPPER, upper as u16);
        self.put_u16(OFF_TUPLE_COUNT, slot + 1);
        Ok(Some(slot))
    }

    /// The record bytes at `slot`.
    pub fn record(&self, slot: SlotId) -> StoreResult<&[u8]> {
        if slot >= self.tuple_count() {
            return Err(StoreError::Corrupt(format!(
                "slot {slot} out of bounds (page has {} tuples)",
                self.tuple_count()
            )));
        }
        let slot_off = self.slot_base() + slot as usize * SLOT_SIZE;
        let off = self.get_u16(slot_off) as usize;
        let len = self.get_u16(slot_off + 2) as usize;
        if off < self.upper() || off + len > PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "slot {slot} points outside the page (offset={off} len={len})"
            )));
        }
        Ok(&self.bytes[off..off + len])
    }

    /// Iterate all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = StoreResult<&[u8]>> + '_ {
        (0..self.tuple_count()).map(move |s| self.record(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::init(7);
        assert_eq!(p.insert(b"hello").unwrap(), Some(0));
        assert_eq!(p.insert(b"world!").unwrap(), Some(1));
        assert_eq!(p.tuple_count(), 2);
        assert_eq!(p.record(0).unwrap(), b"hello");
        assert_eq!(p.record(1).unwrap(), b"world!");
        assert_eq!(p.fingerprint(), 7);
        let all: Vec<Vec<u8>> = p.records().map(|r| r.unwrap().to_vec()).collect();
        assert_eq!(all, vec![b"hello".to_vec(), b"world!".to_vec()]);
    }

    #[test]
    fn fills_up_then_refuses() {
        let mut p = Page::init(0);
        let rec = [0xabu8; 100];
        let mut n = 0usize;
        while p.insert(&rec).unwrap().is_some() {
            n += 1;
        }
        // 100 data + 4 slot bytes per record into the usable area.
        assert_eq!(n, (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_SIZE));
        assert!(p.free_space() < 104);
        // The page is unchanged by the failed insert.
        assert_eq!(p.tuple_count() as usize, n);
    }

    #[test]
    fn oversized_record_is_an_error() {
        let mut p = Page::init(0);
        let huge = vec![0u8; MAX_RECORD_SIZE + 1];
        assert!(matches!(p.insert(&huge), Err(StoreError::Capacity(_))));
        // Exactly max fits.
        let max = vec![1u8; MAX_RECORD_SIZE];
        assert_eq!(p.insert(&max).unwrap(), Some(0));
        assert_eq!(p.record(0).unwrap(), &max[..]);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::init(42);
        p.insert(b"abc").unwrap();
        let mut q = Page::zeroed();
        q.as_bytes_mut().copy_from_slice(p.as_bytes());
        q.validate(42).unwrap();
        assert_eq!(q.record(0).unwrap(), b"abc");
        assert!(q.validate(43).is_err());
    }

    #[test]
    fn validate_rejects_garbage() {
        let p = Page::zeroed();
        assert!(p.validate(0).is_err());
        let mut bad = Page::init(1);
        bad.insert(b"x").unwrap();
        bad.as_bytes_mut()[OFF_TUPLE_COUNT] = 9; // count disagrees with slots
        assert!(bad.validate(1).is_err());
    }

    #[test]
    fn empty_slot_read_errors() {
        let p = Page::init(0);
        assert!(p.record(0).is_err());
    }

    #[test]
    fn zone_map_widens_and_prunes() {
        let mut p = Page::init(0);
        // A fresh page has a valid-but-empty zone: everything prunes.
        assert!(p.zone().time_valid);
        assert!(!p.zone().may_match(&ZoneBounds::as_of(5)));
        p.insert(b"r1").unwrap();
        p.zone_add(2, 6, Some(10));
        p.insert(b"r2").unwrap();
        p.zone_add(4, 9, Some(3));
        let z = p.zone();
        assert_eq!((z.min_ts, z.max_ts, z.min_te, z.max_te), (2, 4, 6, 9));
        assert_eq!((z.min_key, z.max_key), (3, 10));
        // AS OF 5: some interval may contain 5 (min_ts=2 ≤ 5 < max_te=9).
        assert!(z.may_match(&ZoneBounds::as_of(5)));
        // AS OF 1: every interval starts at ≥ 2 — prune.
        assert!(!z.may_match(&ZoneBounds::as_of(1)));
        // AS OF 9: every interval ends by 9 (half-open) — prune.
        assert!(!z.may_match(&ZoneBounds::as_of(9)));
        // Key bounds: keys span [3, 10].
        assert!(z.may_match(&ZoneBounds {
            key_ge: Some(10),
            ..ZoneBounds::default()
        }));
        assert!(!z.may_match(&ZoneBounds {
            key_ge: Some(11),
            ..ZoneBounds::default()
        }));
    }

    #[test]
    fn unknown_zones_never_prune() {
        let mut p = Page::init(0);
        p.insert(b"r1").unwrap();
        p.zone_add(2, 6, None); // no key → key zone unknown
        let z = p.zone();
        assert!(z.time_valid);
        assert!(!z.key_valid);
        assert!(z.may_match(&ZoneBounds {
            key_ge: Some(999),
            ..ZoneBounds::default()
        }));
        p.zone_clear(); // a zone-less append poisons the whole map
        assert!(p.zone().may_match(&ZoneBounds::as_of(-12345)));
    }

    #[test]
    fn v3_lsn_roundtrips_and_v2_reports_zero() {
        let mut p = Page::init(1);
        assert_eq!(p.version(), 3);
        assert_eq!(p.lsn(), 0);
        p.set_lsn(99);
        assert_eq!(p.lsn(), 99);
        // Forge a v2 page: same layout up to 68 bytes, old magic.
        let mut v2 = Page::init(1);
        v2.put_u32(OFF_MAGIC, MAGIC_V2);
        v2.put_u16(OFF_LOWER, HEADER_SIZE_V2 as u16);
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.lsn(), 0);
        v2.set_lsn(5); // no-op on v2
        assert_eq!(v2.lsn(), 0);
    }

    #[test]
    fn v2_pages_still_insert_and_read_from_their_own_slot_base() {
        let mut v2 = Page::init(7);
        v2.put_u32(OFF_MAGIC, MAGIC_V2);
        v2.put_u16(OFF_LOWER, HEADER_SIZE_V2 as u16);
        assert_eq!(v2.insert(b"old-format").unwrap(), Some(0));
        v2.validate(7).unwrap();
        assert_eq!(v2.record(0).unwrap(), b"old-format");
        // And it holds SLOT_SIZE*3 == 12 more bytes than a v3 page would.
        assert_eq!(v2.free_space(), PAGE_SIZE - HEADER_SIZE_V2 - 10 - SLOT_SIZE);
    }

    #[test]
    fn crc_catches_any_single_byte_corruption() {
        let mut p = Page::init(3);
        p.insert(b"guarded").unwrap();
        p.zone_add(1, 5, Some(2));
        p.stamp_crc();
        assert!(p.crc_ok());
        // Any byte flip (outside the magic, which demotes the version,
        // and the CRC field itself) breaks the check — probe a spread of
        // offsets covering header, LSN, slot array, and record data.
        for off in [5usize, 12, 40, 69, 81, 200, PAGE_SIZE - 1] {
            let mut q = p.clone();
            q.as_bytes_mut()[off] ^= 0x40;
            assert!(!q.crc_ok(), "flip at {off} went undetected");
        }
        // Pre-v3 pages carry no CRC and always pass.
        let mut v2 = Page::init(3);
        v2.put_u32(OFF_MAGIC, MAGIC_V2);
        assert!(v2.crc_ok());
    }

    #[test]
    fn zone_map_survives_byte_roundtrip() {
        let mut p = Page::init(3);
        p.insert(b"r").unwrap();
        p.zone_add(-7, 40, Some(1));
        let mut q = Page::zeroed();
        q.as_bytes_mut().copy_from_slice(p.as_bytes());
        q.validate(3).unwrap();
        assert_eq!(q.zone(), p.zone());
    }
}
