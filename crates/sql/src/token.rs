//! Token model for the SQL dialect of Sec. 6.2/6.3.

use std::fmt;

/// Keywords. The temporal extensions are `ALIGN`, `NORMALIZE`, `USING`
/// (the grammar of Sec. 6.2) and `ABSORB` (in place of `DISTINCT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Select,
    From,
    Where,
    Group,
    Order,
    By,
    As,
    Of,
    On,
    Join,
    Left,
    Right,
    Full,
    Inner,
    Outer,
    Cross,
    With,
    Union,
    Except,
    Intersect,
    All,
    Distinct,
    Absorb,
    Align,
    Normalize,
    Using,
    And,
    Or,
    Not,
    Exists,
    Between,
    Null,
    True,
    False,
    Is,
    Asc,
    Desc,
    Limit,
    Set,
    Explain,
    Analyze,
    Having,
    Create,
    Table,
    Persisted,
    Copy,
    To,
    Drop,
    Insert,
    Into,
    Values,
}

impl Kw {
    /// Keyword lookup on a lowercased identifier.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Kw> {
        Some(match s {
            "select" => Kw::Select,
            "from" => Kw::From,
            "where" => Kw::Where,
            "group" => Kw::Group,
            "order" => Kw::Order,
            "by" => Kw::By,
            "as" => Kw::As,
            "of" => Kw::Of,
            "on" => Kw::On,
            "join" => Kw::Join,
            "left" => Kw::Left,
            "right" => Kw::Right,
            "full" => Kw::Full,
            "inner" => Kw::Inner,
            "outer" => Kw::Outer,
            "cross" => Kw::Cross,
            "with" => Kw::With,
            "union" => Kw::Union,
            "except" => Kw::Except,
            "intersect" => Kw::Intersect,
            "all" => Kw::All,
            "distinct" => Kw::Distinct,
            "absorb" => Kw::Absorb,
            "align" => Kw::Align,
            "normalize" => Kw::Normalize,
            "using" => Kw::Using,
            "and" => Kw::And,
            "or" => Kw::Or,
            "not" => Kw::Not,
            "exists" => Kw::Exists,
            "between" => Kw::Between,
            "null" => Kw::Null,
            "true" => Kw::True,
            "false" => Kw::False,
            "is" => Kw::Is,
            "asc" => Kw::Asc,
            "desc" => Kw::Desc,
            "limit" => Kw::Limit,
            "set" => Kw::Set,
            "explain" => Kw::Explain,
            "analyze" => Kw::Analyze,
            "having" => Kw::Having,
            "create" => Kw::Create,
            "table" => Kw::Table,
            "persisted" => Kw::Persisted,
            "copy" => Kw::Copy,
            "to" => Kw::To,
            "drop" => Kw::Drop,
            "insert" => Kw::Insert,
            "into" => Kw::Into,
            "values" => Kw::Values,
            _ => return None,
        })
    }
}

/// Lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(Kw),
    /// Lowercased identifier.
    Ident(String),
    Int(i64),
    Float(f64),
    /// Single-quoted string literal (unescaped content).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "identifier '{s}'"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Kw::from_str("align"), Some(Kw::Align));
        assert_eq!(Kw::from_str("normalize"), Some(Kw::Normalize));
        assert_eq!(Kw::from_str("absorb"), Some(Kw::Absorb));
        assert_eq!(Kw::from_str("pcn"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Ne.to_string(), "<>");
        assert_eq!(Token::Ident("r".into()).to_string(), "identifier 'r'");
    }
}
