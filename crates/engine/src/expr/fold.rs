//! Constant folding for expressions.
//!
//! The planner folds literal-only subexpressions before costing plans, so
//! conditions like `1 = 1` (the SQL way of writing θ = true, as in the
//! paper's O1 query) or `DUR(0, 5) BETWEEN 1 AND 7` don't survive into
//! per-tuple evaluation. Folding is conservative: anything that errors at
//! fold time (overflow, type errors) is left untouched so the error
//! surfaces — or doesn't — at execution time exactly as unfolded.

use crate::expr::Expr;
use crate::value::Value;

/// Is this expression a literal?
fn as_lit(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Lit(v) => Some(v),
        _ => None,
    }
}

/// Fold constant subexpressions bottom-up. Idempotent.
pub fn fold(e: &Expr) -> Expr {
    let folded = match e {
        Expr::Col(_) | Expr::Name(_) | Expr::Lit(_) => e.clone(),
        Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(fold(a)), Box::new(fold(b))),
        Expr::And(a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            // Short-circuit simplifications (sound in three-valued logic:
            // TRUE AND x = x, FALSE AND x = FALSE).
            match (as_lit(&fa), as_lit(&fb)) {
                (Some(Value::Bool(true)), _) => return fb,
                (_, Some(Value::Bool(true))) => return fa,
                (Some(Value::Bool(false)), _) | (_, Some(Value::Bool(false))) => {
                    return Expr::Lit(Value::Bool(false))
                }
                _ => Expr::And(Box::new(fa), Box::new(fb)),
            }
        }
        Expr::Or(a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            match (as_lit(&fa), as_lit(&fb)) {
                (Some(Value::Bool(false)), _) => return fb,
                (_, Some(Value::Bool(false))) => return fa,
                (Some(Value::Bool(true)), _) | (_, Some(Value::Bool(true))) => {
                    return Expr::Lit(Value::Bool(true))
                }
                _ => Expr::Or(Box::new(fa), Box::new(fb)),
            }
        }
        Expr::Not(a) => Expr::Not(Box::new(fold(a))),
        Expr::Neg(a) => Expr::Neg(Box::new(fold(a))),
        Expr::Arith(op, a, b) => Expr::Arith(*op, Box::new(fold(a)), Box::new(fold(b))),
        Expr::Func(f, args) => Expr::Func(*f, args.iter().map(fold).collect()),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(fold(expr)),
            low: Box::new(fold(low)),
            high: Box::new(fold(high)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(fold(expr)),
            negated: *negated,
        },
    };
    // If the whole (sub)tree is column-free, try evaluating it against an
    // empty row; on success replace by the literal.
    if folded.max_col().is_none() && !matches!(folded, Expr::Lit(_)) {
        if let Ok(v) = folded.eval(&[]) {
            return Expr::Lit(v);
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, Func};

    #[test]
    fn folds_tautologies() {
        // `1 = 1` — the paper's θ = true in SQL.
        assert_eq!(fold(&lit(1i64).eq(lit(1i64))), lit(true));
        assert_eq!(fold(&lit(1i64).eq(lit(2i64))), lit(false));
    }

    #[test]
    fn and_or_short_circuit_with_columns() {
        let e = lit(true).and(col(0).gt(lit(3i64)));
        assert_eq!(fold(&e), col(0).gt(lit(3i64)));
        let e = col(0).gt(lit(3i64)).and(lit(false));
        assert_eq!(fold(&e), lit(false));
        let e = lit(true).or(col(0).gt(lit(3i64)));
        assert_eq!(fold(&e), lit(true));
        let e = lit(false).or(col(0).gt(lit(3i64)));
        assert_eq!(fold(&e), col(0).gt(lit(3i64)));
    }

    #[test]
    fn folds_arithmetic_and_functions() {
        let e = lit(2i64).add(lit(3i64)).mul(lit(4i64));
        assert_eq!(fold(&e), lit(20i64));
        let e = Expr::Func(Func::Dur, vec![lit(3i64), lit(10i64)]);
        assert_eq!(fold(&e), lit(7i64));
        let e = Expr::Func(Func::Dur, vec![lit(0i64), lit(5i64)]).between(lit(1i64), lit(7i64));
        assert_eq!(fold(&e), lit(true));
    }

    #[test]
    fn leaves_column_expressions_alone() {
        let e = col(0).add(lit(1i64)).eq(col(1));
        assert_eq!(fold(&e), e);
    }

    #[test]
    fn folds_inside_column_expressions() {
        let e = col(0).eq(lit(1i64).add(lit(2i64)));
        assert_eq!(fold(&e), col(0).eq(lit(3i64)));
    }

    #[test]
    fn erroring_constants_are_left_for_execution() {
        // integer overflow: must NOT be folded away or panic.
        let e = lit(i64::MAX).add(lit(1i64));
        assert_eq!(fold(&e), e);
        // division by zero likewise
        let e = lit(1i64).div(lit(0i64));
        assert_eq!(fold(&e), e);
    }

    #[test]
    fn folding_is_idempotent() {
        let e = lit(true)
            .and(col(0).lt(lit(5i64)))
            .or(lit(2i64).eq(lit(3i64)));
        let once = fold(&e);
        assert_eq!(fold(&once), once);
    }

    #[test]
    fn null_literals_fold_three_valued() {
        let e = Expr::Lit(Value::Null).is_null();
        assert_eq!(fold(&e), lit(true));
        // NULL = NULL folds to the NULL literal (unknown), not true.
        let e = Expr::Lit(Value::Null).eq(Expr::Lit(Value::Null));
        assert_eq!(fold(&e), Expr::Lit(Value::Null));
    }
}
