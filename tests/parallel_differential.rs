//! Parallel/serial differential tests: executing the same physical plan
//! under `threads = 4` must be **row-for-row identical** — same rows, same
//! order — to `threads = 1`, and both must match the row-at-a-time Volcano
//! baseline. The parallel states use `parallel_min_rows = 1` so even the
//! small proptest inputs actually take the partitioned code paths
//! (exchange over scans, parallel sort, partitioned hash join build +
//! probe, data-run-partitioned temporal sweeps).

mod common;

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::semantics::TemporalOp;
use temporal_alignment::engine::catalog::Catalog;
use temporal_alignment::engine::prelude::*;
use temporal_datasets::{ddisj, deq, drand};

fn serial_state() -> ExecutionState {
    ExecutionState::new(PlannerConfig {
        threads: 1,
        ..Default::default()
    })
}

fn parallel_state() -> ExecutionState {
    ExecutionState::new(PlannerConfig {
        threads: 4,
        parallel_min_rows: 1,
        ..Default::default()
    })
}

/// Plan once, execute three ways (row baseline, serial batch, 4-worker
/// batch), compare row-for-row.
fn assert_parallel_identical_logical(lp: &LogicalPlan, label: &str) {
    let physical = Planner::default()
        .plan(lp, &Catalog::new())
        .unwrap_or_else(|e| panic!("{label}: plan: {e}"));
    let row_path = physical
        .collect_rowwise(&serial_state())
        .unwrap_or_else(|e| panic!("{label}: row path: {e}"));
    let serial = physical
        .collect(&serial_state())
        .unwrap_or_else(|e| panic!("{label}: serial batch: {e}"));
    let parallel = physical
        .collect(&parallel_state())
        .unwrap_or_else(|e| panic!("{label}: parallel batch: {e}"));
    assert_eq!(
        serial.rows(),
        row_path.rows(),
        "{label}: serial batch diverges from row path"
    );
    assert_eq!(
        serial.rows(),
        parallel.rows(),
        "{label}: threads=4 diverges from threads=1"
    );
}

fn assert_parallel_identical(plan: &TemporalPlan, label: &str) {
    assert_parallel_identical_logical(plan.logical(), label);
}

/// Apply one operator to a composed plan (as in `tests/plan_first.rs`).
fn apply_plan(
    op: &TemporalOp,
    plan: TemporalPlan,
    rhs: Option<TemporalPlan>,
) -> TemporalResult<TemporalPlan> {
    match op {
        TemporalOp::Selection { predicate } => plan.selection(predicate.clone()),
        TemporalOp::Projection { attrs } => plan.projection(attrs),
        TemporalOp::Aggregation { group, aggs } => plan.aggregation(group, aggs.clone()),
        TemporalOp::Union => plan.union(rhs.expect("binary")),
        TemporalOp::Difference => plan.difference(rhs.expect("binary")),
        TemporalOp::Intersection => plan.intersection(rhs.expect("binary")),
        TemporalOp::CartesianProduct => plan.cartesian_product(rhs.expect("binary")),
        TemporalOp::Join { theta } => plan.join(rhs.expect("binary"), theta.clone()),
        TemporalOp::LeftOuterJoin { theta } => {
            plan.left_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::RightOuterJoin { theta } => {
            plan.right_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::FullOuterJoin { theta } => {
            plan.full_outer_join(rhs.expect("binary"), theta.clone())
        }
        TemporalOp::AntiJoin { theta } => plan.anti_join(rhs.expect("binary"), theta.clone()),
    }
}

/// Chains exercising every parallelized operator through the reductions:
/// joins (hash/interval group construction), sorts, sweeps, absorb, set
/// ops and aggregation.
fn chains_1col() -> Vec<Vec<TemporalOp>> {
    let count = vec![(AggCall::count_star(), "cnt".to_string())];
    vec![
        vec![
            TemporalOp::Join {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Selection {
                predicate: col(0).ge(lit(1i64)),
            },
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::LeftOuterJoin { theta: None },
            TemporalOp::Aggregation {
                group: vec![0],
                aggs: count.clone(),
            },
        ],
        vec![
            TemporalOp::FullOuterJoin {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Projection { attrs: vec![0, 1] },
        ],
        vec![
            TemporalOp::AntiJoin {
                theta: Some(col(0).eq(col(3))),
            },
            TemporalOp::Selection {
                predicate: col(0).ge(lit(0i64)),
            },
        ],
        vec![
            TemporalOp::Union,
            TemporalOp::Selection {
                predicate: col(0).lt(lit(4i64)),
            },
        ],
        vec![
            TemporalOp::Difference,
            TemporalOp::Projection { attrs: vec![0] },
        ],
        vec![
            TemporalOp::Intersection,
            TemporalOp::Aggregation {
                group: vec![],
                aggs: count,
            },
        ],
    ]
}

fn check_chains(r: &TemporalRelation, s: &TemporalRelation, label: &str) {
    for (i, chain) in chains_1col().iter().enumerate() {
        let mut plan = apply_plan(
            &chain[0],
            TemporalPlan::scan(r),
            Some(TemporalPlan::scan(s)),
        )
        .unwrap_or_else(|e| panic!("{label} chain {i}: compose: {e}"));
        for op in &chain[1..] {
            plan = apply_plan(op, plan, None)
                .unwrap_or_else(|e| panic!("{label} chain {i}: compose: {e}"));
        }
        assert_parallel_identical(&plan, &format!("{label} chain {i}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pipelines over the paper's synthetic datasets: threads=4 ≡
    /// threads=1 ≡ row path on Ddisj and Deq of random sizes.
    #[test]
    fn parallel_equals_serial_on_ddisj_and_deq(n in 2usize..7) {
        let (r, s) = ddisj(n);
        check_chains(&r, &s, &format!("ddisj({n})"));
        let (r, s) = deq(n);
        check_chains(&r, &s, &format!("deq({n})"));
    }

    /// Pipelines on Drand (random intervals, asymmetric schemas).
    #[test]
    fn parallel_equals_serial_on_drand(n in 2usize..7, seed in 0u64..1000) {
        let (r, s) = drand(n, seed);
        // concat row = (id, ts, te, a, min, max, ts, te)
        let chains: Vec<Vec<TemporalOp>> = vec![
            vec![
                TemporalOp::Join { theta: Some(col(0).lt(col(3))) },
                TemporalOp::Projection { attrs: vec![0] },
            ],
            vec![
                TemporalOp::LeftOuterJoin { theta: Some(col(0).lt(col(3))) },
                TemporalOp::Selection { predicate: col(1).ge(lit(0i64)) },
                TemporalOp::Projection { attrs: vec![0, 1] },
            ],
            vec![
                TemporalOp::AntiJoin { theta: Some(col(0).eq(col(3))) },
                TemporalOp::Aggregation {
                    group: vec![0],
                    aggs: vec![(AggCall::count_star(), "cnt".to_string())],
                },
            ],
        ];
        for (i, chain) in chains.iter().enumerate() {
            let mut plan = apply_plan(
                &chain[0],
                TemporalPlan::scan(&r),
                Some(TemporalPlan::scan(&s)),
            ).unwrap_or_else(|e| panic!("drand chain {i}: compose: {e}"));
            for op in &chain[1..] {
                plan = apply_plan(op, plan, None)
                    .unwrap_or_else(|e| panic!("drand chain {i}: compose: {e}"));
            }
            assert_parallel_identical(&plan, &format!("drand({n},{seed}) chain {i}"));
        }
    }

    /// The raw primitives under parallel execution: alignment,
    /// normalization, the gaps-only sweep and absorb.
    #[test]
    fn parallel_equals_serial_on_raw_primitives(seed in 0u64..500) {
        let r = common::random_trel(seed, 14, 4, 30);
        let s = common::random_trel(seed + 10_000, 14, 4, 30);
        let theta = col(0).eq(col(3));

        let align = TemporalPlan::scan(&r)
            .align(TemporalPlan::scan(&s), Some(theta.clone()))
            .unwrap();
        assert_parallel_identical(&align, &format!("align seed {seed}"));

        let normalize = TemporalPlan::scan(&r)
            .normalize(TemporalPlan::scan(&s), &[(0, 0)])
            .unwrap();
        assert_parallel_identical(&normalize, &format!("normalize seed {seed}"));

        let gaps = TemporalPlan::scan(&r)
            .anti_join_optimized(TemporalPlan::scan(&s), Some(theta))
            .unwrap();
        assert_parallel_identical(&gaps, &format!("gaps-only seed {seed}"));

        let absorb = TemporalPlan::scan(&r).absorb();
        assert_parallel_identical(&absorb, &format!("absorb seed {seed}"));
    }
}

// ---- partition-boundary edge cases -----------------------------------

/// Sweep groups that straddle the naive equal-size partition cuts: 3
/// oversized groups over 4 workers force every cut to snap forward past a
/// group, and one group dwarfs the others (skew).
#[test]
fn boundary_straddling_groups_are_swept_whole() {
    let mut r_rows: Vec<(i64, i64, i64)> = Vec::new();
    // Group 0: 50 tuples; group 1: 400 tuples (dwarfs the rest); group 2: 73.
    for (k, count) in [(0i64, 50i64), (1, 400), (2, 73)] {
        for i in 0..count {
            r_rows.push((k, 3 * i, 3 * i + 2));
        }
    }
    let r = common::rel1("r", &r_rows);
    let s_rows: Vec<(i64, i64, i64)> = (0..200).map(|i| (i % 3, 6 * i + 1, 6 * i + 4)).collect();
    let s = common::rel1("s", &s_rows);

    let align = TemporalPlan::scan(&r)
        .align(TemporalPlan::scan(&s), Some(col(0).eq(col(3))))
        .unwrap();
    assert_parallel_identical(&align, "straddling align");
    let absorb = TemporalPlan::scan(&r).absorb();
    assert_parallel_identical(&absorb, "straddling absorb");
}

/// Exact-boundary case: the input size divides evenly by the worker count
/// AND every data-run boundary coincides with a naive cut point, so the
/// snap loop takes zero steps. The partitioned sweep must still agree and
/// must actually have partitioned (not fallen back to serial).
#[test]
fn exact_partition_boundaries() {
    // 400 rows, 4 workers → cuts at 100/200/300; data changes exactly there.
    let rows: Vec<(i64, i64, i64)> = (0..400).map(|i| (i / 100, 2 * i, 2 * i + 1)).collect();
    let r = common::rel1("r", &rows);
    let plan = TemporalPlan::scan(&r).absorb();
    let physical = Planner::default()
        .plan(plan.logical(), &Catalog::new())
        .unwrap();
    let serial = physical.collect(&serial_state()).unwrap();
    let par_state = parallel_state();
    let parallel = physical.collect(&par_state).unwrap();
    assert_eq!(serial.rows(), parallel.rows());
    let (_, _, partitions) = par_state.stats.snapshot();
    assert!(
        partitions > 1,
        "exact-boundary input must still run partitioned, got {partitions}"
    );
}
