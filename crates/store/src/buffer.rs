//! The buffer pool: a fixed set of in-memory frames caching heap pages,
//! with pin/unpin accounting, clock (second-chance) eviction and
//! dirty-page write-back.
//!
//! Scans and appends never address the disk directly — they *pin* a page
//! ([`BufferPool::fetch`]), work on the returned [`PageGuard`], and the
//! pin is released when the guard drops. A pinned page is never evicted;
//! an unpinned page survives in its frame until the clock hand reclaims
//! it, so a pool sized below a table's page count still scans the whole
//! table — it just streams pages through the frames instead of holding
//! the heap in memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::disk::DiskManager;
use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId};
use crate::wal::Wal;

/// Default number of frames in a table's buffer pool (64 × 4 KiB = 256 KiB).
pub const DEFAULT_POOL_PAGES: usize = 64;

/// Yield-and-retry rounds before a fully-pinned pool is reported as
/// exhausted. Concurrent fetches pin frames only for the duration of a
/// guard, so "all frames pinned" is almost always a transient state.
const EXHAUSTED_RETRIES: usize = 10_000;

#[derive(Debug, Default, Clone, Copy)]
struct FrameMeta {
    page: Option<PageId>,
    referenced: bool,
}

#[derive(Debug)]
struct PoolState {
    /// page id → frame index for resident pages.
    table: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    hand: usize,
}

/// Point-in-time counters of one buffer pool — or, via
/// [`PoolStats::merge`], of every pool in a database. The observability
/// surface behind `Database::pool_stats` and the tsql `.bufstats`
/// dot-command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetch calls (hits + misses).
    pub fetches: u64,
    /// Cache misses (pages read from disk).
    pub io_reads: u64,
    /// Pages written to disk (write-backs and appends).
    pub io_writes: u64,
    /// Fsyncs issued on the heap file(s).
    pub io_syncs: u64,
    /// Resident pages displaced by clock eviction.
    pub evictions: u64,
    /// Pool frames (summed when merged).
    pub capacity: u64,
}

impl PoolStats {
    /// Fraction of fetches served without a disk read, in `[0, 1]`. An
    /// untouched pool reports 1.0 (nothing has missed yet).
    pub fn hit_rate(&self) -> f64 {
        if self.fetches == 0 {
            1.0
        } else {
            1.0 - (self.io_reads.min(self.fetches) as f64 / self.fetches as f64)
        }
    }

    /// Accumulate another pool's counters (database-wide aggregation).
    pub fn merge(&mut self, other: &PoolStats) {
        self.fetches += other.fetches;
        self.io_reads += other.io_reads;
        self.io_writes += other.io_writes;
        self.io_syncs += other.io_syncs;
        self.evictions += other.evictions;
        self.capacity += other.capacity;
    }
}

/// A pinning page cache in front of one [`DiskManager`].
///
/// Concurrency design: the pool mutex guards only the page table, frame
/// metadata and clock hand — never disk reads. Pin counts are per-frame
/// atomics, so releasing a pin (every `PageGuard` drop, i.e. every page a
/// scan streams past) takes no lock at all. Pinning still happens under
/// the short map-guard — that is what makes the eviction check
/// (`pins == 0` while holding the guard) race-free, since a pin count can
/// only leave zero with the guard held. On a miss the victim frame is
/// *claimed* (pinned, unmapped) under the guard, the guard is dropped, and
/// the disk read runs outside it under the frame's own write latch;
/// concurrent fetches of other pages proceed in parallel with the I/O.
/// Dirty bits are per-frame atomics set when a [`PageWriteGuard`] is
/// released (still under the frame latch), so page writes never touch the
/// pool mutex; write-back *clears* the bit before copying the frame out
/// (swap-then-write), so a writer racing the flush leaves the bit set and
/// the next flush rewrites the page — a mutation is never lost. Victim
/// write-back stays under the map-guard: it is atomic with the victim's
/// unmapping, so a concurrent re-fetch of the evicted page can never read
/// the heap file before the write-back lands.
#[derive(Debug)]
pub struct BufferPool {
    disk: DiskManager,
    frames: Vec<Arc<RwLock<Page>>>,
    /// Per-frame pin counts. Incremented only under the `state` guard;
    /// decremented lock-free on guard drop.
    pins: Vec<AtomicU32>,
    /// Per-frame dirty bits, set lock-free on [`PageWriteGuard`] release.
    dirty: Vec<AtomicBool>,
    state: Mutex<PoolState>,
    /// Pages read from disk (cache misses) — observable evidence that a
    /// scan streamed rather than materialized.
    io_reads: AtomicU64,
    /// Total [`BufferPool::fetch`] calls (hits + misses); with `io_reads`
    /// this yields the pool hit rate.
    fetches: AtomicU64,
    /// Resident pages displaced to make room (clock victims that held a
    /// mapped page).
    evictions: AtomicU64,
    /// The database WAL, when this pool backs a logged heap: synced
    /// before any dirty page reaches disk (the write-*ahead* invariant,
    /// see [`Wal::sync_for_write_ahead`]).
    wal: Mutex<Option<Arc<Wal>>>,
    /// Set by a successful [`BufferPool::close`]: the drop hook skips its
    /// best-effort flush (everything is already durable).
    closed: AtomicBool,
    /// True while the last flush attempt failed — dirty pages may not be
    /// on disk. A later fully-successful flush clears it (the dirty bits
    /// were kept, so the retry rewrote everything).
    poisoned: AtomicBool,
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk`.
    pub fn new(disk: DiskManager, capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            disk,
            frames: (0..capacity)
                .map(|_| Arc::new(RwLock::new(Page::zeroed())))
                .collect(),
            pins: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            dirty: (0..capacity).map(|_| AtomicBool::new(false)).collect(),
            state: Mutex::new(PoolState {
                table: HashMap::with_capacity(capacity),
                meta: vec![FrameMeta::default(); capacity],
                hand: 0,
            }),
            io_reads: AtomicU64::new(0),
            fetches: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            wal: Mutex::new(None),
            closed: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Attach the database WAL: from now on the log is synced before any
    /// dirty page write-back, so a torn data page is always covered by a
    /// durable full-page image.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        *self.wal.lock().unwrap_or_else(|e| e.into_inner()) = Some(wal);
    }

    /// Enforce write-ahead before a dirty page hits disk.
    fn write_ahead(&self) -> StoreResult<()> {
        let wal = self.wal.lock().unwrap_or_else(|e| e.into_inner()).clone();
        match wal {
            Some(w) => w.sync_for_write_ahead(),
            None => Ok(()),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    /// Total pages read from disk so far (cache misses).
    pub fn io_reads(&self) -> u64 {
        self.io_reads.load(Ordering::Relaxed)
    }

    /// Total pages written to disk so far (write-backs and appends).
    pub fn io_writes(&self) -> u64 {
        self.disk.io_writes()
    }

    /// Total fsyncs issued on the heap file so far.
    pub fn io_syncs(&self) -> u64 {
        self.disk.io_syncs()
    }

    /// Total [`BufferPool::fetch`] calls so far (hits + misses).
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Resident pages displaced by clock eviction so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Snapshot of this pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fetches: self.fetches(),
            io_reads: self.io_reads(),
            io_writes: self.io_writes(),
            io_syncs: self.io_syncs(),
            evictions: self.evictions(),
            capacity: self.capacity() as u64,
        }
    }

    /// Page ids currently resident, sorted — test observability.
    pub fn cached_pages(&self) -> Vec<PageId> {
        let state = self.lock_state();
        let mut ids: Vec<PageId> = state.table.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pin page `id`, reading it from disk on a miss. The returned guard
    /// keeps the page pinned (unevictable) until dropped. Hits touch the
    /// pool mutex only for the table lookup; the miss path performs its
    /// disk read outside the mutex (see the type-level docs).
    pub fn fetch(&self, id: PageId) -> StoreResult<PageGuard<'_>> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock_state();
        let mut attempts = 0;
        let idx = loop {
            if let Some(&idx) = state.table.get(&id) {
                self.pins[idx].fetch_add(1, Ordering::Acquire);
                state.meta[idx].referenced = true;
                return Ok(self.guard(idx));
            }
            // Every frame pinned is usually transient (concurrent fetches
            // mid-flight): yield and retry before giving up, re-checking
            // the table since the page may have landed meanwhile.
            match self.claim_frame(&mut state) {
                Ok(idx) => break idx,
                Err(e @ StoreError::Capacity(_)) => {
                    attempts += 1;
                    if attempts > EXHAUSTED_RETRIES {
                        return Err(e);
                    }
                    drop(state);
                    std::thread::yield_now();
                    state = self.lock_state();
                }
                Err(e) => return Err(e),
            }
        };
        // Latch the frame before releasing the map-guard, then read outside
        // the guard: other fetches proceed concurrently with the I/O.
        let mut frame = self.frames[idx].write().unwrap_or_else(|e| e.into_inner());
        drop(state);
        if let Err(e) = self.disk.read_page(id, &mut frame) {
            drop(frame);
            self.release_claim(idx);
            return Err(e);
        }
        drop(frame);
        self.io_reads.fetch_add(1, Ordering::Relaxed);
        // Publish the mapping — unless a concurrent miss on the same id won
        // the race, in which case adopt the winner's frame and release ours
        // (one redundant read, never two frames mapped to one page).
        let mut state = self.lock_state();
        if let Some(&winner) = state.table.get(&id) {
            self.pins[winner].fetch_add(1, Ordering::Acquire);
            state.meta[winner].referenced = true;
            drop(state);
            self.release_claim(idx);
            return Ok(self.guard(winner));
        }
        state.meta[idx] = FrameMeta {
            page: Some(id),
            referenced: true,
        };
        state.table.insert(id, idx);
        Ok(self.guard(idx))
    }

    /// Append a fresh page to the heap file and pin it, returning its id
    /// and a guard over the (already dirty-free, just-written) frame.
    /// A frame is secured *before* the disk append, so a pool with every
    /// frame pinned fails cleanly without having written phantom bytes.
    /// The append stays under the map-guard — appends are rare and the id
    /// must be mapped atomically with its assignment.
    pub fn allocate(&self, page: Page) -> StoreResult<(PageId, PageGuard<'_>)> {
        let mut state = self.lock_state();
        let mut attempts = 0;
        let idx = loop {
            match self.claim_frame(&mut state) {
                Ok(idx) => break idx,
                Err(e @ StoreError::Capacity(_)) => {
                    attempts += 1;
                    if attempts > EXHAUSTED_RETRIES {
                        return Err(e);
                    }
                    drop(state);
                    std::thread::yield_now();
                    state = self.lock_state();
                }
                Err(e) => return Err(e),
            }
        };
        // Write-ahead applies to appends too: the new page carries an LSN,
        // and letting it reach disk before the log would let a crash
        // truncate the WAL below an LSN that is already on a data page
        // (a later image at that LSN would then be skipped as "applied").
        let id = match self
            .write_ahead()
            .and_then(|()| self.disk.allocate_page(&page))
        {
            Ok(id) => id,
            Err(e) => {
                drop(state);
                self.release_claim(idx);
                return Err(e);
            }
        };
        state.meta[idx] = FrameMeta {
            page: Some(id),
            referenced: true,
        };
        state.table.insert(id, idx);
        // Latch before unmapping the guard so a concurrent fetch of `id`
        // blocks on the latch until the contents are in place.
        let mut frame = self.frames[idx].write().unwrap_or_else(|e| e.into_inner());
        drop(state);
        *frame = page;
        drop(frame);
        Ok((id, self.guard(idx)))
    }

    /// Select a victim frame, write its page back if dirty, detach it from
    /// the page table and pin it for the caller. The write-back happens
    /// under the map-guard, atomically with the unmapping: once the guard
    /// drops, any re-fetch of the evicted page reads the written-back
    /// bytes. On error the frame is left cleanly empty and unpinned.
    fn claim_frame(&self, state: &mut PoolState) -> StoreResult<usize> {
        let idx = self.evict_victim(state)?;
        // pins == 0 guarantees no outstanding guard holds the frame latch.
        let old = state.meta[idx];
        if let Some(old_id) = old.page {
            if self.dirty[idx].swap(false, Ordering::Acquire) {
                if let Err(e) = self.write_ahead().and_then(|()| {
                    let frame = self.frames[idx].read().unwrap_or_else(|e| e.into_inner());
                    self.disk.write_page(old_id, &frame)
                }) {
                    // Failed write-back: restore the bit so the page is
                    // retried, and leave the frame mapped and unpinned.
                    self.dirty[idx].store(true, Ordering::Release);
                    return Err(e);
                }
            }
            state.table.remove(&old_id);
            state.meta[idx] = FrameMeta::default();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.pins[idx].store(1, Ordering::Release);
        Ok(idx)
    }

    /// Abandon a claimed-but-unpublished frame (failed I/O, lost race).
    fn release_claim(&self, idx: usize) {
        self.pins[idx].store(0, Ordering::Release);
    }

    /// Clock (second-chance) victim selection over unpinned frames.
    fn evict_victim(&self, state: &mut PoolState) -> StoreResult<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n {
            let idx = state.hand;
            state.hand = (state.hand + 1) % n;
            if self.pins[idx].load(Ordering::Acquire) > 0 {
                continue;
            }
            let meta = &mut state.meta[idx];
            if meta.referenced {
                meta.referenced = false;
                continue;
            }
            return Ok(idx);
        }
        Err(StoreError::Capacity(format!(
            "buffer pool exhausted: all {n} frames pinned"
        )))
    }

    fn guard(&self, idx: usize) -> PageGuard<'_> {
        PageGuard {
            pool: self,
            idx,
            frame: Arc::clone(&self.frames[idx]),
        }
    }

    /// Lock-free: every guard drop is one atomic decrement.
    fn unpin(&self, idx: usize) {
        let prev = self.pins[idx].fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "unpin without pin");
    }

    /// Write every dirty frame back to disk *without* syncing. On error
    /// the failing frame keeps its dirty bit, so a retry rewrites it.
    /// The dirty bit is cleared *before* the frame is copied out
    /// (swap-then-write): a writer racing this flush re-sets the bit on
    /// its guard release, so its mutation is rewritten by the next flush
    /// instead of being lost under a clear-after-write protocol.
    pub fn write_back_all(&self) -> StoreResult<()> {
        let state = self.lock_state();
        let mut wrote_ahead = false;
        for idx in 0..self.frames.len() {
            let meta = state.meta[idx];
            if let Some(id) = meta.page {
                if !self.dirty[idx].swap(false, Ordering::Acquire) {
                    continue;
                }
                if !wrote_ahead {
                    if let Err(e) = self.write_ahead() {
                        self.dirty[idx].store(true, Ordering::Release);
                        return Err(e);
                    }
                    wrote_ahead = true;
                }
                let result = {
                    let frame = self.frames[idx].read().unwrap_or_else(|e| e.into_inner());
                    self.disk.write_page(id, &frame)
                };
                if let Err(e) = result {
                    self.dirty[idx].store(true, Ordering::Release);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Write every dirty frame back to disk and sync the file. Failure
    /// poisons the pool ([`BufferPool::is_poisoned`]); a later successful
    /// flush clears the poison, since dirty bits survive failed writes.
    pub fn flush_all(&self) -> StoreResult<()> {
        let result = self.write_back_all().and_then(|()| self.disk.sync());
        self.poisoned.store(result.is_err(), Ordering::SeqCst);
        result
    }

    /// Did the last flush attempt fail (dirty pages may not be on disk)?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Flush-and-close: the explicit, fallible form of the drop hook.
    /// After a successful close the drop hook does nothing; a failed
    /// close leaves the pool poisoned and reports the error instead of
    /// swallowing it the way `Drop` must.
    pub fn close(&self) -> StoreResult<()> {
        let result = self.flush_all();
        if result.is_ok() {
            self.closed.store(true, Ordering::SeqCst);
        }
        result
    }

    /// Replace page `id` wholesale, writing through to disk and keeping
    /// any resident frame coherent. Recovery uses this to re-materialize
    /// pages from WAL full-page images — the target may be torn (so it
    /// cannot be fetched) or one past the end of the file (extend).
    pub fn overwrite(&self, id: PageId, page: Page) -> StoreResult<()> {
        let state = self.lock_state();
        if let Some(&idx) = state.table.get(&id) {
            let mut frame = self.frames[idx].write().unwrap_or_else(|e| e.into_inner());
            *frame = page.clone();
        }
        // Hold the map-guard across the write so a concurrent fetch of a
        // non-resident `id` cannot read the file mid-overwrite.
        self.disk.write_page(id, &page)
    }

    /// Drop any resident frames for pages `>= first` (after the disk file
    /// was truncated to `first` pages). The caller must ensure they are
    /// unpinned — recovery is single-threaded.
    pub fn discard_from(&self, first: PageId) {
        let mut state = self.lock_state();
        let stale: Vec<(PageId, usize)> = state
            .table
            .iter()
            .filter(|(id, _)| **id >= first)
            .map(|(id, idx)| (*id, *idx))
            .collect();
        for (id, idx) in stale {
            debug_assert_eq!(self.pins[idx].load(Ordering::Acquire), 0);
            state.table.remove(&id);
            state.meta[idx] = FrameMeta::default();
            // A stale dirty bit would write a truncated page back.
            self.dirty[idx].store(false, Ordering::Release);
        }
    }
}

impl Drop for BufferPool {
    /// Best-effort dirty-page write-back on drop. An explicit
    /// [`BufferPool::close`] beforehand makes this a no-op; without one,
    /// a failure here cannot be returned, so it is reported on stderr
    /// and the pool left poisoned rather than silently swallowed.
    fn drop(&mut self) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        if let Err(e) = self.flush_all() {
            eprintln!(
                "temporal-store: buffer pool drop could not flush {}: {e} \
                 (use close() to handle this error)",
                self.disk.path().display()
            );
        }
    }
}

/// A pinned page. Dropping the guard unpins the frame; `write()` access
/// marks the page dirty so the pool writes it back before reuse.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    idx: usize,
    frame: Arc<RwLock<Page>>,
}

impl PageGuard<'_> {
    /// Shared read access to the pinned page.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write access. The page is marked dirty when the returned
    /// guard is *released* (while the frame latch is still held), so a
    /// concurrent flush can never clear the dirty bit between the mark
    /// and the mutation — see the pool's swap-then-write protocol.
    pub fn write(&self) -> PageWriteGuard<'_> {
        PageWriteGuard {
            dirty: &self.pool.dirty[self.idx],
            guard: self.frame.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// Exclusive latched access to a pinned page. Dropping the guard sets the
/// frame's dirty bit *before* the latch is released, which is the ordering
/// the flush protocol relies on (a flusher blocked on the latch always
/// observes the bit the mutation set).
pub struct PageWriteGuard<'a> {
    dirty: &'a AtomicBool,
    guard: RwLockWriteGuard<'a, Page>,
}

impl std::ops::Deref for PageWriteGuard<'_> {
    type Target = Page;

    fn deref(&self) -> &Page {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Page {
        &mut self.guard
    }
}

impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        // Fields drop after this body, so the latch in `guard` is still
        // held when the dirty bit lands.
        self.dirty.store(true, Ordering::Release);
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn pool(name: &str, pages: u32, capacity: usize) -> (BufferPool, PathBuf) {
        let dir = std::env::temp_dir().join("talign_store_buffer_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let disk = DiskManager::open(&path).unwrap();
        for i in 0..pages {
            let mut p = Page::init(0);
            p.insert(format!("page-{i}").as_bytes()).unwrap();
            disk.allocate_page(&p).unwrap();
        }
        (BufferPool::new(disk, capacity), path)
    }

    #[test]
    fn hit_does_not_reread_from_disk() {
        let (pool, path) = pool("hits.heap", 2, 2);
        {
            let g = pool.fetch(0).unwrap();
            assert_eq!(g.read().record(0).unwrap(), b"page-0");
        }
        assert_eq!(pool.io_reads(), 1);
        let _ = pool.fetch(0).unwrap();
        assert_eq!(pool.io_reads(), 1, "second fetch must hit the cache");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn clock_evicts_in_order_once_unreferenced() {
        let (pool, path) = pool("clock.heap", 4, 3);
        for i in 0..3 {
            pool.fetch(i).unwrap();
        }
        assert_eq!(pool.cached_pages(), vec![0, 1, 2]);
        // All reference bits set: the hand clears 0,1,2 then takes frame 0.
        pool.fetch(3).unwrap();
        assert_eq!(pool.cached_pages(), vec![1, 2, 3]);
        // Next victim continues from the hand: frame 1 (page 1).
        pool.fetch(0).unwrap();
        assert_eq!(pool.cached_pages(), vec![0, 2, 3]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, path) = pool("pins.heap", 3, 2);
        let g0 = pool.fetch(0).unwrap();
        let _g1 = pool.fetch(1).unwrap();
        // Both frames pinned: fetching a third page must fail…
        assert!(matches!(pool.fetch(2), Err(StoreError::Capacity(_))));
        // …until a pin is released.
        drop(g0);
        pool.fetch(2).unwrap();
        let mut cached = pool.cached_pages();
        cached.sort_unstable();
        assert_eq!(cached, vec![1, 2]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn dirty_pages_written_back_on_eviction_and_flush() {
        let (pool, path) = pool("dirty.heap", 2, 1);
        {
            let g = pool.fetch(0).unwrap();
            g.write().insert(b"extra").unwrap();
        }
        // Evict page 0 by fetching page 1 through the single frame.
        pool.fetch(1).unwrap();
        // Bypass the pool: the write-back must be on disk.
        let mut raw = Page::zeroed();
        pool.disk().read_page(0, &mut raw).unwrap();
        assert_eq!(raw.record(1).unwrap(), b"extra");

        // And flush_all covers the not-yet-evicted case.
        {
            let g = pool.fetch(1).unwrap();
            g.write().insert(b"more").unwrap();
        }
        pool.flush_all().unwrap();
        pool.disk().read_page(1, &mut raw).unwrap();
        assert_eq!(raw.record(1).unwrap(), b"more");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn drop_flushes_dirty_pages() {
        let (pool, path) = pool("dropflush.heap", 1, 1);
        {
            let g = pool.fetch(0).unwrap();
            g.write().insert(b"persisted-on-drop").unwrap();
        }
        drop(pool);
        let disk = DiskManager::open(&path).unwrap();
        let mut raw = Page::zeroed();
        disk.read_page(0, &mut raw).unwrap();
        assert_eq!(raw.record(1).unwrap(), b"persisted-on-drop");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_fetches_stream_correct_pages() {
        // 8 workers hammer a 3-frame pool over 12 pages (hits, misses,
        // evictions and same-page races all occur); every fetch must
        // observe the right contents, and pins must drain back to zero.
        let (pool, path) = pool("concurrent.heap", 12, 3);
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let id = ((i * 7 + w * 5) % 12) as PageId;
                        let g = pool.fetch(id).unwrap();
                        assert_eq!(
                            g.read().record(0).unwrap(),
                            format!("page-{id}").as_bytes(),
                            "worker {w} iteration {i}"
                        );
                    }
                });
            }
        });
        for (idx, pin) in pool.pins.iter().enumerate() {
            assert_eq!(pin.load(Ordering::Acquire), 0, "frame {idx} still pinned");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_writes_survive_eviction_pressure() {
        // Writers dirty distinct pages through a pool with heavy eviction;
        // after a flush, the heap file must hold every write.
        let (pool, path) = pool("concwrite.heap", 8, 2);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..3u64 {
                        for p in 0..2u64 {
                            let id = (w * 2 + p) as PageId;
                            let g = pool.fetch(id).unwrap();
                            g.write()
                                .insert(format!("w{w}-r{round}-p{p}").as_bytes())
                                .unwrap();
                        }
                    }
                });
            }
        });
        pool.flush_all().unwrap();
        let mut raw = Page::zeroed();
        for w in 0..4u64 {
            for p in 0..2u64 {
                let id = (w * 2 + p) as PageId;
                pool.disk().read_page(id, &mut raw).unwrap();
                // Record 0 is the seed; records 1..=3 are the three rounds.
                assert_eq!(
                    raw.record(3).unwrap(),
                    format!("w{w}-r2-p{p}").as_bytes(),
                    "page {id}"
                );
            }
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn close_flushes_and_disarms_the_drop_hook() {
        let (pool, path) = pool("close.heap", 1, 1);
        {
            let g = pool.fetch(0).unwrap();
            g.write().insert(b"closed-cleanly").unwrap();
        }
        let (writes_before, syncs_before) = (pool.io_writes(), pool.io_syncs());
        pool.close().unwrap();
        assert!(!pool.is_poisoned());
        assert_eq!(pool.io_writes(), writes_before + 1, "one dirty write-back");
        assert_eq!(pool.io_syncs(), syncs_before + 1);
        drop(pool);
        let disk = DiskManager::open(&path).unwrap();
        let mut raw = Page::zeroed();
        disk.read_page(0, &mut raw).unwrap();
        assert_eq!(raw.record(1).unwrap(), b"closed-cleanly");
        drop(disk);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn overwrite_extends_and_stays_cache_coherent() {
        let (pool, path) = pool("overwrite.heap", 2, 2);
        // Make page 0 resident, then overwrite it: both the cached frame
        // and the disk copy must show the replacement.
        {
            let g = pool.fetch(0).unwrap();
            assert_eq!(g.read().record(0).unwrap(), b"page-0");
        }
        let mut repl = Page::init(0);
        repl.insert(b"replaced").unwrap();
        pool.overwrite(0, repl).unwrap();
        {
            let g = pool.fetch(0).unwrap();
            assert_eq!(g.read().record(0).unwrap(), b"replaced");
        }
        let mut raw = Page::zeroed();
        pool.disk().read_page(0, &mut raw).unwrap();
        assert_eq!(raw.record(0).unwrap(), b"replaced");
        // Overwriting one past the end extends the file.
        let mut fresh = Page::init(0);
        fresh.insert(b"appended").unwrap();
        pool.overwrite(2, fresh).unwrap();
        assert_eq!(pool.disk().page_count(), 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn discard_from_forgets_truncated_pages() {
        let (pool, path) = pool("discard.heap", 3, 3);
        for i in 0..3 {
            pool.fetch(i).unwrap();
        }
        pool.disk().truncate_pages(1).unwrap();
        pool.discard_from(1);
        assert_eq!(pool.cached_pages(), vec![0]);
        assert!(pool.fetch(2).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pool_smaller_than_file_streams_every_page() {
        let (pool, path) = pool("stream.heap", 8, 2);
        for i in 0..8 {
            let g = pool.fetch(i).unwrap();
            assert_eq!(
                g.read().record(0).unwrap(),
                format!("page-{i}").as_bytes(),
                "page {i}"
            );
        }
        assert_eq!(pool.io_reads(), 8);
        assert_eq!(pool.cached_pages().len(), 2);
        std::fs::remove_file(path).unwrap();
    }
}
