//! Vectorized expression evaluation: one expression-tree walk per batch.
//!
//! [`Expr::eval`] re-walks the expression tree for every row; in the hot
//! loops of a pipelined plan that interpretation overhead dominates.
//! [`Expr::eval_batch`] walks the tree **once** and evaluates each node
//! over a whole batch in a tight loop, producing one value column per node.
//!
//! The batch path is row-for-row identical to the row path, including the
//! short-circuit rules: the row evaluator never evaluates the right side
//! of an `AND` whose left side is `false` (so an error lurking there never
//! surfaces), never evaluates `COALESCE` arguments past the first non-NULL,
//! and stops `GREATEST`/`LEAST` at the first NULL argument. The batch
//! evaluator reproduces this with *selection masks*: each sub-expression is
//! evaluated only for the rows where the row evaluator would evaluate it;
//! unselected slots carry a NULL placeholder that no combiner reads. The
//! one permitted divergence is *which* error surfaces when several rows of
//! a batch would fail: the row path reports the first failing row, the
//! batch path the first failing expression node.

use crate::error::{EngineError, EngineResult};
use crate::expr::eval::{bool_pair, eval_cmp, kleene_and, kleene_not};
use crate::expr::{ArithOp, CmpOp, Expr, Func};
use crate::tuple::Row;
use crate::value::{num_add, num_div, num_mul, num_sub, Value};

#[inline]
fn live(mask: Option<&[bool]>, i: usize) -> bool {
    mask.is_none_or(|m| m[i])
}

/// One operand of a compiled simple comparison.
#[derive(Clone, Copy)]
pub(crate) enum PredOperand<'a> {
    Col(usize),
    Lit(&'a Value),
}

impl<'a> PredOperand<'a> {
    fn of(e: &Expr) -> Option<PredOperand<'_>> {
        match e {
            Expr::Col(i) => Some(PredOperand::Col(*i)),
            Expr::Lit(v) => Some(PredOperand::Lit(v)),
            _ => None,
        }
    }

    #[inline]
    fn resolve<'r>(&'r self, row: &'r [Value]) -> EngineResult<&'r Value> {
        match self {
            PredOperand::Col(i) => row.get(*i).ok_or_else(|| {
                EngineError::Internal(format!(
                    "column index {i} out of bounds for row of width {}",
                    row.len()
                ))
            }),
            PredOperand::Lit(v) => Ok(v),
        }
    }

    /// Resolve against a *logical* concatenation `left ++ right` without
    /// materializing it — late materialization for join candidates.
    #[inline]
    fn resolve_pair<'r>(
        &'r self,
        left: &'r [Value],
        right: &'r [Value],
        left_width: usize,
    ) -> EngineResult<&'r Value> {
        match self {
            PredOperand::Col(i) if *i < left_width => left.get(*i).ok_or_else(|| {
                EngineError::Internal(format!("column index {i} out of bounds for join pair"))
            }),
            PredOperand::Col(i) => right.get(*i - left_width).ok_or_else(|| {
                EngineError::Internal(format!("column index {i} out of bounds for join pair"))
            }),
            PredOperand::Lit(v) => Ok(v),
        }
    }
}

/// A predicate compiled for batch evaluation: a conjunction of simple
/// comparisons (`Col/Lit op Col/Lit`), evaluated left to right over value
/// references with the row path's short-circuit order. Comparisons only
/// yield `Bool`/`NULL`, so the Kleene conjunction reduces to "every
/// conjunct is exactly TRUE" — bit-for-bit the row evaluator's
/// `eval_pred`, with no tree walk, no `Box` chasing and no value clones.
pub(crate) struct CompiledPred<'a> {
    conjuncts: Vec<(CmpOp, PredOperand<'a>, PredOperand<'a>)>,
}

impl<'a> CompiledPred<'a> {
    /// `None` when the predicate has a shape the fast path cannot prove
    /// equivalent (function calls, arithmetic, OR, …) — callers fall back
    /// to the general evaluator.
    pub(crate) fn compile(expr: &'a Expr) -> Option<CompiledPred<'a>> {
        let mut conjuncts = Vec::new();
        for c in expr.conjuncts() {
            match c {
                Expr::Cmp(op, a, b) => {
                    conjuncts.push((*op, PredOperand::of(a)?, PredOperand::of(b)?));
                }
                _ => return None,
            }
        }
        Some(CompiledPred { conjuncts })
    }

    /// One conjunct over resolved values. Integer pairs — every temporal
    /// overlap/split-point/equality test — compare inline; everything else
    /// goes through the general [`eval_cmp`] (identical results: the inline
    /// arm mirrors `sql_cmp`'s `(Int, Int)` case, and NULL compares to
    /// nothing either way).
    #[inline]
    fn cmp_true(op: CmpOp, va: &Value, vb: &Value) -> bool {
        match (va, vb) {
            (Value::Int(x), Value::Int(y)) => match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            },
            _ => eval_cmp(op, va, vb) == Value::Bool(true),
        }
    }

    /// The predicate over one row (`eval_pred`-identical).
    #[inline]
    pub(crate) fn matches(&self, row: &[Value]) -> EngineResult<bool> {
        for (op, a, b) in &self.conjuncts {
            if !Self::cmp_true(*op, a.resolve(row)?, b.resolve(row)?) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The predicate over the logical concatenation of a join pair,
    /// without building the combined row.
    #[inline]
    pub(crate) fn matches_pair(
        &self,
        left: &[Value],
        right: &[Value],
        left_width: usize,
    ) -> EngineResult<bool> {
        for (op, a, b) in &self.conjuncts {
            let va = a.resolve_pair(left, right, left_width)?;
            let vb = b.resolve_pair(left, right, left_width)?;
            if !Self::cmp_true(*op, va, vb) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

fn any_live(mask: Option<&[bool]>, n: usize) -> bool {
    match mask {
        None => n > 0,
        Some(m) => m.iter().any(|&x| x),
    }
}

impl Expr {
    /// Evaluate against every row of a batch at once. Returns one value per
    /// row, in row order — exactly what per-row [`Expr::eval`] calls would
    /// produce.
    pub fn eval_batch(&self, rows: &[Row]) -> EngineResult<Vec<Value>> {
        self.eval_batch_masked(rows, None)
    }

    /// Evaluate as a predicate over a batch: NULL ⇒ `false`, as in SQL
    /// `WHERE`/`ON` clauses (the batch counterpart of [`Expr::eval_pred`]).
    ///
    /// Predicates that are conjunctions of simple comparisons (the shape of
    /// every reduced temporal condition: equi residuals, interval overlaps,
    /// split-point bounds) take a compiled fast path that evaluates over
    /// value *references* in one pass — no per-node value columns at all.
    pub fn eval_pred_batch(&self, rows: &[Row]) -> EngineResult<Vec<bool>> {
        if let Some(conjuncts) = CompiledPred::compile(self) {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                out.push(conjuncts.matches(row.values())?);
            }
            return Ok(out);
        }
        let vals = self.eval_batch(rows)?;
        let mut out = Vec::with_capacity(vals.len());
        for v in vals {
            match v {
                Value::Bool(b) => out.push(b),
                Value::Null => out.push(false),
                other => {
                    return Err(EngineError::TypeError(format!(
                        "predicate evaluated to {}, expected bool",
                        other.type_name()
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Masked batch evaluation: compute this expression for the rows where
    /// `mask` is true (`None` = all rows). Slots with a false mask hold
    /// `Value::Null` placeholders and are never inspected by callers.
    fn eval_batch_masked(&self, rows: &[Row], mask: Option<&[bool]>) -> EngineResult<Vec<Value>> {
        let n = rows.len();
        // Unmasked fast paths for the projection shapes the temporal
        // reductions produce (comparisons and GREATEST/LEAST over columns
        // and literals): evaluate over value references in one pass, with
        // no per-operand column materialization. Column and literal
        // operands cannot fail, so the row path's argument short-circuits
        // are unobservable here and the results are identical.
        if mask.is_none() {
            match self {
                Expr::Cmp(op, a, b) => {
                    if let (Some(a), Some(b)) = (PredOperand::of(a), PredOperand::of(b)) {
                        let mut out = Vec::with_capacity(n);
                        for row in rows {
                            let vals = row.values();
                            out.push(eval_cmp(*op, a.resolve(vals)?, b.resolve(vals)?));
                        }
                        return Ok(out);
                    }
                }
                Expr::Func(f @ (Func::Greatest | Func::Least), args) if !args.is_empty() => {
                    let operands: Option<Vec<PredOperand<'_>>> =
                        args.iter().map(PredOperand::of).collect();
                    if let Some(operands) = operands {
                        let mut out = Vec::with_capacity(n);
                        'rows: for row in rows {
                            let vals = row.values();
                            let mut best = operands[0].resolve(vals)?;
                            if best.is_null() {
                                out.push(Value::Null);
                                continue;
                            }
                            for o in &operands[1..] {
                                let v = o.resolve(vals)?;
                                if v.is_null() {
                                    out.push(Value::Null);
                                    continue 'rows;
                                }
                                let keep_new = match v.sql_cmp(best) {
                                    Some(ord) => {
                                        if *f == Func::Greatest {
                                            ord.is_gt()
                                        } else {
                                            ord.is_lt()
                                        }
                                    }
                                    None => {
                                        return Err(EngineError::TypeError(format!(
                                            "{} arguments are not comparable",
                                            f.name()
                                        )))
                                    }
                                };
                                if keep_new {
                                    best = v;
                                }
                            }
                            out.push(best.clone());
                        }
                        return Ok(out);
                    }
                }
                _ => {}
            }
        }
        match self {
            Expr::Col(i) => {
                let mut out = Vec::with_capacity(n);
                for (r, row) in rows.iter().enumerate() {
                    if live(mask, r) {
                        out.push(row.values().get(*i).cloned().ok_or_else(|| {
                            EngineError::Internal(format!(
                                "column index {i} out of bounds for row of width {}",
                                row.len()
                            ))
                        })?);
                    } else {
                        out.push(Value::Null);
                    }
                }
                Ok(out)
            }
            Expr::Name(nm) => Err(EngineError::Internal(format!(
                "unresolved column name '{nm}' reached the executor — \
                 resolve the expression against the input schema first"
            ))),
            Expr::Lit(v) => Ok(vec![v.clone(); n]),
            Expr::Cmp(op, a, b) => {
                let va = a.eval_batch_masked(rows, mask)?;
                let vb = b.eval_batch_masked(rows, mask)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if live(mask, i) {
                        eval_cmp(*op, &va[i], &vb[i])
                    } else {
                        Value::Null
                    });
                }
                Ok(out)
            }
            Expr::And(a, b) => {
                // Kleene AND: false dominates NULL; the right side is only
                // evaluated where the left side is not false.
                let va = a.eval_batch_masked(rows, mask)?;
                let bmask: Vec<bool> = (0..n)
                    .map(|i| live(mask, i) && va[i] != Value::Bool(false))
                    .collect();
                let vb = b.eval_batch_masked(rows, Some(&bmask))?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    if !live(mask, i) {
                        out.push(Value::Null);
                    } else if va[i] == Value::Bool(false) || vb[i] == Value::Bool(false) {
                        out.push(Value::Bool(false));
                    } else if va[i].is_null() || vb[i].is_null() {
                        out.push(Value::Null);
                    } else {
                        out.push(bool_pair(&va[i], &vb[i], "AND", |x, y| x && y)?);
                    }
                }
                Ok(out)
            }
            Expr::Or(a, b) => {
                // Kleene OR: true dominates NULL; the right side is only
                // evaluated where the left side is not true.
                let va = a.eval_batch_masked(rows, mask)?;
                let bmask: Vec<bool> = (0..n)
                    .map(|i| live(mask, i) && va[i] != Value::Bool(true))
                    .collect();
                let vb = b.eval_batch_masked(rows, Some(&bmask))?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    if !live(mask, i) {
                        out.push(Value::Null);
                    } else if va[i] == Value::Bool(true) || vb[i] == Value::Bool(true) {
                        out.push(Value::Bool(true));
                    } else if va[i].is_null() || vb[i].is_null() {
                        out.push(Value::Null);
                    } else {
                        out.push(bool_pair(&va[i], &vb[i], "OR", |x, y| x || y)?);
                    }
                }
                Ok(out)
            }
            Expr::Not(a) => {
                let va = a.eval_batch_masked(rows, mask)?;
                let mut out = Vec::with_capacity(n);
                for (i, v) in va.into_iter().enumerate() {
                    out.push(if !live(mask, i) {
                        Value::Null
                    } else {
                        match v {
                            Value::Null => Value::Null,
                            Value::Bool(b) => Value::Bool(!b),
                            other => {
                                return Err(EngineError::TypeError(format!(
                                    "NOT applied to {}",
                                    other.type_name()
                                )))
                            }
                        }
                    });
                }
                Ok(out)
            }
            Expr::Neg(a) => {
                let va = a.eval_batch_masked(rows, mask)?;
                let mut out = Vec::with_capacity(n);
                for (i, v) in va.into_iter().enumerate() {
                    out.push(if !live(mask, i) {
                        Value::Null
                    } else {
                        match v {
                            Value::Null => Value::Null,
                            Value::Int(x) => Value::Int(x.checked_neg().ok_or_else(|| {
                                EngineError::Evaluation("integer overflow in negation".into())
                            })?),
                            Value::Double(d) => Value::Double(-d),
                            other => {
                                return Err(EngineError::TypeError(format!(
                                    "unary minus applied to {}",
                                    other.type_name()
                                )))
                            }
                        }
                    });
                }
                Ok(out)
            }
            Expr::Arith(op, a, b) => {
                let va = a.eval_batch_masked(rows, mask)?;
                let vb = b.eval_batch_masked(rows, mask)?;
                let f = match op {
                    ArithOp::Add => num_add,
                    ArithOp::Sub => num_sub,
                    ArithOp::Mul => num_mul,
                    ArithOp::Div => num_div,
                };
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if live(mask, i) {
                        f(&va[i], &vb[i])?
                    } else {
                        Value::Null
                    });
                }
                Ok(out)
            }
            Expr::Func(f, args) => eval_func_batch(*f, args, rows, mask),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval_batch_masked(rows, mask)?;
                let lo = low.eval_batch_masked(rows, mask)?;
                let hi = high.eval_batch_masked(rows, mask)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if live(mask, i) {
                        let ge_lo = eval_cmp(CmpOp::Ge, &v[i], &lo[i]);
                        let le_hi = eval_cmp(CmpOp::Le, &v[i], &hi[i]);
                        let both = kleene_and(&ge_lo, &le_hi);
                        if *negated {
                            kleene_not(&both)
                        } else {
                            both
                        }
                    } else {
                        Value::Null
                    });
                }
                Ok(out)
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval_batch_masked(rows, mask)?;
                let mut out = Vec::with_capacity(n);
                for (i, vi) in v.iter().enumerate() {
                    out.push(if live(mask, i) {
                        Value::Bool(vi.is_null() != *negated)
                    } else {
                        Value::Null
                    });
                }
                Ok(out)
            }
        }
    }
}

fn eval_func_batch(
    f: Func,
    args: &[Expr],
    rows: &[Row],
    mask: Option<&[bool]>,
) -> EngineResult<Vec<Value>> {
    let n = rows.len();
    // Arity errors surface only when the row path would actually evaluate
    // the call, i.e. when at least one row is selected.
    if !any_live(mask, n) {
        return Ok(vec![Value::Null; n]);
    }
    let arity = |want: usize| -> EngineResult<()> {
        if args.len() == want {
            Ok(())
        } else {
            Err(EngineError::TypeError(format!(
                "{} expects {want} argument(s), got {}",
                f.name(),
                args.len()
            )))
        }
    };
    match f {
        Func::Dur => {
            arity(2)?;
            let ts = args[0].eval_batch_masked(rows, mask)?;
            let te = args[1].eval_batch_masked(rows, mask)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(if live(mask, i) {
                    num_sub(&te[i], &ts[i])?
                } else {
                    Value::Null
                });
            }
            Ok(out)
        }
        Func::Greatest | Func::Least => {
            if args.is_empty() {
                return Err(EngineError::TypeError(format!(
                    "{} expects at least one argument",
                    f.name()
                )));
            }
            // A row "dies" at its first NULL argument (result NULL, later
            // arguments not evaluated for it), matching the row path.
            let mut alive: Vec<bool> = (0..n).map(|i| live(mask, i)).collect();
            let mut best: Vec<Value> = vec![Value::Null; n];
            for (k, a) in args.iter().enumerate() {
                if !alive.iter().any(|&x| x) {
                    break;
                }
                let vs = a.eval_batch_masked(rows, Some(&alive))?;
                for (i, v) in vs.into_iter().enumerate() {
                    if !alive[i] {
                        continue;
                    }
                    if v.is_null() {
                        best[i] = Value::Null;
                        alive[i] = false;
                    } else if k == 0 {
                        best[i] = v;
                    } else {
                        let keep_new = match v.sql_cmp(&best[i]) {
                            Some(o) => {
                                if f == Func::Greatest {
                                    o.is_gt()
                                } else {
                                    o.is_lt()
                                }
                            }
                            None => {
                                return Err(EngineError::TypeError(format!(
                                    "{} arguments are not comparable",
                                    f.name()
                                )))
                            }
                        };
                        if keep_new {
                            best[i] = v;
                        }
                    }
                }
            }
            Ok(best)
        }
        Func::Coalesce => {
            // A row "dies" at its first non-NULL argument; later arguments
            // are not evaluated for it, matching the row path.
            let mut alive: Vec<bool> = (0..n).map(|i| live(mask, i)).collect();
            let mut out: Vec<Value> = vec![Value::Null; n];
            for a in args {
                if !alive.iter().any(|&x| x) {
                    break;
                }
                let vs = a.eval_batch_masked(rows, Some(&alive))?;
                for (i, v) in vs.into_iter().enumerate() {
                    if alive[i] && !v.is_null() {
                        out[i] = v;
                        alive[i] = false;
                    }
                }
            }
            Ok(out)
        }
        Func::Abs => {
            arity(1)?;
            let vs = args[0].eval_batch_masked(rows, mask)?;
            let mut out = Vec::with_capacity(n);
            for (i, v) in vs.into_iter().enumerate() {
                out.push(if !live(mask, i) {
                    Value::Null
                } else {
                    match v {
                        Value::Null => Value::Null,
                        Value::Int(x) => Value::Int(x.checked_abs().ok_or_else(|| {
                            EngineError::Evaluation("integer overflow in abs".into())
                        })?),
                        Value::Double(d) => Value::Double(d.abs()),
                        other => {
                            return Err(EngineError::TypeError(format!(
                                "abs applied to {}",
                                other.type_name()
                            )))
                        }
                    }
                });
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn rows(vals: Vec<Vec<Value>>) -> Vec<Row> {
        vals.into_iter().map(Row::new).collect()
    }

    /// Batch evaluation must agree value-for-value with per-row evaluation.
    fn assert_matches_rowwise(e: &Expr, rs: &[Row]) {
        let batch = e.eval_batch(rs).unwrap();
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(batch[i], e.eval(r.values()).unwrap(), "row {i} of {e}");
        }
    }

    #[test]
    fn scalar_ops_match_rowwise() {
        let rs = rows(vec![
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(-3), Value::Null],
            vec![Value::Int(7), Value::Int(7)],
        ]);
        for e in [
            col(0).add(col(1)),
            col(0).sub(col(1)).mul(lit(2i64)),
            col(0).lt(col(1)),
            col(0).eq(col(1)),
            col(0).is_null(),
            col(1).is_not_null(),
            col(0).between(lit(0i64), col(1)),
            col(0).lt(col(1)).and(col(1).gt(lit(0i64))),
            col(0).lt(col(1)).or(col(1).is_null()),
            col(0).lt(col(1)).not(),
            Expr::Neg(Box::new(col(0))),
            Expr::Func(Func::Dur, vec![col(0), col(1)]),
            Expr::Func(Func::Greatest, vec![col(0), col(1)]),
            Expr::Func(Func::Least, vec![col(0), col(1)]),
            Expr::Func(Func::Coalesce, vec![col(0), col(1), lit(9i64)]),
            Expr::Func(Func::Abs, vec![col(0)]),
        ] {
            assert_matches_rowwise(&e, &rs);
        }
    }

    #[test]
    fn pred_batch_matches_rowwise() {
        let rs = rows(vec![
            vec![Value::Int(1)],
            vec![Value::Null],
            vec![Value::Int(5)],
        ]);
        let e = col(0).gt(lit(2i64));
        let batch = e.eval_pred_batch(&rs).unwrap();
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(batch[i], e.eval_pred(r.values()).unwrap());
        }
    }

    #[test]
    fn and_short_circuit_skips_errors_like_the_row_path() {
        // Row 0: left is false, so the erroring right side (`1 + 'x'`) is
        // never evaluated — in either path. Row 1 would error in both.
        let rs = rows(vec![vec![Value::Int(1), Value::str("x")]]);
        let e = col(0).gt(lit(5i64)).and(col(0).add(col(1)).gt(lit(0i64)));
        assert!(e.eval(rs[0].values()).is_ok());
        assert_eq!(e.eval_batch(&rs).unwrap(), vec![Value::Bool(false)]);
        let e = col(0).gt(lit(0i64)).and(col(0).add(col(1)).gt(lit(0i64)));
        assert!(e.eval(rs[0].values()).is_err());
        assert!(e.eval_batch(&rs).is_err());
    }

    #[test]
    fn or_short_circuit_skips_errors_like_the_row_path() {
        let rs = rows(vec![vec![Value::Int(1), Value::str("x")]]);
        let e = col(0).gt(lit(0i64)).or(col(0).add(col(1)).gt(lit(0i64)));
        assert!(e.eval(rs[0].values()).is_ok());
        assert_eq!(e.eval_batch(&rs).unwrap(), vec![Value::Bool(true)]);
    }

    #[test]
    fn coalesce_stops_at_first_non_null_like_the_row_path() {
        // The second argument would error (Int + Str), but the first is
        // non-NULL, so neither path evaluates it.
        let rs = rows(vec![vec![Value::Int(1), Value::str("x")]]);
        let e = Expr::Func(Func::Coalesce, vec![col(0), col(0).add(col(1))]);
        assert_eq!(e.eval(rs[0].values()).unwrap(), Value::Int(1));
        assert_eq!(e.eval_batch(&rs).unwrap(), vec![Value::Int(1)]);
    }

    #[test]
    fn empty_batch_evaluates_to_empty() {
        let e = col(0).add(lit(1i64));
        assert!(e.eval_batch(&[]).unwrap().is_empty());
        assert!(e.eval_pred_batch(&[]).unwrap().is_empty());
    }
}
