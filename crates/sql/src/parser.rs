//! Recursive-descent parser producing the AST of [`crate::ast`].
//!
//! Implements the grammar extension of Sec. 6.2: `ALIGN`/`NORMALIZE`
//! table references in the FROM clause, and `ABSORB` as a projection
//! quantifier.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::lex;
use crate::token::{Kw, Token};

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect(Token::Eof)?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        self.eat(&Token::Keyword(k))
    }

    fn expect(&mut self, t: Token) -> SqlResult<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {t}, found {}",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> SqlResult<()> {
        self.expect(Token::Keyword(k))
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> SqlResult<Statement> {
        if self.eat_kw(Kw::Explain) {
            let analyze = self.eat_kw(Kw::Analyze);
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                analyze,
                query: Box::new(inner),
            });
        }
        if self.eat_kw(Kw::Set) {
            let name = self.expect_ident()?;
            self.expect(Token::Eq)?;
            let value = match self.advance() {
                Token::Keyword(Kw::True) => SetValue::Bool(true),
                Token::Keyword(Kw::False) => SetValue::Bool(false),
                // `on` happens to lex as the ON keyword.
                Token::Keyword(Kw::On) => SetValue::Bool(true),
                Token::Ident(s) if s == "off" => SetValue::Bool(false),
                Token::Int(v) => SetValue::Int(v),
                // Other bare identifiers are string-valued settings, e.g.
                // `SET sync_mode = commit`.
                Token::Ident(s) => SetValue::Ident(s),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected on/off/true/false, an integer or an identifier, found {other}"
                    )))
                }
            };
            return Ok(Statement::Set { name, value });
        }
        if self.eat_kw(Kw::Create) {
            return self.create_table();
        }
        if self.eat_kw(Kw::Drop) {
            self.expect_kw(Kw::Table)?;
            let name = self.expect_ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw(Kw::Copy) {
            return self.copy();
        }
        if self.eat_kw(Kw::Insert) {
            return self.insert();
        }
        Ok(Statement::Select(self.select_stmt()?))
    }

    /// `INSERT INTO t VALUES (lit, …) [, (lit, …)]*` (INSERT already
    /// eaten). Values are literal-only: numbers (optionally signed),
    /// strings, booleans and NULL.
    fn insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Kw::Into)?;
        let table = self.expect_ident()?;
        self.expect_kw(Kw::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.insert_literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    /// One literal of a VALUES row.
    fn insert_literal(&mut self) -> SqlResult<AstExpr> {
        let negate = self.eat(&Token::Minus);
        match self.advance() {
            Token::Int(v) => Ok(AstExpr::IntLit(if negate { -v } else { v })),
            Token::Float(v) => Ok(AstExpr::FloatLit(if negate { -v } else { v })),
            Token::Str(s) if !negate => Ok(AstExpr::StringLit(s)),
            Token::Keyword(Kw::True) if !negate => Ok(AstExpr::BoolLit(true)),
            Token::Keyword(Kw::False) if !negate => Ok(AstExpr::BoolLit(false)),
            Token::Keyword(Kw::Null) if !negate => Ok(AstExpr::NullLit),
            other => Err(SqlError::Parse(format!(
                "VALUES accepts literals (number, string, true/false, NULL), found {other}"
            ))),
        }
    }

    /// `CREATE TABLE t (col type, …) [PERSISTED]` (CREATE already eaten).
    fn create_table(&mut self) -> SqlResult<Statement> {
        use temporal_engine::schema::DataType;
        self.expect_kw(Kw::Table)?;
        let name = self.expect_ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.expect_ident()?;
            let dtype = match ty.as_str() {
                "int" | "integer" | "bigint" => DataType::Int,
                "double" | "float" | "real" => DataType::Double,
                "bool" | "boolean" => DataType::Bool,
                "str" | "text" | "varchar" => DataType::Str,
                other => {
                    return Err(SqlError::Parse(format!(
                        "unknown column type '{other}' (use int, double, bool or str)"
                    )))
                }
            };
            columns.push((col, dtype));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        let persisted = self.eat_kw(Kw::Persisted);
        Ok(Statement::CreateTable {
            name,
            columns,
            persisted,
        })
    }

    /// `COPY t FROM 'path'` / `COPY t TO 'path'` (COPY already eaten).
    fn copy(&mut self) -> SqlResult<Statement> {
        let table = self.expect_ident()?;
        let direction = if self.eat_kw(Kw::From) {
            CopyDirection::From
        } else if self.eat_kw(Kw::To) {
            CopyDirection::To
        } else {
            return Err(SqlError::Parse(format!(
                "expected FROM or TO after COPY {table}, found {}",
                self.peek()
            )));
        };
        let path = match self.advance() {
            Token::Str(s) => s,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected a quoted file path, found {other}"
                )))
            }
        };
        Ok(Statement::Copy {
            table,
            path,
            direction,
        })
    }

    fn select_stmt(&mut self) -> SqlResult<SelectStmt> {
        let mut with = Vec::new();
        if self.eat_kw(Kw::With) {
            loop {
                let name = self.expect_ident()?;
                self.expect_kw(Kw::As)?;
                self.expect(Token::LParen)?;
                let q = self.select_stmt()?;
                self.expect(Token::RParen)?;
                with.push((name, q));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut stmt = self.select_core()?;
        stmt.with = with;
        Ok(stmt)
    }

    fn select_core(&mut self) -> SqlResult<SelectStmt> {
        self.expect_kw(Kw::Select)?;
        let mut stmt = SelectStmt::new();
        stmt.quantifier = if self.eat_kw(Kw::Distinct) {
            Quantifier::Distinct
        } else if self.eat_kw(Kw::Absorb) {
            Quantifier::Absorb
        } else {
            self.eat_kw(Kw::All);
            Quantifier::All
        };
        loop {
            stmt.items.push(self.select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        if self.eat_kw(Kw::From) {
            stmt.from = Some(self.table_ref_list()?);
        }
        if self.eat_kw(Kw::Where) {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Having) {
            return Err(SqlError::Parse("HAVING is not supported".into()));
        }
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw(Kw::Desc) {
                    true
                } else {
                    self.eat_kw(Kw::Asc);
                    false
                };
                stmt.order_by.push((e, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Limit) {
            match self.advance() {
                Token::Int(n) if n >= 0 => stmt.limit = Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected LIMIT count, found {other}"
                    )))
                }
            }
        }
        // Set-operation continuation (right-nested).
        let op = if self.eat_kw(Kw::Union) {
            Some(SetOp::Union)
        } else if self.eat_kw(Kw::Except) {
            Some(SetOp::Except)
        } else if self.eat_kw(Kw::Intersect) {
            Some(SetOp::Intersect)
        } else {
            None
        };
        if let Some(op) = op {
            if self.eat_kw(Kw::All) {
                return Err(SqlError::Parse(
                    "bag semantics (UNION/EXCEPT/INTERSECT ALL) is not supported; \
                     the temporal algebra is set based (paper Sec. 3.1)"
                        .into(),
                ));
            }
            let rhs = self.select_core()?;
            stmt.set_op = Some((op, Box::new(rhs)));
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let (Token::Ident(q), Token::Dot) = (self.peek().clone(), self.peek2().clone()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Star) {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Kw::As) {
            Some(self.expect_ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // bare alias: `SELECT Ts Us, …`
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- FROM clause -----------------------------------------------------

    fn table_ref_list(&mut self) -> SqlResult<TableRef> {
        let mut t = self.table_ref_join()?;
        while self.eat(&Token::Comma) {
            let rhs = self.table_ref_join()?;
            t = TableRef::Join {
                left: Box::new(t),
                right: Box::new(rhs),
                kind: JoinKind::Cross,
                on: None,
            };
        }
        Ok(t)
    }

    fn table_ref_join(&mut self) -> SqlResult<TableRef> {
        let mut t = self.table_ref_primary()?;
        loop {
            let kind = if self.eat_kw(Kw::Join) || self.eat_kw(Kw::Inner) {
                // INNER requires JOIN; plain JOIN is inner.
                if self.tokens[self.pos.saturating_sub(1)] == Token::Keyword(Kw::Inner) {
                    self.expect_kw(Kw::Join)?;
                }
                JoinKind::Inner
            } else if self.eat_kw(Kw::Left) {
                self.eat_kw(Kw::Outer);
                self.expect_kw(Kw::Join)?;
                JoinKind::Left
            } else if self.eat_kw(Kw::Right) {
                self.eat_kw(Kw::Outer);
                self.expect_kw(Kw::Join)?;
                JoinKind::Right
            } else if self.eat_kw(Kw::Full) {
                self.eat_kw(Kw::Outer);
                self.expect_kw(Kw::Join)?;
                JoinKind::Full
            } else if self.eat_kw(Kw::Cross) {
                self.expect_kw(Kw::Join)?;
                JoinKind::Cross
            } else {
                break;
            };
            let rhs = self.table_ref_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw(Kw::On)?;
                Some(self.expr()?)
            };
            t = TableRef::Join {
                left: Box::new(t),
                right: Box::new(rhs),
                kind,
                on,
            };
        }
        Ok(t)
    }

    fn table_ref_primary(&mut self) -> SqlResult<TableRef> {
        if self.eat(&Token::LParen) {
            // Subquery or parenthesized (possibly aligned/normalized) table.
            if matches!(
                self.peek(),
                Token::Keyword(Kw::Select) | Token::Keyword(Kw::With)
            ) {
                let q = self.select_stmt()?;
                self.expect(Token::RParen)?;
                self.eat_kw(Kw::As);
                let alias = self.expect_ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(q),
                    alias,
                });
            }
            let left = self.table_ref_primary()?;
            if self.eat_kw(Kw::Align) {
                let right = self.table_ref_primary()?;
                self.expect_kw(Kw::On)?;
                let on = self.expr()?;
                self.expect(Token::RParen)?;
                let alias = self.opt_alias();
                return Ok(TableRef::Align {
                    left: Box::new(left),
                    right: Box::new(right),
                    on,
                    alias,
                });
            }
            if self.eat_kw(Kw::Normalize) {
                let right = self.table_ref_primary()?;
                self.expect_kw(Kw::Using)?;
                self.expect(Token::LParen)?;
                let mut using = Vec::new();
                if !self.eat(&Token::RParen) {
                    loop {
                        using.push(self.expect_ident()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(Token::RParen)?;
                }
                self.expect(Token::RParen)?;
                let alias = self.opt_alias();
                return Ok(TableRef::Normalize {
                    left: Box::new(left),
                    right: Box::new(right),
                    using,
                    alias,
                });
            }
            // plain parenthesized table ref
            self.expect(Token::RParen)?;
            return Ok(left);
        }
        let name = self.expect_ident()?;
        // `t AS OF <expr>` — the OF lookahead keeps `t AS x` aliases working.
        let as_of = if matches!(self.peek(), Token::Keyword(Kw::As))
            && matches!(self.peek2(), Token::Keyword(Kw::Of))
        {
            self.eat_kw(Kw::As);
            self.eat_kw(Kw::Of);
            Some(self.add_expr()?)
        } else {
            None
        };
        let alias = self.opt_alias();
        Ok(TableRef::Named { name, alias, as_of })
    }

    fn opt_alias(&mut self) -> Option<String> {
        if self.eat_kw(Kw::As) {
            return self.expect_ident().ok();
        }
        if let Token::Ident(_) = self.peek() {
            return self.expect_ident().ok();
        }
        None
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> SqlResult<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<AstExpr> {
        let mut e = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let r = self.and_expr()?;
            e = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> SqlResult<AstExpr> {
        let mut e = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let r = self.not_expr()?;
            e = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> SqlResult<AstExpr> {
        if self.eat_kw(Kw::Not) {
            let inner = self.not_expr()?;
            // NOT EXISTS / NOT BETWEEN get dedicated nodes.
            return Ok(match inner {
                AstExpr::Exists { query, negated } => AstExpr::Exists {
                    query,
                    negated: !negated,
                },
                other => AstExpr::Not(Box::new(other)),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> SqlResult<AstExpr> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Token::Eq => Some(BinOp::Eq),
            Token::Ne => Some(BinOp::Ne),
            Token::Lt => Some(BinOp::Lt),
            Token::Le => Some(BinOp::Le),
            Token::Gt => Some(BinOp::Gt),
            Token::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let r = self.add_expr()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            });
        }
        if self.eat_kw(Kw::Between) {
            let low = self.add_expr()?;
            self.expect_kw(Kw::And)?;
            let high = self.add_expr()?;
            return Ok(AstExpr::Between {
                expr: Box::new(e),
                low: Box::new(low),
                high: Box::new(high),
                negated: false,
            });
        }
        if self.eat_kw(Kw::Not) {
            self.expect_kw(Kw::Between)?;
            let low = self.add_expr()?;
            self.expect_kw(Kw::And)?;
            let high = self.add_expr()?;
            return Ok(AstExpr::Between {
                expr: Box::new(e),
                low: Box::new(low),
                high: Box::new(high),
                negated: true,
            });
        }
        if self.eat_kw(Kw::Is) {
            let negated = self.eat_kw(Kw::Not);
            self.expect_kw(Kw::Null)?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(e),
                negated,
            });
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> SqlResult<AstExpr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let r = self.mul_expr()?;
            e = AstExpr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> SqlResult<AstExpr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let r = self.unary_expr()?;
            e = AstExpr::Binary {
                op,
                left: Box::new(e),
                right: Box::new(r),
            };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> SqlResult<AstExpr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(AstExpr::Neg(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> SqlResult<AstExpr> {
        match self.advance() {
            Token::Int(v) => Ok(AstExpr::IntLit(v)),
            Token::Float(v) => Ok(AstExpr::FloatLit(v)),
            Token::Str(s) => Ok(AstExpr::StringLit(s)),
            Token::Keyword(Kw::True) => Ok(AstExpr::BoolLit(true)),
            Token::Keyword(Kw::False) => Ok(AstExpr::BoolLit(false)),
            Token::Keyword(Kw::Null) => Ok(AstExpr::NullLit),
            Token::Keyword(Kw::Exists) => {
                self.expect(Token::LParen)?;
                let q = self.select_stmt()?;
                self.expect(Token::RParen)?;
                Ok(AstExpr::Exists {
                    query: Box::new(q),
                    negated: false,
                })
            }
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // function call?
                if self.peek() == &Token::LParen {
                    self.advance();
                    if self.eat(&Token::Star) {
                        self.expect(Token::RParen)?;
                        return Ok(AstExpr::Func {
                            name,
                            args: Vec::new(),
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(Token::RParen)?;
                    }
                    return Ok(AstExpr::Func {
                        name,
                        args,
                        star: false,
                    });
                }
                // qualified column?
                if self.eat(&Token::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS bb FROM t WHERE a = 1 ORDER BY b DESC LIMIT 5;");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bb"
        ));
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn bare_alias_and_wildcards() {
        let s = sel("SELECT Ts Us, Te Ue, *, r.* FROM r");
        assert_eq!(s.items.len(), 4);
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { alias: Some(a), .. } if a == "us"
        ));
        assert!(matches!(&s.items[2], SelectItem::Wildcard));
        assert!(matches!(
            &s.items[3],
            SelectItem::QualifiedWildcard(q) if q == "r"
        ));
    }

    #[test]
    fn paper_q1_align_query_parses() {
        // Sec. 6.2, the SQL formulation of Q1 (identifiers lowercased).
        let s = sel("WITH R AS (SELECT Ts Us, Te Ue, * FROM R) \
             SELECT ABSORB n, a, min, max, r.Ts, r.Te \
             FROM (R ALIGN P ON DUR(Us,Ue) BETWEEN Min AND Max) r \
             LEFT OUTER JOIN \
             (P ALIGN R ON DUR(Us,Ue) BETWEEN Min AND Max) p \
             ON DUR(Us,Ue) BETWEEN Min AND Max AND \
             r.Ts=p.Ts AND r.Te=p.Te");
        assert_eq!(s.quantifier, Quantifier::Absorb);
        assert_eq!(s.with.len(), 1);
        let from = s.from.unwrap();
        match from {
            TableRef::Join {
                left, right, kind, ..
            } => {
                assert_eq!(kind, JoinKind::Left);
                assert!(matches!(*left, TableRef::Align { .. }));
                assert!(matches!(*right, TableRef::Align { .. }));
            }
            other => panic!("unexpected from: {other:?}"),
        }
    }

    #[test]
    fn paper_normalize_aggregation_parses() {
        // Sec. 6.3, the temporal aggregation formulation.
        let s = sel("WITH R AS (SELECT Ts Us, Te Ue, * FROM R) \
             SELECT AVG(DUR(Us,Ue)), Ts, Te \
             FROM (R R1 NORMALIZE R R2 USING()) r \
             GROUP BY Ts, Te");
        assert_eq!(s.group_by.len(), 2);
        match s.from.unwrap() {
            TableRef::Normalize {
                left,
                right,
                using,
                alias,
            } => {
                assert!(using.is_empty());
                assert_eq!(alias.as_deref(), Some("r"));
                assert!(matches!(
                    *left,
                    TableRef::Named { ref alias, .. } if alias.as_deref() == Some("r1")
                ));
                assert!(matches!(*right, TableRef::Named { .. }));
            }
            other => panic!("unexpected from: {other:?}"),
        }
    }

    #[test]
    fn normalize_with_using_columns() {
        let s = sel("SELECT * FROM (a NORMALIZE b USING(ssn, pcn)) n");
        match s.from.unwrap() {
            TableRef::Normalize { using, .. } => assert_eq!(using, vec!["ssn", "pcn"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exists_and_not_exists() {
        let s = sel("SELECT * FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE s.k = r.k)");
        match s.where_clause.unwrap() {
            AstExpr::Exists { negated, .. } => assert!(negated),
            other => panic!("{other:?}"),
        }
        let s = sel("SELECT * FROM r WHERE EXISTS (SELECT * FROM s)");
        match s.where_clause.unwrap() {
            AstExpr::Exists { negated, .. } => assert!(!negated),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn set_operations_chain() {
        let s = sel("SELECT a FROM r UNION SELECT a FROM s EXCEPT SELECT a FROM t");
        let (op1, rhs) = s.set_op.unwrap();
        assert_eq!(op1, SetOp::Union);
        let (op2, _) = rhs.set_op.clone().unwrap();
        assert_eq!(op2, SetOp::Except);
    }

    #[test]
    fn union_all_rejected() {
        let e = parse_statement("SELECT a FROM r UNION ALL SELECT a FROM s").unwrap_err();
        assert!(e.to_string().contains("set based"));
    }

    #[test]
    fn set_and_explain_statements() {
        match parse_statement("SET enable_mergejoin = off").unwrap() {
            Statement::Set { name, value } => {
                assert_eq!(name, "enable_mergejoin");
                assert_eq!(value, SetValue::Bool(false));
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("SET threads = 4").unwrap() {
            Statement::Set { name, value } => {
                assert_eq!(name, "threads");
                assert_eq!(value, SetValue::Int(4));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM r").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT * FROM r").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
    }

    #[test]
    fn between_and_is_null_and_precedence() {
        let s = sel("SELECT * FROM r WHERE a BETWEEN 1 AND 3 AND b IS NOT NULL OR c = 2");
        // ((a BETWEEN …) AND (b IS NOT NULL)) OR (c = 2)
        match s.where_clause.unwrap() {
            AstExpr::Binary {
                op: BinOp::Or,
                left,
                ..
            } => match *left {
                AstExpr::Binary { op: BinOp::And, .. } => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT 1 + 2 * 3 FROM r");
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    AstExpr::Binary {
                        op: BinOp::Add,
                        right,
                        ..
                    },
                ..
            } => assert!(matches!(**right, AstExpr::Binary { op: BinOp::Mul, .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_values_parses() {
        let s = parse_statement("INSERT INTO t VALUES ('ann', -1.5, 0, 8), (NULL, 2.0, -3, true)")
            .unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], AstExpr::StringLit("ann".into()));
                assert_eq!(rows[0][1], AstExpr::FloatLit(-1.5));
                assert_eq!(rows[1][0], AstExpr::NullLit);
                assert_eq!(rows[1][2], AstExpr::IntLit(-3));
                assert_eq!(rows[1][3], AstExpr::BoolLit(true));
            }
            other => panic!("{other:?}"),
        }
        // Non-literal values and malformed forms error.
        assert!(parse_statement("INSERT INTO t VALUES (a + 1)").is_err());
        assert!(parse_statement("INSERT t VALUES (1)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES 1, 2").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (-'x')").is_err());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT * FROM (r ALIGN s)").is_err()); // missing ON
        assert!(parse_statement("SELECT * HAVING x").is_err());
        assert!(parse_statement("SELECT * FROM r GROUP a").is_err());
    }

    #[test]
    fn count_star_parses() {
        let s = sel("SELECT count(*) FROM r");
        match &s.items[0] {
            SelectItem::Expr {
                expr: AstExpr::Func { name, star, .. },
                ..
            } => {
                assert_eq!(name, "count");
                assert!(*star);
            }
            other => panic!("{other:?}"),
        }
    }
}
