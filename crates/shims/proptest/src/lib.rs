//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a source-compatible shim covering the API subset its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * ranges, tuples, and [`strategy::Just`] as strategies,
//! * [`collection::vec`] with `usize`-range size bounds,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Inputs are generated from a seed derived deterministically from the test
//! name and case index, so failures reproduce across runs. Unlike the real
//! crate there is **no shrinking**: a failing case reports the panic from
//! the smallest-effort reproduction (the generated values themselves),
//! not a minimized counterexample.
//!
//! To use the real crate instead, point the `proptest` entry in the root
//! `[workspace.dependencies]` at a registry version.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test inputs. The real crate's `Strategy` also carries
    /// a shrinking value-tree; this shim only generates.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe boxed strategy, as returned by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Result of [`Strategy::prop_filter`]. Rejection-samples; panics after
    /// too many consecutive rejections, like the real crate's global
    /// rejection cap.
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.whence
            );
        }
    }

    /// Uniform choice between boxed strategies — what [`crate::prop_oneof!`]
    /// builds.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size bounds for [`vec()`](fn@vec), mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Derive the deterministic per-case RNG seed. Public for the
    /// [`crate::proptest!`] expansion, not part of the mirrored API.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        h.finish()
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The test-defining macro. Accepts the real crate's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     /// docs
///     #[test]
///     fn name(x in strategy1, y in strategy2) { body }
/// }
/// ```
///
/// Each test runs `cases` iterations with inputs generated from a seed
/// derived from the test name and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut prop_rng: $crate::ShimStdRng =
                    $crate::ShimSeedableRng::seed_from_u64(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut prop_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

// Re-exported under obfuscated names so the `proptest!` expansion can name
// them without requiring `rand` in the caller's dependency graph.
#[doc(hidden)]
pub use rand::rngs::StdRng as ShimStdRng;
#[doc(hidden)]
pub use rand::SeedableRng as ShimSeedableRng;

/// Uniform choice among strategies. The real crate supports `weight =>`
/// prefixes; this shim picks uniformly and ignores no weights because the
/// workspace never uses them.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion inside a `proptest!` body (panics, since the shim does not
/// thread `Result` through test bodies).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = crate::collection::vec((0..10i64, 5..9i64), 0..6);
        let a = strat.generate(&mut StdRng::seed_from_u64(3));
        let b = strat.generate(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        for (x, y) in &a {
            assert!((0..10).contains(x));
            assert!((5..9).contains(y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro surface itself: ranges, flat_map, oneof, vec.
        #[test]
        fn macro_end_to_end(
            x in 0..100i64,
            pair in (0..50i64).prop_flat_map(|lo| (Just(lo), lo..=50i64)),
            which in prop_oneof![Just(1u8), Just(2u8)],
            items in crate::collection::vec(0..5usize, 0..=4),
        ) {
            prop_assert!((0..100).contains(&x));
            let (lo, hi) = pair;
            prop_assert!(lo <= hi);
            prop_assert!(which == 1 || which == 2);
            prop_assert!(items.len() <= 4);
        }
    }
}
