//! Sweep-based interval overlap join.
//!
//! Implements the paper's *future work* direction (Sec. 8: "investigate
//! indexing or merge sort techniques to improve the performance of the
//! temporal primitives for cases when conventional join techniques cannot
//! be evaluated efficiently"): when a join condition is an interval
//! overlap `l.ts < r.te ∧ r.ts < l.te` **without** useful equi keys, the
//! generic engine falls back to a quadratic nested loop. This operator
//! sorts both inputs by interval start and sweeps, touching only the
//! overlapping pairs plus bookkeeping — `O(n log n + m log m + matches)`
//! for well-behaved inputs.
//!
//! Disabled by default (`PlannerConfig::enable_intervaljoin = false`) so
//! the benchmarks reproduce the paper's PostgreSQL behaviour; the
//! ablation bench measures the improvement.

use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode};
use crate::expr::Expr;
use crate::plan::JoinType;
use crate::schema::Schema;
use crate::tuple::Row;

/// Interval overlap join (Inner or Left). Column indices address each
/// side's own row; the overlap condition is
/// `left[l_ts] < right[r_te] && right[r_ts] < left[l_te]`, with an
/// optional residual over the concatenated row.
pub struct IntervalJoinExec {
    left: BoxedExec,
    right: BoxedExec,
    l_ts: usize,
    l_te: usize,
    r_ts: usize,
    r_te: usize,
    residual: Option<Expr>,
    join_type: JoinType,
    schema: Schema,
    right_width: usize,
    out: Option<std::vec::IntoIter<Row>>,
}

impl IntervalJoinExec {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: BoxedExec,
        right: BoxedExec,
        l_ts: usize,
        l_te: usize,
        r_ts: usize,
        r_te: usize,
        residual: Option<Expr>,
        join_type: JoinType,
    ) -> Self {
        assert!(
            matches!(join_type, JoinType::Inner | JoinType::Left),
            "interval join supports Inner/Left, got {join_type:?}"
        );
        let right_width = right.schema().len();
        let schema = left.schema().concat(right.schema());
        IntervalJoinExec {
            left,
            right,
            l_ts,
            l_te,
            r_ts,
            r_te,
            residual,
            join_type,
            schema,
            right_width,
            out: None,
        }
    }

    fn compute(&mut self) -> EngineResult<Vec<Row>> {
        let mut l_rows = Vec::new();
        while let Some(r) = self.left.next()? {
            l_rows.push(r);
        }
        let mut r_rows = Vec::new();
        while let Some(r) = self.right.next()? {
            r_rows.push(r);
        }

        // Extract endpoints once; rows with NULL endpoints never match.
        let l_pts: Vec<Option<(i64, i64)>> = l_rows
            .iter()
            .map(|r| Some((r[self.l_ts].as_int()?, r[self.l_te].as_int()?)))
            .collect();
        let r_pts: Vec<Option<(i64, i64)>> = r_rows
            .iter()
            .map(|r| Some((r[self.r_ts].as_int()?, r[self.r_te].as_int()?)))
            .collect();

        // Sort indices by interval start (NULL-endpoint rows sort first and
        // are handled as never-matching).
        let mut l_order: Vec<usize> = (0..l_rows.len()).collect();
        l_order.sort_by_key(|&i| l_pts[i].map(|(s, _)| s));
        let mut r_order: Vec<usize> = (0..r_rows.len()).collect();
        r_order.sort_by_key(|&j| r_pts[j].map(|(s, _)| s));

        let mut out = Vec::new();
        // Active right candidates (their start precedes the current left
        // end); pruned of intervals that ended before the current left
        // start — valid because left starts are non-decreasing.
        let mut active: Vec<usize> = Vec::new();
        let mut next_r = 0usize;

        for &li in &l_order {
            let Some((lts, lte)) = l_pts[li] else {
                if self.join_type == JoinType::Left {
                    out.push(l_rows[li].concat_nulls(self.right_width));
                }
                continue;
            };
            // Admit right rows starting before this left interval ends.
            while next_r < r_order.len() {
                let j = r_order[next_r];
                match r_pts[j] {
                    Some((rts, _)) if rts < lte => {
                        active.push(j);
                        next_r += 1;
                    }
                    Some(_) => break,
                    None => {
                        next_r += 1; // NULL endpoints never match
                    }
                }
            }
            // Drop candidates that ended at or before this left start —
            // they can never match later lefts either (starts ascend).
            active.retain(|&j| r_pts[j].expect("admitted").1 > lts);

            let mut matched = false;
            for &j in &active {
                let (rts, rte) = r_pts[j].expect("admitted");
                // `rte > lts` holds by the retain; re-check the start side
                // because left ends are not monotonic.
                if rts < lte && rte > lts {
                    let combined = l_rows[li].concat(&r_rows[j]);
                    let ok = match &self.residual {
                        None => true,
                        Some(e) => e.eval_pred(combined.values())?,
                    };
                    if ok {
                        matched = true;
                        out.push(combined);
                    }
                }
            }
            if !matched && self.join_type == JoinType::Left {
                out.push(l_rows[li].concat_nulls(self.right_width));
            }
        }
        Ok(out)
    }
}

impl ExecNode for IntervalJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> EngineResult<Option<Row>> {
        if self.out.is_none() {
            let rows = self.compute()?;
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("initialized").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, NestedLoopJoinExec, SeqScanExec};
    use crate::expr::col;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn rel(rows: &[(i64, i64, i64)]) -> Relation {
        Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("ts", DataType::Int),
                Column::new("te", DataType::Int),
            ]),
            rows.iter()
                .map(|&(k, s, e)| vec![Value::Int(k), Value::Int(s), Value::Int(e)])
                .collect(),
        )
        .unwrap()
    }

    fn scan(r: &Relation) -> BoxedExec {
        Box::new(SeqScanExec::new(r.clone().into_shared()))
    }

    fn run_sweep(l: &Relation, r: &Relation, jt: JoinType, residual: Option<Expr>) -> Relation {
        let node = IntervalJoinExec::new(scan(l), scan(r), 1, 2, 1, 2, residual, jt);
        collect(Box::new(node)).unwrap()
    }

    fn run_nl(l: &Relation, r: &Relation, jt: JoinType, residual: Option<Expr>) -> Relation {
        let overlap = col(1).lt(col(5)).and(col(4).lt(col(2)));
        let cond = match residual {
            Some(res) => overlap.and(res),
            None => overlap,
        };
        let node = NestedLoopJoinExec::new(scan(l), scan(r), jt, Some(cond));
        collect(Box::new(node)).unwrap()
    }

    #[test]
    fn agrees_with_nested_loop() {
        let l = rel(&[(1, 0, 5), (2, 3, 9), (3, 10, 12), (4, 1, 2)]);
        let r = rel(&[(7, 4, 6), (8, 0, 1), (9, 11, 15), (10, 2, 3)]);
        for jt in [JoinType::Inner, JoinType::Left] {
            let sweep = run_sweep(&l, &r, jt, None);
            let nl = run_nl(&l, &r, jt, None);
            assert!(sweep.same_bag(&nl), "{jt:?}:\n{sweep}\nvs\n{nl}");
        }
    }

    #[test]
    fn agrees_with_nested_loop_with_residual() {
        let l = rel(&[(1, 0, 5), (2, 3, 9), (1, 6, 8)]);
        let r = rel(&[(1, 4, 6), (2, 0, 10), (3, 5, 7)]);
        let residual = Some(col(0).eq(col(3))); // k = k
        for jt in [JoinType::Inner, JoinType::Left] {
            let sweep = run_sweep(&l, &r, jt, residual.clone());
            let nl = run_nl(&l, &r, jt, residual.clone());
            assert!(sweep.same_bag(&nl), "{jt:?}");
        }
    }

    #[test]
    fn randomized_agreement() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mk = |rng: &mut StdRng| {
                let rows: Vec<(i64, i64, i64)> = (0..rng.gen_range(0..15))
                    .map(|i| {
                        let s = rng.gen_range(0..30);
                        (i, s, s + rng.gen_range(1..10))
                    })
                    .collect();
                rel(&rows)
            };
            let l = mk(&mut rng);
            let r = mk(&mut rng);
            for jt in [JoinType::Inner, JoinType::Left] {
                let sweep = run_sweep(&l, &r, jt, None);
                let nl = run_nl(&l, &r, jt, None);
                assert!(sweep.same_bag(&nl), "{jt:?}:\n{sweep}\nvs\n{nl}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let l = rel(&[(1, 0, 5)]);
        let e = rel(&[]);
        assert_eq!(run_sweep(&l, &e, JoinType::Left, None).len(), 1);
        assert_eq!(run_sweep(&e, &l, JoinType::Left, None).len(), 0);
        assert_eq!(run_sweep(&l, &e, JoinType::Inner, None).len(), 0);
    }

    #[test]
    fn null_endpoints_never_match_but_pad_in_left() {
        let l = Relation::from_values(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("ts", DataType::Int),
                Column::new("te", DataType::Int),
            ]),
            vec![vec![Value::Int(1), Value::Null, Value::Int(5)]],
        )
        .unwrap();
        let r = rel(&[(9, 0, 10)]);
        let out = run_sweep(&l, &r, JoinType::Left, None);
        assert_eq!(out.len(), 1);
        assert!(out.rows()[0][3].is_null());
    }
}
