//! The temporal splitter (Def. 8) and normalization `N_B(r; s)` (Def. 9).
//!
//! For group-based operators {π, ϑ, ∪, −, ∩}, each tuple's interval is
//! split at every start and end point of the tuples in its group — the
//! group being the tuples of `s` that agree with it on the `B` attributes.
//! After normalization, tuples with equal `B` values have intervals that
//! are either equal or disjoint (Propositions 1 and 2), so the downstream
//! nontemporal operator only needs *equality* on timestamps.
//!
//! This module is the specification-level implementation (straight from the
//! definitions; per-tuple scans of the group). The pipelined plane-sweep
//! implementation used by the algebra lives in
//! [`crate::primitives::adjustment`].

use temporal_engine::prelude::*;

use crate::error::{TemporalError, TemporalResult};
use crate::interval::Interval;
use crate::trel::TemporalRelation;

/// `split(r, g)` (Def. 8): the maximal sub-intervals of `r` that are
/// contained in or disjoint from every interval of `g`, in ascending order.
///
/// Equivalently: `r` cut at every group start/end point that falls strictly
/// inside it (the construction used by the implementation, Sec. 6.3).
pub fn split(r: Interval, group: &[Interval]) -> Vec<Interval> {
    let mut points: Vec<i64> = vec![r.start()];
    for g in group {
        for p in [g.start(), g.end()] {
            if p > r.start() && p < r.end() {
                points.push(p);
            }
        }
    }
    points.push(r.end());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| Interval::of(w[0], w[1]))
        .collect()
}

/// Checker for Def. 8, used by property tests: is `out` exactly a valid
/// split of `r` with respect to `group`?
pub fn is_valid_split(r: Interval, group: &[Interval], out: &[Interval]) -> bool {
    // (1) every piece is inside r and contained-in-or-disjoint-from each g;
    for t in out {
        if !r.contains(t) {
            return false;
        }
        for g in group {
            if t.overlaps(g) && !g.contains(t) {
                return false;
            }
        }
    }
    // (2) pieces are maximal: enlarging by one point on either side breaks
    //     condition (1);
    for t in out {
        for grown in [
            Interval::try_new(t.start() - 1, t.end()),
            Interval::try_new(t.start(), t.end() + 1),
        ]
        .into_iter()
        .flatten()
        {
            let still_ok = r.contains(&grown)
                && group
                    .iter()
                    .all(|g| !grown.overlaps(g) || g.contains(&grown));
            if still_ok {
                return false;
            }
        }
    }
    // (3) the pieces exactly cover r (follows from Def. 8: for any point of
    //     r there is a maximal valid sub-interval containing it), without
    //     overlaps and in order.
    let mut cursor = r.start();
    for t in out {
        if t.start() != cursor {
            return false;
        }
        cursor = t.end();
    }
    cursor == r.end()
}

/// `N_B(r; s)` (Def. 9): normalize `r` with respect to `s` on the grouping
/// attribute pairs `b` (`(column of r, column of s)`, data-column indices).
///
/// Quadratic reference implementation: for each `r` tuple, collect its
/// group by scanning `s`, then [`split`].
pub fn normalize_ref(
    r: &TemporalRelation,
    s: &TemporalRelation,
    b: &[(usize, usize)],
) -> TemporalResult<TemporalRelation> {
    for &(br, bs) in b {
        if br >= r.data_width() || bs >= s.data_width() {
            return Err(TemporalError::Incompatible(format!(
                "grouping pair ({br}, {bs}) out of bounds"
            )));
        }
    }
    let mut out_rows: Vec<(Vec<Value>, Interval)> = Vec::new();
    for (r_data, r_iv) in r.iter() {
        let group: Vec<Interval> = s
            .iter()
            .filter(|(s_data, _)| b.iter().all(|&(br, bs)| r_data[br] == s_data[bs]))
            .map(|(_, iv)| iv)
            .collect();
        for piece in split(r_iv, &group) {
            out_rows.push((r_data.to_vec(), piece));
        }
    }
    TemporalRelation::from_rows(r.data_schema(), out_rows)
}

/// Convenience: `N_B(r; r)` with `B` given as data-column indices of `r`
/// (used by the reduction rules for π and ϑ).
pub fn self_normalize_ref(r: &TemporalRelation, b: &[usize]) -> TemporalResult<TemporalRelation> {
    let pairs: Vec<(usize, usize)> = b.iter().map(|&i| (i, i)).collect();
    normalize_ref(r, r, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    #[test]
    fn split_cuts_at_interior_boundaries() {
        // Paper Fig. 2(a): r = [1,8); g1 = [2,5), g2 = [4,7)
        // (one-month granularity, points relabelled to integers).
        let r = Interval::of(1, 8);
        let g = vec![Interval::of(2, 5), Interval::of(4, 7)];
        let out = split(r, &g);
        assert_eq!(
            out,
            vec![
                Interval::of(1, 2),
                Interval::of(2, 4),
                Interval::of(4, 5),
                Interval::of(5, 7),
                Interval::of(7, 8),
            ]
        );
        assert!(is_valid_split(r, &g, &out));
    }

    #[test]
    fn split_with_empty_group_is_identity() {
        let r = Interval::of(3, 9);
        assert_eq!(split(r, &[]), vec![r]);
        assert!(is_valid_split(r, &[], &[r]));
    }

    #[test]
    fn split_ignores_boundaries_outside_r() {
        let r = Interval::of(3, 9);
        let g = vec![Interval::of(0, 3), Interval::of(9, 12), Interval::of(0, 20)];
        assert_eq!(split(r, &g), vec![r]);
    }

    #[test]
    fn checker_rejects_wrong_splits() {
        let r = Interval::of(0, 10);
        let g = vec![Interval::of(5, 7)];
        // missing cut
        assert!(!is_valid_split(r, &g, &[r]));
        // over-fragmented (not maximal)
        assert!(!is_valid_split(
            r,
            &g,
            &[
                Interval::of(0, 2),
                Interval::of(2, 5),
                Interval::of(5, 7),
                Interval::of(7, 10)
            ]
        ));
        // correct
        assert!(is_valid_split(
            r,
            &g,
            &[Interval::of(0, 5), Interval::of(5, 7), Interval::of(7, 10)]
        ));
    }

    fn reservations() -> TemporalRelation {
        // Paper Fig. 1/3: R = {ann [1,8), joe [2,6), ann [8,12)} with
        // months mapped to integers (2012/1 ↦ 1 for readability).
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("ann")], Interval::of(1, 8)),
                (vec![Value::str("joe")], Interval::of(2, 6)),
                (vec![Value::str("ann")], Interval::of(8, 12)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn normalization_matches_paper_fig3() {
        // N_{}(R; R): group of every tuple is all of R.
        let r = reservations();
        let out = self_normalize_ref(&r, &[]).unwrap();
        let expected = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (vec![Value::str("ann")], Interval::of(1, 2)),
                (vec![Value::str("ann")], Interval::of(2, 6)),
                (vec![Value::str("ann")], Interval::of(6, 8)),
                (vec![Value::str("joe")], Interval::of(2, 6)),
                (vec![Value::str("ann")], Interval::of(8, 12)),
            ],
        )
        .unwrap();
        assert!(out.same_set(&expected), "{out} vs {expected}");
    }

    #[test]
    fn normalization_on_name_only_splits_within_groups() {
        // N_{n}(R; R): ann's tuples don't overlap joe's group.
        let r = reservations();
        let out = self_normalize_ref(&r, &[0]).unwrap();
        // ann [1,8) and ann [8,12) meet but don't overlap → unsplit;
        // joe [2,6) alone → unsplit.
        assert!(out.same_set(&r), "{out}");
    }

    #[test]
    fn proposition1_equal_or_disjoint() {
        let r = reservations();
        for b in [vec![], vec![0]] {
            let out = self_normalize_ref(&r, &b).unwrap();
            let rows: Vec<(Vec<Value>, Interval)> = out
                .iter()
                .map(|(d, iv)| (b.iter().map(|&i| d[i].clone()).collect::<Vec<_>>(), iv))
                .collect();
            for (i, (bi, ti)) in rows.iter().enumerate() {
                for (bj, tj) in rows.iter().skip(i + 1) {
                    if bi == bj {
                        assert!(
                            ti == tj || !ti.overlaps(tj),
                            "B={bi:?}: {ti} vs {tj} neither equal nor disjoint"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn normalize_rejects_bad_grouping_indices() {
        let r = reservations();
        assert!(normalize_ref(&r, &r, &[(0, 9)]).is_err());
        assert!(normalize_ref(&r, &r, &[(9, 0)]).is_err());
    }
}
