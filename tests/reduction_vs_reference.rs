//! Theorem 1, executable: for every operator of the temporal algebra, the
//! reduction-rule implementation must produce exactly the same relation as
//! the point-wise oracle (snapshots + lineage stitching), which is
//! snapshot reducible and change preserving **by construction**.

mod common;

use common::{random_trel, random_trel2, rel1};
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::reference::evaluate_oracle;
use temporal_alignment::core::semantics::TemporalOp;
use temporal_alignment::engine::prelude::*;

fn unary_ops() -> Vec<TemporalOp> {
    vec![
        TemporalOp::Selection {
            predicate: col(0).ge(lit(1i64)),
        },
        TemporalOp::Projection { attrs: vec![0] },
        TemporalOp::Aggregation {
            group: vec![],
            aggs: vec![
                (AggCall::count_star(), "cnt".to_string()),
                (AggCall::new(AggFunc::Sum, col(0)), "sum".to_string()),
            ],
        },
        TemporalOp::Aggregation {
            group: vec![0],
            aggs: vec![(AggCall::count_star(), "cnt".to_string())],
        },
    ]
}

/// Binary operators with a θ referencing the single data column of each
/// side: concat row = (k, ts, te, k, ts, te) → k columns 0 and 3.
fn binary_ops() -> Vec<TemporalOp> {
    let eq = Some(col(0).eq(col(3)));
    let lt = Some(col(0).lt(col(3)));
    vec![
        TemporalOp::Union,
        TemporalOp::Difference,
        TemporalOp::Intersection,
        TemporalOp::CartesianProduct,
        TemporalOp::Join { theta: eq.clone() },
        TemporalOp::Join { theta: lt.clone() },
        TemporalOp::LeftOuterJoin { theta: eq.clone() },
        TemporalOp::LeftOuterJoin { theta: None },
        TemporalOp::RightOuterJoin { theta: eq.clone() },
        TemporalOp::FullOuterJoin { theta: eq.clone() },
        TemporalOp::FullOuterJoin { theta: lt },
        TemporalOp::AntiJoin { theta: eq },
        TemporalOp::AntiJoin { theta: None },
    ]
}

fn check(op: &TemporalOp, args: &[&TemporalRelation], label: &str) {
    let alg = TemporalAlgebra::default();
    let fast = op
        .evaluate(&alg, args)
        .unwrap_or_else(|e| panic!("{label}: {} failed: {e}", op.name()));
    let slow = evaluate_oracle(op, args)
        .unwrap_or_else(|e| panic!("{label}: oracle for {} failed: {e}", op.name()));
    assert!(
        fast.same_set(&slow),
        "{label}: {} mismatch.\nreduction:\n{fast}\noracle:\n{slow}",
        op.name()
    );
}

#[test]
fn unary_ops_match_oracle_on_fixtures() {
    let fixtures = [
        rel1("r", &[]),
        rel1("r", &[(1, 0, 5)]),
        rel1("r", &[(1, 0, 5), (1, 5, 9), (2, 3, 7)]),
        rel1("r", &[(0, 0, 3), (1, 1, 4), (2, 2, 5), (3, 3, 6)]),
    ];
    for (i, r) in fixtures.iter().enumerate() {
        for op in unary_ops() {
            check(&op, &[r], &format!("fixture {i}"));
        }
    }
}

#[test]
fn binary_ops_match_oracle_on_fixtures() {
    let cases = [
        (rel1("r", &[]), rel1("s", &[])),
        (rel1("r", &[(1, 0, 5)]), rel1("s", &[])),
        (rel1("r", &[]), rel1("s", &[(1, 0, 5)])),
        (
            rel1("r", &[(1, 0, 8), (2, 5, 12)]),
            rel1("s", &[(1, 2, 4), (2, 6, 15), (3, 1, 3)]),
        ),
        // touching intervals, same values
        (rel1("r", &[(1, 0, 5), (1, 5, 9)]), rel1("s", &[(1, 3, 7)])),
        // identical relations
        (
            rel1("r", &[(1, 0, 5), (2, 2, 8)]),
            rel1("s", &[(1, 0, 5), (2, 2, 8)]),
        ),
    ];
    for (i, (r, s)) in cases.iter().enumerate() {
        for op in binary_ops() {
            check(&op, &[r, s], &format!("case {i}"));
        }
    }
}

#[test]
fn binary_ops_match_oracle_on_random_inputs() {
    for seed in 0..12u64 {
        let r = random_trel(seed * 2 + 1, 9, 3, 16);
        let s = random_trel(seed * 2 + 2, 9, 3, 16);
        for op in binary_ops() {
            check(&op, &[&r, &s], &format!("seed {seed}"));
        }
    }
}

#[test]
fn unary_ops_match_oracle_on_random_inputs() {
    for seed in 100..112u64 {
        let r = random_trel(seed, 10, 3, 16);
        for op in unary_ops() {
            check(&op, &[&r], &format!("seed {seed}"));
        }
    }
}

#[test]
fn two_column_relations_match_oracle() {
    // Wider rows exercise multi-column grouping and projections.
    for seed in 200..206u64 {
        let r = random_trel2(seed, 8, 2, 12);
        let s = random_trel2(seed + 50, 8, 2, 12);
        let ops = vec![
            TemporalOp::Projection { attrs: vec![1] },
            TemporalOp::Projection { attrs: vec![1, 0] },
            TemporalOp::Aggregation {
                group: vec![0],
                aggs: vec![(AggCall::new(AggFunc::Max, col(1)), "m".to_string())],
            },
            TemporalOp::Union,
            TemporalOp::Difference,
            // θ: r.k = s.k ∧ r.w ≤ s.w over (k, w, ts, te, k, w, ts, te)
            TemporalOp::Join {
                theta: Some(col(0).eq(col(4)).and(col(1).le(col(5)))),
            },
            TemporalOp::FullOuterJoin {
                theta: Some(col(0).eq(col(4))),
            },
        ];
        for op in ops {
            if op.arity() == 1 {
                check(&op, &[&r], &format!("2col seed {seed}"));
            } else {
                check(&op, &[&r, &s], &format!("2col seed {seed}"));
            }
        }
    }
}

#[test]
fn join_method_switches_agree_with_oracle() {
    // The same reduced query must be correct under every planner setting.
    let r = random_trel(7, 10, 3, 16);
    let s = random_trel(8, 10, 3, 16);
    let op = TemporalOp::FullOuterJoin {
        theta: Some(col(0).eq(col(3))),
    };
    let slow = evaluate_oracle(&op, &[&r, &s]).unwrap();
    for config in [
        PlannerConfig::all_enabled(),
        PlannerConfig::no_merge(),
        PlannerConfig::nestloop_only(),
    ] {
        let alg = TemporalAlgebra::new(config);
        let fast = op.evaluate(&alg, &[&r, &s]).unwrap();
        assert!(fast.same_set(&slow));
    }
}
