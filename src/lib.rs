//! # temporal-alignment
//!
//! A full reproduction of **“Temporal Alignment”** (Anton Dignös, Michael
//! H. Böhlen, Johann Gamper — SIGMOD 2012, DOI 10.1145/2213836.2213886) as
//! a Rust workspace:
//!
//! * [`engine`] — a from-scratch relational query engine standing in for
//!   the PostgreSQL kernel (Volcano executor, nested-loop/hash/merge joins,
//!   cost-based planner with `enable_*` switches, extension plan nodes);
//! * [`core`] — the paper's contribution: interval-timestamped relations,
//!   the **temporal splitter** (normalization `N_B(r; s)`) and **temporal
//!   aligner** (`r Φ_θ s`) primitives, the **absorb** operator α,
//!   timestamp propagation (extend `U`), the Table 2 **reduction rules**
//!   for the whole sequenced temporal algebra, plus the formal layer
//!   (timeslice, snapshot reducibility, lineage, change preservation) used
//!   to verify Theorem 1 executable-y;
//! * [`datasets`] — seeded generators for the evaluation workloads
//!   (an `Incumben` substitute and the `Ddisj`/`Deq`/`Drand`/random
//!   synthetic datasets of Sec. 7);
//! * [`baselines`] — the `sql` and `sql+normalize` comparison approaches
//!   from Sec. 7.4/7.5;
//! * [`sql`] — the SQL front end with the paper's `ALIGN` / `NORMALIZE` /
//!   `ABSORB` surface syntax (Sec. 6.2/6.3);
//! * [`server`] — concurrent multi-client serving: the `tsql` shell plus
//!   `tsql --serve` (session-per-connection line protocol over TCP or a
//!   Unix socket) and `tsql --connect`, with snapshot reads and group
//!   commit underneath.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use temporal_baselines as baselines;
pub use temporal_core as core;
pub use temporal_datasets as datasets;
pub use temporal_engine as engine;
pub use temporal_server as server;
pub use temporal_sql as sql;

/// One-stop imports for applications: the [`core`] and [`engine`]
/// preludes (types, `col`/`lit`/`name` builders, [`core::prelude::Database`],
/// [`core::prelude::TemporalFrame`]) plus the SQL session and the
/// [`sql::DatabaseSqlExt`] trait that puts `db.sql("…")` on the shared
/// [`core::prelude::Database`] front door.
pub mod prelude {
    pub use temporal_core::prelude::*;
    pub use temporal_engine::prelude::*;
    pub use temporal_sql::{DatabaseSqlExt, Session, SqlOutput};
}
