//! Reference (oracle) evaluation of the temporal algebra.
//!
//! [`oracle::evaluate_oracle`] computes any [`crate::semantics::TemporalOp`]
//! *literally* from the definitions: evaluate the nontemporal operator on
//! every snapshot (Def. 1/4), attach lineage sets (Def. 6), and group
//! maximal runs of time points with constant value and lineage into result
//! tuples (Def. 7). The result is change-preserving **by construction**,
//! which makes it the executable ground truth for Theorem 1: the
//! reduction-rule implementation must produce exactly the same set of
//! tuples.

pub mod oracle;

pub use oracle::{evaluate_oracle, snapshot_eval};
