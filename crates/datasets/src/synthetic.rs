//! The synthetic datasets of Sec. 7.4/7.5.
//!
//! * `Ddisj` — the intervals in both relations are pairwise disjoint: the
//!   worst case for the `sql` baseline's NOT EXISTS (nothing ever matches,
//!   every check scans the whole inner relation — Fig. 15a);
//! * `Deq` — all intervals are equal: the best case for `sql` (the NOT
//!   EXISTS finds a witness immediately — Fig. 15b);
//! * `Drand` — random intervals and price categories with `min`/`max`
//!   duration bounds, for the θ-join O2 (Fig. 15c);
//! * `random_like_incumben` — Incumben-like durations with uniformly
//!   random start points: more overlap and more distinct splitting points
//!   than the real data (Fig. 16b).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_core::prelude::*;
use temporal_engine::prelude::*;

fn id_rel(rows: Vec<(i64, Interval)>, qualifier: &str) -> TemporalRelation {
    let schema = Schema::new(vec![Column::qualified(qualifier, "id", DataType::Int)]);
    TemporalRelation::from_rows(
        schema,
        rows.into_iter()
            .map(|(id, iv)| (vec![Value::Int(id)], iv))
            .collect(),
    )
    .expect("valid intervals")
}

/// `Ddisj`: two relations of `n` tuples each; all `2n` intervals are
/// pairwise disjoint. Schema of both: `(id Int, ts, te)`.
pub fn ddisj(n: usize) -> (TemporalRelation, TemporalRelation) {
    // Tile the timeline: slot k = [10k, 10k + 5); r takes even slots,
    // s takes odd slots.
    let r = (0..n as i64)
        .map(|i| (i, Interval::of(20 * i, 20 * i + 5)))
        .collect();
    let s = (0..n as i64)
        .map(|i| (i, Interval::of(20 * i + 10, 20 * i + 15)))
        .collect();
    (id_rel(r, "r"), id_rel(s, "s"))
}

/// `Deq`: two relations of `n` tuples each; every interval is `[0, 100)`.
pub fn deq(n: usize) -> (TemporalRelation, TemporalRelation) {
    let iv = Interval::of(0, 100);
    let r = (0..n as i64).map(|i| (i, iv)).collect();
    let s = (0..n as i64).map(|i| (i, iv)).collect();
    (id_rel(r, "r"), id_rel(s, "s"))
}

/// `Drand`: for query O2 = `r ⟕ᵀ_{Min ≤ DUR(r.T) ≤ Max} s`.
/// `r` has schema `(id Int, ts, te)` with random intervals;
/// `s` has schema `(a Int, min Int, max Int, ts, te)` with random intervals
/// and duration categories like the running example's price table.
pub fn drand(n: usize, seed: u64) -> (TemporalRelation, TemporalRelation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = 10_000i64;
    let r_rows = (0..n as i64)
        .map(|i| {
            let dur = rng.gen_range(1..=400);
            let start = rng.gen_range(0..domain - dur);
            (i, Interval::of(start, start + dur))
        })
        .collect();
    let r = id_rel(r_rows, "r");

    let s_schema = Schema::new(vec![
        Column::qualified("s", "a", DataType::Int),
        Column::qualified("s", "min", DataType::Int),
        Column::qualified("s", "max", DataType::Int),
    ]);
    // Duplicate-freeness (Sec. 3.1): re-draw candidates whose
    // (a, min, max) values collide with an overlapping interval.
    use std::collections::HashMap;
    let mut taken: HashMap<(i64, i64, i64), Vec<Interval>> = HashMap::new();
    let mut s_rows = Vec::with_capacity(n);
    while s_rows.len() < n {
        // Duration categories reminiscent of the hotel example:
        // short/long/permanent bands over the duration domain.
        let lo = rng.gen_range(1..=300);
        let hi = lo + rng.gen_range(0..=100);
        let price = rng.gen_range(10..=90);
        let dur = rng.gen_range(1..=400);
        let start = rng.gen_range(0..domain - dur);
        let iv = Interval::of(start, start + dur);
        let slot = taken.entry((price, lo, hi)).or_default();
        if slot
            .iter()
            .all(|other| !other.overlaps(&iv) && *other != iv)
        {
            slot.push(iv);
            s_rows.push((vec![Value::Int(price), Value::Int(lo), Value::Int(hi)], iv));
        }
    }
    let s = TemporalRelation::from_rows(s_schema, s_rows).expect("valid intervals");
    debug_assert!(s.is_duplicate_free());
    (r, s)
}

/// The random dataset of Fig. 16b: same average duration as Incumben but
/// uniformly random start/end points, with a `pcn` column for query O3.
/// Schema: `(ssn Int, pcn Int, ts, te)`.
pub fn random_like_incumben(n: usize, positions: usize, seed: u64) -> TemporalRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let days = 16 * 365i64;
    let schema = Schema::new(vec![
        Column::new("ssn", DataType::Int),
        Column::new("pcn", DataType::Int),
    ]);
    let rows = (0..n as i64)
        .map(|i| {
            let dur = rng.gen_range(1..=360); // uniform, mean ≈ 180
            let start = rng.gen_range(0..days - dur);
            (
                vec![
                    Value::Int(i),
                    Value::Int(rng.gen_range(0..positions as i64)),
                ],
                Interval::of(start, start + dur),
            )
        })
        .collect();
    TemporalRelation::from_rows(schema, rows).expect("valid intervals")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddisj_is_pairwise_disjoint() {
        let (r, s) = ddisj(50);
        let mut all: Vec<Interval> = r.iter().map(|(_, iv)| iv).collect();
        all.extend(s.iter().map(|(_, iv)| iv));
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn deq_is_all_equal() {
        let (r, s) = deq(10);
        for (_, iv) in r.iter().chain(s.iter()) {
            assert_eq!(iv, Interval::of(0, 100));
        }
        assert_eq!(r.len(), 10);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn drand_shapes() {
        let (r, s) = drand(200, 1);
        assert_eq!(r.data_width(), 1);
        assert_eq!(s.data_width(), 3);
        assert_eq!(r.len(), 200);
        // min ≤ max in all categories
        for (d, _) in s.iter() {
            assert!(d[1].as_int().unwrap() <= d[2].as_int().unwrap());
        }
        // deterministic
        let (r2, _) = drand(200, 1);
        assert_eq!(r.rel(), r2.rel());
    }

    #[test]
    fn random_like_incumben_mean_duration() {
        let r = random_like_incumben(5_000, 500, 3);
        let mean = r.iter().map(|(_, iv)| iv.duration()).sum::<i64>() as f64 / 5_000.0;
        assert!((150.0..=210.0).contains(&mean), "mean {mean}");
        assert!(r.is_duplicate_free());
    }
}
