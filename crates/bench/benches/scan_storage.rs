//! Paged scan vs in-memory scan: the same full-table scan + temporal
//! aggregation over (a) an in-memory catalog table (`SeqScan` over
//! `Arc<Relation>` rows) and (b) a heap file behind a buffer pool capped
//! below the table's page count (`StorageScan` streaming pages). The
//! paged series therefore pays real page decoding per iteration — the
//! price of a table that no longer has to fit in RAM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temporal_core::prelude::Database;
use temporal_datasets::drand;
use temporal_engine::prelude::*;

const POOL: usize = 8;

fn scan_len(db: &Database) -> usize {
    db.table("r")
        .unwrap()
        .filter(col("id").lt(lit(0i64)))
        .collect()
        .expect("scan")
        .len()
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("talign_crit_scan_storage");
    let _ = std::fs::remove_dir_all(&dir);
    let mut group = c.benchmark_group("scan_storage");
    group.sample_size(10);
    for &n in &[2_500usize, 10_000, 40_000] {
        let (r, _) = drand(n, 7);

        let mem = Database::new();
        mem.register("r", &r).expect("register in-memory");
        group.bench_with_input(BenchmarkId::new("in-memory", n), &mem, |b, db| {
            b.iter(|| scan_len(db))
        });

        let paged = Database::open_with_pool(dir.join(n.to_string()), POOL).expect("open dir");
        paged.register("r", &r).expect("register persisted");
        let pages = paged.read(|catalog, _| match catalog.source("r").expect("source") {
            TableSource::Stored(t) => t.page_count(),
            TableSource::Mem(_) => unreachable!("durable register backs with a heap"),
        });
        assert!(pages as usize > POOL, "table must exceed the pool");
        group.bench_with_input(BenchmarkId::new("paged", n), &paged, |b, db| {
            b.iter(|| scan_len(db))
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
