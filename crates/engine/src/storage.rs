//! Tuple-level glue over the byte-oriented `temporal-store` pager: the
//! row/schema codec and [`StoredTable`], the heap-file backing of a
//! catalog table.
//!
//! Layering: `temporal-store` moves opaque records between slotted pages,
//! a buffer pool and disk; this module defines what those records *are*
//! (an encoded [`Row`]) and what the page-header fingerprint protects (the
//! serialized [`Schema`]). The executor side lives in
//! [`crate::exec::StorageScanExec`], which decodes pages straight into
//! [`crate::batch::RowBatch`]es without ever materializing the table.

use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use temporal_store::{AppendBatch, HeapSnapshot, IndexEntry, Page, PageId, TableHeap};

use crate::error::{EngineError, EngineResult};
use crate::hashing::FxHasher;
use crate::relation::Relation;
use crate::schema::{Column, DataType, Schema};
use crate::tuple::Row;
use crate::value::Value;

/// File extension of heap files inside a database directory.
pub const HEAP_EXT: &str = "heap";

/// File extension of interval-index files inside a database directory.
pub const INDEX_EXT: &str = "tidx";

pub use temporal_store::{
    IntervalIndex, Manifest, PageZone, PoolStats, SyncMode, TableMeta, Wal, WalRecord, WalStats,
    ZoneBounds, DEFAULT_POOL_PAGES as DEFAULT_BUFFER_POOL_PAGES, PAGE_SIZE,
};

/// The `(ts, te)` column positions when `schema` has the temporal shape —
/// at least two columns with the trailing pair both `Int` (the workspace
/// convention for valid-time `[ts, te)` attributes).
pub fn temporal_cols(schema: &Schema) -> Option<(usize, usize)> {
    let n = schema.len();
    let cols = schema.cols();
    if n >= 2 && cols[n - 2].dtype == DataType::Int && cols[n - 1].dtype == DataType::Int {
        Some((n - 2, n - 1))
    } else {
        None
    }
}

/// The zone-map key column: the first column, when it is `Int` and not
/// itself one of the temporal columns.
fn zone_key_col(schema: &Schema) -> Option<usize> {
    let (ts, _) = temporal_cols(schema)?;
    (ts > 0 && schema.cols()[0].dtype == DataType::Int).then_some(0)
}

// ---- schema codec --------------------------------------------------------

/// Serialize a schema as the manifest's `name:type,…` string (qualifiers
/// are dropped: persisted base tables are unqualified).
pub fn schema_to_string(schema: &Schema) -> String {
    schema
        .cols()
        .iter()
        .map(|c| format!("{}:{}", c.name, c.dtype))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a manifest schema string back into a [`Schema`].
pub fn schema_from_string(s: &str) -> EngineResult<Schema> {
    if s.is_empty() {
        return Ok(Schema::empty());
    }
    let mut cols = Vec::new();
    for item in s.split(',') {
        let (name, dtype) = item.split_once(':').ok_or_else(|| {
            EngineError::Storage(format!("bad schema entry {item:?} (expected name:type)"))
        })?;
        let dtype = match dtype {
            "bool" => DataType::Bool,
            "int" => DataType::Int,
            "double" => DataType::Double,
            "str" => DataType::Str,
            other => {
                return Err(EngineError::Storage(format!(
                    "unknown data type {other:?} in schema string"
                )))
            }
        };
        cols.push(Column::new(name, dtype));
    }
    Ok(Schema::new(cols))
}

/// The schema fingerprint stamped into every page header of a table's
/// heap file: an FxHash of the serialized (unqualified) schema, so a heap
/// can never be decoded under the wrong column layout.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = FxHasher::default();
    h.write(schema_to_string(schema).as_bytes());
    h.finish()
}

// ---- row codec -----------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_STR: u8 = 4;

/// Append the encoding of `row` to `buf` (tag byte per value, fixed-width
/// numerics, length-prefixed strings).
pub fn encode_row(row: &Row, buf: &mut Vec<u8>) {
    for v in row.values() {
        match v {
            Value::Null => buf.push(TAG_NULL),
            Value::Bool(b) => {
                buf.push(TAG_BOOL);
                buf.push(u8::from(*b));
            }
            Value::Int(i) => {
                buf.push(TAG_INT);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                buf.push(TAG_DOUBLE);
                buf.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(TAG_STR);
                let bytes = s.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
        }
    }
}

/// Decode a record produced by [`encode_row`] back into a row of `arity`
/// values.
pub fn decode_row(mut rec: &[u8], arity: usize) -> EngineResult<Row> {
    fn take<'a>(rec: &mut &'a [u8], n: usize) -> EngineResult<&'a [u8]> {
        if rec.len() < n {
            return Err(EngineError::Storage(
                "record truncated while decoding".into(),
            ));
        }
        let (head, tail) = rec.split_at(n);
        *rec = tail;
        Ok(head)
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = take(&mut rec, 1)?[0];
        values.push(match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(take(&mut rec, 1)?[0] != 0),
            TAG_INT => Value::Int(i64::from_le_bytes(
                take(&mut rec, 8)?.try_into().expect("8 bytes"),
            )),
            TAG_DOUBLE => Value::Double(f64::from_bits(u64::from_le_bytes(
                take(&mut rec, 8)?.try_into().expect("8 bytes"),
            ))),
            TAG_STR => {
                let len =
                    u32::from_le_bytes(take(&mut rec, 4)?.try_into().expect("4 bytes")) as usize;
                let bytes = take(&mut rec, len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| EngineError::Storage("non-UTF8 string in record".into()))?;
                Value::str(s)
            }
            other => {
                return Err(EngineError::Storage(format!(
                    "unknown value tag {other} in record"
                )))
            }
        });
    }
    if !rec.is_empty() {
        return Err(EngineError::Storage(format!(
            "{} trailing bytes after decoding {arity} values",
            rec.len()
        )));
    }
    Ok(Row::new(values))
}

// ---- stored tables -------------------------------------------------------

/// A catalog table backed by a heap file: schema + [`TableHeap`]. Appends
/// go through the buffer pool; scans decode one pinned page at a time.
#[derive(Debug)]
pub struct StoredTable {
    name: String,
    schema: Schema,
    path: PathBuf,
    heap: TableHeap,
    /// `(ts, te)` positions when the schema has the temporal shape.
    temporal: Option<(usize, usize)>,
    /// First column, when it participates in the zone-map key bounds.
    key_col: Option<usize>,
    /// Persistent interval index over `(ts, te)`, when one is attached.
    index: Mutex<Option<Arc<IntervalIndex>>>,
}

impl StoredTable {
    /// Create a fresh heap file for `name` at `path` (truncating any
    /// previous file). Column names must round-trip through the manifest
    /// schema string, so names containing `,`, `:`, tabs or newlines are
    /// rejected here — before anything is written.
    pub fn create(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        schema: Schema,
        pool_pages: usize,
    ) -> EngineResult<StoredTable> {
        let schema = schema.without_qualifiers();
        for c in schema.cols() {
            if c.name.contains([',', ':', '\t', '\n']) {
                return Err(EngineError::Storage(format!(
                    "column name {:?} cannot be persisted (',', ':', tabs and newlines \
                     do not round-trip through the manifest schema string)",
                    c.name
                )));
            }
        }
        let path = path.as_ref().to_path_buf();
        let heap = TableHeap::create(&path, schema_fingerprint(&schema), pool_pages)?;
        Ok(StoredTable::assemble(name.into(), schema, path, heap))
    }

    fn assemble(name: String, schema: Schema, path: PathBuf, heap: TableHeap) -> StoredTable {
        let temporal = temporal_cols(&schema);
        let key_col = zone_key_col(&schema);
        StoredTable {
            name,
            schema,
            path,
            heap,
            temporal,
            key_col,
            index: Mutex::new(None),
        }
    }

    /// Open an existing heap file, validating every page against the
    /// schema fingerprint.
    pub fn open(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        schema: Schema,
        pool_pages: usize,
    ) -> EngineResult<StoredTable> {
        let schema = schema.without_qualifiers();
        let path = path.as_ref().to_path_buf();
        let heap = TableHeap::open(&path, schema_fingerprint(&schema), pool_pages)?;
        Ok(StoredTable::assemble(name.into(), schema, path, heap))
    }

    /// Open an existing heap file without the eager whole-file validation
    /// pass, trusting `rows` (from the manifest). The first page and —
    /// lazily — every pinned page are still fingerprint-checked, so the
    /// wrong schema cannot decode the heap; this keeps `Database::open`
    /// proportional to the manifest, not the data.
    pub fn open_with_count(
        path: impl AsRef<Path>,
        name: impl Into<String>,
        schema: Schema,
        pool_pages: usize,
        rows: u64,
    ) -> EngineResult<StoredTable> {
        let schema = schema.without_qualifiers();
        let path = path.as_ref().to_path_buf();
        let heap =
            TableHeap::open_with_count(&path, schema_fingerprint(&schema), pool_pages, rows)?;
        Ok(StoredTable::assemble(name.into(), schema, path, heap))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (unqualified).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Heap file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows across all pages.
    pub fn row_count(&self) -> u64 {
        self.heap.row_count()
    }

    /// Pages in the heap file.
    pub fn page_count(&self) -> u32 {
        self.heap.page_count()
    }

    /// Consistent visibility snapshot of the heap: an immutable prefix
    /// `(pages, tail_tuples)` that concurrent appends never rewrite, so a
    /// reader holding the snapshot scans a stable table prefix without
    /// blocking writers (see [`HeapSnapshot`]).
    pub fn snapshot(&self) -> HeapSnapshot {
        self.heap.snapshot()
    }

    /// Defer snapshot publication of subsequent appends until the guard
    /// drops — a multi-row write becomes visible to new snapshots
    /// atomically instead of row by row.
    pub fn begin_batch(&self) -> AppendBatch<'_> {
        self.heap.begin_batch()
    }

    /// Disk reads performed so far (buffer pool misses).
    pub fn io_reads(&self) -> u64 {
        self.heap.pool().io_reads()
    }

    /// Full buffer-pool counters of this table's heap pool (fetches,
    /// misses, write-backs, syncs, evictions, capacity).
    pub fn pool_stats(&self) -> PoolStats {
        self.heap.pool().stats()
    }

    /// Buffer pool frame count.
    pub fn pool_pages(&self) -> usize {
        self.heap.pool().capacity()
    }

    /// Append one row (arity-checked against the table schema), stamping
    /// the page's zone map and maintaining the interval index when one is
    /// attached. Returns the heap page the row landed on.
    pub fn append_row(&self, row: &Row) -> EngineResult<PageId> {
        let (page, entry) = self.append_row_inner(row)?;
        if let (Some(entry), Some(index)) = (entry, self.index()) {
            index.append(&[entry])?;
        }
        Ok(page)
    }

    /// Append + zone-stamp one row; the index entry (if any) is returned
    /// to the caller instead of applied, so bulk paths can batch.
    fn append_row_inner(&self, row: &Row) -> EngineResult<(PageId, Option<IndexEntry>)> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch(format!(
                "row has {} values, stored table '{}' has {} columns",
                row.len(),
                self.name,
                self.schema.len()
            )));
        }
        let mut buf = Vec::with_capacity(64);
        encode_row(row, &mut buf);
        let values = row.values();
        // Rows with NULL (or non-Int) temporal attributes poison the
        // page's zone map and are left out of the index: the canonical
        // temporal range conjuncts evaluate to false on them, so neither
        // pruning layer can lose such a row.
        let interval = self
            .temporal
            .and_then(|(tsi, tei)| match (&values[tsi], &values[tei]) {
                (Value::Int(ts), Value::Int(te)) => Some((*ts, *te)),
                _ => None,
            });
        let page = match interval {
            Some((ts, te)) => {
                let key = self.key_col.and_then(|k| match &values[k] {
                    Value::Int(v) => Some(*v),
                    _ => None,
                });
                self.heap.append_with_zone(&buf, ts, te, key)?
            }
            None => self.heap.append(&buf)?,
        };
        Ok((page, interval.map(|(ts, te)| (ts, te, page))))
    }

    /// Append many rows, batching the interval-index maintenance.
    pub fn append_rows<'r>(&self, rows: impl IntoIterator<Item = &'r Row>) -> EngineResult<()> {
        let mut entries = Vec::new();
        for r in rows {
            let (_, entry) = self.append_row_inner(r)?;
            entries.extend(entry);
        }
        if !entries.is_empty() {
            if let Some(index) = self.index() {
                index.append(&entries)?;
            }
        }
        Ok(())
    }

    /// Header-only zone map of heap page `page_no`.
    pub fn zone_of(&self, page_no: u32) -> EngineResult<PageZone> {
        self.heap.zone_of(page_no).map_err(EngineError::from)
    }

    /// The heap pages whose zone maps may satisfy `bounds`, in order.
    /// Pages with poisoned (unknown) zones always survive.
    pub fn zone_surviving_pages(&self, bounds: &ZoneBounds) -> EngineResult<Vec<PageId>> {
        let mut pages = Vec::new();
        for page_no in 0..self.page_count() {
            if self.zone_of(page_no)?.may_match(bounds) {
                pages.push(page_no);
            }
        }
        Ok(pages)
    }

    /// `(ts, te)` column positions when the schema has the temporal shape.
    pub fn temporal_cols(&self) -> Option<(usize, usize)> {
        self.temporal
    }

    /// The zone-map key column position, if one participates.
    pub fn key_col(&self) -> Option<usize> {
        self.key_col
    }

    /// The attached interval index, if any.
    pub fn index(&self) -> Option<Arc<IntervalIndex>> {
        self.index.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Attach an interval index to this table.
    pub fn attach_index(&self, index: IntervalIndex) {
        *self.index.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(index));
    }

    /// The index file name (for the manifest), when an index is attached.
    pub fn index_file_name(&self) -> Option<String> {
        self.index().and_then(|i| {
            i.path()
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
        })
    }

    /// Decode all rows of page `page_no` (one pinned page; the pin is
    /// released before returning).
    pub fn decode_page(&self, page_no: u32) -> EngineResult<Vec<Row>> {
        let arity = self.schema.len();
        self.heap
            .with_page(page_no, |page: &Page| {
                let mut rows = Vec::with_capacity(page.tuple_count() as usize);
                for rec in page.records() {
                    let rec = rec?;
                    match decode_row(rec, arity) {
                        Ok(r) => rows.push(r),
                        Err(e) => {
                            return Err(temporal_store::StoreError::Corrupt(format!(
                                "page {page_no}: {e}"
                            )))
                        }
                    }
                }
                Ok(rows)
            })
            .map_err(EngineError::from)
    }

    /// Decode at most the first `limit` tuples of heap page `page_no` —
    /// the clamped decode used when a page is the partially-visible tail
    /// of a [`HeapSnapshot`]. Records appended past the snapshot's
    /// watermark land after the prefix, so truncating the record iterator
    /// is exactly the snapshot's visibility rule.
    pub fn decode_page_prefix(&self, page_no: u32, limit: u16) -> EngineResult<Vec<Row>> {
        let arity = self.schema.len();
        self.heap
            .with_page(page_no, |page: &Page| {
                let visible = limit.min(page.tuple_count());
                let mut rows = Vec::with_capacity(visible as usize);
                for rec in page.records().take(visible as usize) {
                    let rec = rec?;
                    match decode_row(rec, arity) {
                        Ok(r) => rows.push(r),
                        Err(e) => {
                            return Err(temporal_store::StoreError::Corrupt(format!(
                                "page {page_no}: {e}"
                            )))
                        }
                    }
                }
                Ok(rows)
            })
            .map_err(EngineError::from)
    }

    /// Materialize the whole table (streamed page by page) — the
    /// compatibility path behind [`crate::catalog::Catalog::get`]; query
    /// execution should scan via [`crate::exec::StorageScanExec`] instead.
    pub fn read_all(&self) -> EngineResult<Relation> {
        let mut rel = Relation::empty(self.schema.clone());
        for page_no in 0..self.page_count() {
            for row in self.decode_page(page_no)? {
                rel.push(row)?;
            }
        }
        Ok(rel)
    }

    /// Write back dirty pages and sync the heap file (and the interval
    /// index, when one is attached).
    pub fn flush(&self) -> EngineResult<()> {
        self.heap.flush()?;
        if let Some(index) = self.index() {
            index.flush()?;
        }
        Ok(())
    }

    /// Route every append through the database WAL: the heap logs each
    /// acknowledged row (a full-page image on a page's first touch per
    /// checkpoint epoch, a logical record afterwards) and its buffer pool
    /// syncs the log before any dirty page write-back. The interval index
    /// is *not* logged — it is derived data, rebuilt during recovery.
    pub fn attach_wal(&self, wal: Arc<temporal_store::Wal>) {
        self.heap.attach_wal(wal, self.name.clone());
    }

    /// Flush and close the table's buffer pools, surfacing the I/O errors
    /// the silent drop path would swallow. The table must not be used
    /// afterwards.
    pub fn close(&self) -> EngineResult<()> {
        self.heap.close()?;
        if let Some(index) = self.index() {
            index.flush()?;
            index.pool().close()?;
        }
        Ok(())
    }

    /// Create a stored table at `dir/<name>.heap` and fill it with the
    /// rows of `rel`, flushed and synced — the "persist a relation" entry
    /// point used by the `Database` front door. **Atomic**: the rows are
    /// written to a temporary file which is renamed over the final path
    /// only once complete, so a failure (or crash) mid-persist leaves any
    /// previous heap file for `name` untouched.
    pub fn persist_relation(
        dir: &Path,
        name: &str,
        rel: &Relation,
        pool_pages: usize,
    ) -> EngineResult<Arc<StoredTable>> {
        validate_table_name(name)?;
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::Storage(format!("create {}: {e}", dir.display())))?;
        let path = heap_path(dir, name);
        let tmp = dir.join(format!(".{name}.{HEAP_EXT}.tmp"));
        let entries = {
            let table = StoredTable::create(&tmp, name, rel.schema().clone(), pool_pages)?;
            let mut entries = Vec::new();
            for r in rel.rows() {
                let (_, entry) = table.append_row_inner(r)?;
                entries.extend(entry);
            }
            table.flush()?;
            entries
        };
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            EngineError::Storage(format!(
                "rename {} → {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        let table = StoredTable::open_with_count(
            &path,
            name,
            rel.schema().clone(),
            pool_pages,
            rel.len() as u64,
        )?;
        // Temporal tables get a freshly bulk-loaded interval index (same
        // temp-then-rename discipline; the heap stays valid without it).
        if table.temporal_cols().is_some() {
            let idx_path = index_path(dir, name);
            let idx_tmp = dir.join(format!(".{name}.{INDEX_EXT}.tmp"));
            let index = IntervalIndex::build(&idx_tmp, pool_pages, entries)?;
            index.flush()?;
            drop(index);
            std::fs::rename(&idx_tmp, &idx_path).map_err(|e| {
                let _ = std::fs::remove_file(&idx_tmp);
                EngineError::Storage(format!(
                    "rename {} → {}: {e}",
                    idx_tmp.display(),
                    idx_path.display()
                ))
            })?;
            table.attach_index(IntervalIndex::open(&idx_path, pool_pages)?);
        }
        Ok(Arc::new(table))
    }
}

/// The heap file path of table `name` inside database directory `dir`.
pub fn heap_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.{HEAP_EXT}"))
}

/// The interval-index file path of table `name` inside directory `dir`.
pub fn index_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.{INDEX_EXT}"))
}

/// A table name becomes both a file name (`<name>.heap`) and a manifest
/// field, so it must stay inside the database directory and round-trip
/// the manifest format. Checked **before** anything touches the disk.
pub fn validate_table_name(name: &str) -> EngineResult<()> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(EngineError::Storage(format!(
            "table name {name:?} cannot be persisted: use alphanumerics, '_' or '-' \
             (the name becomes a file name and a manifest field)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("n", DataType::Str),
            Column::new("x", DataType::Double),
            Column::new("ok", DataType::Bool),
            Column::new("ts", DataType::Int),
            Column::new("te", DataType::Int),
        ])
    }

    fn row(n: &str, x: f64, ok: bool, ts: i64, te: i64) -> Row {
        Row::new(vec![
            Value::str(n),
            Value::Double(x),
            Value::Bool(ok),
            Value::Int(ts),
            Value::Int(te),
        ])
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("talign_engine_storage_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn row_codec_roundtrip_all_types() {
        let rows = vec![
            row("ann", 1.5, true, 0, 8),
            row("", f64::NAN, false, -3, i64::MAX),
            Row::new(vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ]),
            row("ünïcode-ω", -0.0, true, 1, 2),
        ];
        for r in &rows {
            let mut buf = Vec::new();
            encode_row(r, &mut buf);
            let back = decode_row(&buf, r.len()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut buf = Vec::new();
        encode_row(&row("x", 1.0, true, 1, 2), &mut buf);
        assert!(decode_row(&buf[..buf.len() - 1], 5).is_err()); // truncated
        assert!(decode_row(&buf, 4).is_err()); // trailing bytes
        let mut bad = buf.clone();
        bad[0] = 99; // unknown tag
        assert!(decode_row(&bad, 5).is_err());
    }

    #[test]
    fn schema_string_roundtrip_and_fingerprint() {
        let s = schema();
        let text = schema_to_string(&s);
        assert_eq!(text, "n:str,x:double,ok:bool,ts:int,te:int");
        let back = schema_from_string(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(schema_fingerprint(&back), schema_fingerprint(&s));
        // Qualifiers do not change the fingerprint…
        assert_eq!(
            schema_fingerprint(&s.with_qualifier("t")),
            schema_fingerprint(&s)
        );
        // …but column renames and type changes do.
        assert_ne!(
            schema_fingerprint(&s.renamed(0, "m")),
            schema_fingerprint(&s)
        );
        assert!(schema_from_string("a:int,b").is_err());
        assert!(schema_from_string("a:timestamp").is_err());
        assert_eq!(schema_from_string("").unwrap().len(), 0);
    }

    #[test]
    fn stored_table_roundtrip_and_reopen() {
        let path = tmp("roundtrip.heap");
        let rows: Vec<Row> = (0..500)
            .map(|i| row(&format!("name-{i}"), i as f64 / 2.0, i % 2 == 0, i, i + 5))
            .collect();
        {
            let t = StoredTable::create(&path, "t", schema(), 4).unwrap();
            t.append_rows(&rows).unwrap();
            t.flush().unwrap();
            assert_eq!(t.row_count(), 500);
            assert!(t.page_count() > 4, "table must exceed its pool");
        }
        let t = StoredTable::open(&path, "t", schema(), 4).unwrap();
        let all = t.read_all().unwrap();
        assert_eq!(all.rows(), &rows[..]);
        // The wrong schema cannot open the heap.
        let wrong = Schema::new(vec![Column::new("z", DataType::Int)]);
        assert!(StoredTable::open(&path, "t", wrong, 4).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn table_and_column_names_validated_before_disk_io() {
        assert!(validate_table_name("ok_table-1").is_ok());
        for bad in ["", "a/b", "a\tb", "../evil", ".hidden", "a b"] {
            assert!(validate_table_name(bad).is_err(), "{bad:?}");
        }
        // Unpersistable column names are rejected before the heap exists.
        let path = tmp("badcol.heap");
        let bad_schema = Schema::new(vec![Column::new("a,b", DataType::Int)]);
        assert!(StoredTable::create(&path, "t", bad_schema, 2).is_err());
        assert!(!path.exists());
    }

    #[test]
    fn append_row_checks_arity() {
        let path = tmp("arity.heap");
        let t = StoredTable::create(&path, "t", schema(), 2).unwrap();
        assert!(t.append_row(&Row::new(vec![Value::Int(1)])).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
