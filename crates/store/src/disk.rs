//! The disk manager: page-granular file I/O for one heap file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Reads and writes whole pages of a single heap file. Thread-safe: the
/// file handle sits behind a mutex, and the page count is derived from the
/// tracked file length.
#[derive(Debug)]
pub struct DiskManager {
    path: PathBuf,
    inner: Mutex<DiskInner>,
}

#[derive(Debug)]
struct DiskInner {
    file: File,
    pages: u32,
}

impl DiskManager {
    /// Open (or create) the heap file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StoreResult<DiskManager> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Corrupt(format!(
                "heap file {} has length {len}, not a multiple of the page size {PAGE_SIZE}",
                path.display()
            )));
        }
        let pages = (len / PAGE_SIZE as u64) as u32;
        Ok(DiskManager {
            path,
            inner: Mutex::new(DiskInner { file, pages }),
        })
    }

    /// The heap file path (for manifest bookkeeping and error messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages currently in the file.
    pub fn page_count(&self) -> u32 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).pages
    }

    /// Read page `id` into `page`.
    pub fn read_page(&self, id: PageId, page: &mut Page) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if id >= inner.pages {
            return Err(StoreError::Corrupt(format!(
                "page {id} out of bounds ({} pages in {})",
                inner.pages,
                self.path.display()
            )));
        }
        inner
            .file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        inner.file.read_exact(page.as_bytes_mut())?;
        Ok(())
    }

    /// Write `page` at page number `id` (must be `<=` the current count;
    /// writing at the count extends the file by one page).
    pub fn write_page(&self, id: PageId, page: &Page) -> StoreResult<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if id > inner.pages {
            return Err(StoreError::Corrupt(format!(
                "write would leave a hole: page {id}, file has {} pages",
                inner.pages
            )));
        }
        inner
            .file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        inner.file.write_all(page.as_bytes())?;
        if id == inner.pages {
            inner.pages += 1;
        }
        Ok(())
    }

    /// Append a fresh page, returning its id.
    pub fn allocate_page(&self, page: &Page) -> StoreResult<PageId> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = inner.pages;
        inner
            .file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        inner.file.write_all(page.as_bytes())?;
        inner.pages += 1;
        Ok(id)
    }

    /// Flush file buffers to the OS (durability point).
    pub fn sync(&self) -> StoreResult<()> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("talign_store_disk_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tmpfile("roundtrip.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 0);
        let mut p = Page::init(9);
        p.insert(b"payload").unwrap();
        let id = dm.allocate_page(&p).unwrap();
        assert_eq!(id, 0);
        assert_eq!(dm.page_count(), 1);

        let mut back = Page::zeroed();
        dm.read_page(0, &mut back).unwrap();
        back.validate(9).unwrap();
        assert_eq!(back.record(0).unwrap(), b"payload");

        // Reopen sees the same page count.
        drop(dm);
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1);
        assert!(dm.read_page(1, &mut back).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_torn_files_and_holes() {
        let path = tmpfile("torn.heap");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 1]).unwrap();
        assert!(DiskManager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();

        let path = tmpfile("holes.heap");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path).unwrap();
        assert!(dm.write_page(3, &Page::init(0)).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
