//! `tsql` — an interactive shell for the temporal SQL dialect.
//!
//! ```text
//! cargo run -p temporal-sql --bin tsql [--demo]
//! ```
//!
//! With `--demo`, the paper's running example (relations `r` and `p`,
//! Fig. 1a, months numbered from 2012/1 = 0) and a small `incumben`-style
//! table are preloaded. Statements end with `;`. Meta commands:
//!
//! * `\d` — list tables,
//! * `\q` — quit.
//!
//! Example session:
//!
//! ```text
//! tsql> SET enable_mergejoin = off;
//! tsql> SELECT * FROM (r r1 NORMALIZE r r2 USING()) x;
//! tsql> EXPLAIN SELECT * FROM (r ALIGN p ON DUR(Us,Ue) BETWEEN Min AND Max) a;
//! ```

use std::io::{BufRead, Write};

use temporal_core::prelude::*;
use temporal_engine::prelude::*;
use temporal_sql::{Session, SqlOutput};

fn demo_session() -> Session {
    use temporal_core::interval::month::ym;
    let mut session = Session::new();
    let r = TemporalRelation::from_rows(
        Schema::new(vec![Column::new("n", DataType::Str)]),
        vec![
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 1), ym(2012, 8)),
            ),
            (
                vec![Value::str("joe")],
                Interval::of(ym(2012, 2), ym(2012, 6)),
            ),
            (
                vec![Value::str("ann")],
                Interval::of(ym(2012, 8), ym(2012, 12)),
            ),
        ],
    )
    .expect("demo fixture");
    let p = TemporalRelation::from_rows(
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("min", DataType::Int),
            Column::new("max", DataType::Int),
        ]),
        vec![
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 1), ym(2012, 6)),
            ),
            (
                vec![Value::Int(30), Value::Int(8), Value::Int(12)],
                Interval::of(ym(2012, 1), ym(2013, 1)),
            ),
            (
                vec![Value::Int(50), Value::Int(1), Value::Int(2)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
            (
                vec![Value::Int(40), Value::Int(3), Value::Int(7)],
                Interval::of(ym(2012, 10), ym(2013, 1)),
            ),
        ],
    )
    .expect("demo fixture");
    session.register_temporal("r", &r).expect("register r");
    session.register_temporal("p", &p).expect("register p");
    session
}

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let mut session = if demo {
        eprintln!("loaded demo tables: r (reservations), p (prices) — paper Fig. 1a");
        demo_session()
    } else {
        Session::new()
    };

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let interactive = true;
    if interactive {
        eprint!("tsql> ");
    }
    std::io::stderr().flush().ok();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "\\q" => break,
                "\\d" => {
                    let tables = session.database().list_tables();
                    if tables.is_empty() {
                        println!("(no tables — register programmatically or start with --demo)");
                    } else {
                        for t in tables {
                            println!("{t}");
                        }
                    }
                    eprint!("tsql> ");
                    std::io::stderr().flush().ok();
                    continue;
                }
                "" => {
                    eprint!("tsql> ");
                    std::io::stderr().flush().ok();
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            eprint!("  ... ");
            std::io::stderr().flush().ok();
            continue;
        }
        let stmt = std::mem::take(&mut buffer);
        match session.execute(stmt.trim().trim_end_matches(';')) {
            Ok(SqlOutput::Rows(rel)) => println!("{}", rel.to_table()),
            Ok(SqlOutput::Explain(plan)) => println!("{plan}"),
            Ok(SqlOutput::Ok) => println!("OK"),
            Err(e) => println!("error: {e}"),
        }
        eprint!("tsql> ");
        std::io::stderr().flush().ok();
    }
}
