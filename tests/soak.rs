//! Soak test: a broad randomized sweep comparing the reduction-rule
//! implementation against the oracle and the baselines, at larger input
//! sizes and wider value/time domains than the per-module tests. One
//! deterministic pass runs in CI time; the `SOAK_ROUNDS` environment
//! variable scales it up for longer runs.

mod common;

use common::{random_trel, random_trel2};
use temporal_alignment::baselines::{sql_full_outer_join, sqlnorm_full_outer_join};
use temporal_alignment::core::prelude::*;
use temporal_alignment::core::reference::evaluate_oracle;
use temporal_alignment::core::semantics::{
    check_change_preservation, check_snapshot_reducibility, TemporalOp,
};
use temporal_alignment::engine::prelude::*;

fn rounds() -> u64 {
    std::env::var("SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn soak_all_operators_against_oracle() {
    let alg = TemporalAlgebra::default();
    for round in 0..rounds() {
        let seed = 10_000 + round * 17;
        let r = random_trel(seed, 24, 5, 40);
        let s = random_trel(seed + 1, 24, 5, 40);
        let theta = Some(col(0).eq(col(3)));
        let ops = vec![
            TemporalOp::Union,
            TemporalOp::Difference,
            TemporalOp::Intersection,
            TemporalOp::Projection { attrs: vec![0] },
            TemporalOp::Aggregation {
                group: vec![0],
                aggs: vec![
                    (AggCall::count_star(), "c".to_string()),
                    (AggCall::new(AggFunc::Min, col(1)), "mn".to_string()),
                    (AggCall::new(AggFunc::Max, col(2)), "mx".to_string()),
                ],
            },
            TemporalOp::Join {
                theta: theta.clone(),
            },
            TemporalOp::LeftOuterJoin {
                theta: theta.clone(),
            },
            TemporalOp::RightOuterJoin {
                theta: theta.clone(),
            },
            TemporalOp::FullOuterJoin {
                theta: theta.clone(),
            },
            TemporalOp::AntiJoin { theta },
        ];
        for op in ops {
            let args: Vec<&TemporalRelation> = if op.arity() == 1 {
                vec![&r]
            } else {
                vec![&r, &s]
            };
            let fast = op.evaluate(&alg, &args).unwrap();
            let slow = evaluate_oracle(&op, &args).unwrap();
            assert!(
                fast.same_set(&slow),
                "round {round} {}: reduction vs oracle mismatch",
                op.name()
            );
            // Full property checks on top of row equality.
            let sr = check_snapshot_reducibility(&op, &args, &fast).unwrap();
            assert!(sr.is_empty(), "round {round} {}: {sr:?}", op.name());
            let cp = check_change_preservation(&op, &args, &fast).unwrap();
            assert!(cp.is_empty(), "round {round} {}: {cp:?}", op.name());
        }
    }
}

#[test]
fn soak_baselines_and_planner_settings() {
    for round in 0..rounds() {
        let seed = 20_000 + round * 13;
        let r = random_trel2(seed, 18, 3, 30);
        let s = random_trel2(seed + 1, 18, 3, 30);
        let theta = Some(col(0).eq(col(4)));
        // Reference result under nestloop-only planning.
        let reference = TemporalAlgebra::new(PlannerConfig::nestloop_only())
            .full_outer_join(&r, &s, theta.clone())
            .unwrap();
        for config in [
            PlannerConfig::all_enabled(),
            PlannerConfig::no_merge(),
            PlannerConfig {
                enable_intervaljoin: true,
                ..Default::default()
            },
        ] {
            let out = TemporalAlgebra::new(config)
                .full_outer_join(&r, &s, theta.clone())
                .unwrap();
            assert!(out.same_set(&reference), "round {round}: {config:?}");
        }
        let planner = Planner::default();
        let sql = sql_full_outer_join(&r, &s, theta.clone(), &planner).unwrap();
        assert!(sql.same_set(&reference), "round {round}: sql baseline");
        let sqlnorm = sqlnorm_full_outer_join(&r, &s, theta.clone(), &planner).unwrap();
        assert!(sqlnorm.same_set(&reference), "round {round}: sql+normalize");
    }
}

#[test]
fn soak_coalesce_snapshot_equivalence() {
    // Coalescing any change-preserving result yields a snapshot-equivalent
    // relation (and absorb never changes snapshots either).
    let alg = TemporalAlgebra::default();
    for round in 0..rounds() {
        let seed = 30_000 + round * 7;
        let r = random_trel(seed, 20, 4, 32);
        let s = random_trel(seed + 1, 20, 4, 32);
        let out = alg.left_outer_join(&r, &s, None).unwrap();
        let merged = coalesce(&out).unwrap();
        for t in out.endpoints() {
            assert!(
                merged.timeslice(t).same_set(&out.timeslice(t)),
                "round {round}: coalesce changed snapshot at {t}"
            );
        }
        assert!(snapshot_equivalent(&out, &merged).unwrap());
    }
}
