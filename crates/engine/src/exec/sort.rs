//! Sort: materialize the input and emit in key order.
//!
//! The temporal adjustment pipeline (paper Figs. 8/9) sorts the
//! group-construction join output by (group identity, intersection
//! timestamps); this node provides that ordering.

use std::cmp::Ordering;

use crate::error::EngineResult;
use crate::exec::{BoxedExec, ExecNode};
use crate::expr::SortKey;
use crate::schema::Schema;
use crate::tuple::Row;
use crate::value::Value;

/// Compare two evaluated key vectors under the given sort keys.
fn cmp_keys(keys: &[SortKey], a: &[Value], b: &[Value]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let (va, vb) = (&a[i], &b[i]);
        let ord = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = va.cmp(vb);
                if k.desc {
                    o.reverse()
                } else {
                    o
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a row vector in place by `keys` (decorate–sort–undecorate).
pub fn sort_rows(rows: &mut Vec<Row>, keys: &[SortKey]) -> EngineResult<()> {
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            kv.push(k.expr.eval(row.values())?);
        }
        decorated.push((kv, row));
    }
    decorated.sort_by(|(ka, ra), (kb, rb)| cmp_keys(keys, ka, kb).then_with(|| ra.cmp(rb)));
    rows.extend(decorated.into_iter().map(|(_, r)| r));
    Ok(())
}

/// Materializing sort node.
pub struct SortExec {
    input: BoxedExec,
    keys: Vec<SortKey>,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl SortExec {
    pub fn new(input: BoxedExec, keys: Vec<SortKey>) -> Self {
        SortExec {
            input,
            keys,
            sorted: None,
        }
    }
}

impl ExecNode for SortExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> EngineResult<Option<Row>> {
        if self.sorted.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next()? {
                rows.push(r);
            }
            sort_rows(&mut rows, &self.keys)?;
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().expect("initialized").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int2_rel;
    use crate::exec::{collect, SeqScanExec};
    use crate::expr::col;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType};

    #[test]
    fn multi_key_sort_asc_desc() {
        let rel = int2_rel(("a", "b"), &[(2, 1), (1, 2), (1, 9), (2, 5)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        let sort = Box::new(SortExec::new(
            scan,
            vec![SortKey::asc(col(0)), SortKey::desc(col(1))],
        ));
        let out = collect(sort).unwrap();
        let vals: Vec<(i64, i64)> = out
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(vals, vec![(1, 9), (1, 2), (2, 5), (2, 1)]);
    }

    #[test]
    fn nulls_ordering() {
        let rel = Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            vec![vec![Value::Int(2)], vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap()
        .into_shared();
        let scan = Box::new(SeqScanExec::new(rel.clone()));
        let sort = Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]));
        let out = collect(sort).unwrap();
        assert!(out.rows()[0][0].is_null());
        // NULLS LAST on desc by default:
        let scan = Box::new(SeqScanExec::new(rel));
        let sort = Box::new(SortExec::new(scan, vec![SortKey::desc(col(0))]));
        let out = collect(sort).unwrap();
        assert!(out.rows()[2][0].is_null());
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn sort_is_deterministic_via_row_tiebreak() {
        let rel = int2_rel(("a", "b"), &[(1, 5), (1, 3), (1, 4)]).into_shared();
        let scan = Box::new(SeqScanExec::new(rel));
        // Sorting only by column a — ties broken by full row order.
        let sort = Box::new(SortExec::new(scan, vec![SortKey::asc(col(0))]));
        let out = collect(sort).unwrap();
        let b: Vec<i64> = out.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert_eq!(b, vec![3, 4, 5]);
    }
}
