//! # temporal-baselines
//!
//! The two comparison approaches of the paper's evaluation (Sec. 7):
//!
//! * [`sql_outer_join`] — temporal outer joins expressed in **standard
//!   SQL** following Snodgrass: the join part with overlap predicates and
//!   `GREATEST`/`LEAST` intersection arithmetic, and the negative part via
//!   candidate gap endpoints validated with `NOT EXISTS` (compiled, as in
//!   PostgreSQL, to anti joins). On workloads without useful equality
//!   predicates the anti join degenerates to nested loops — the quadratic
//!   behaviour of Figs. 15a/15c.
//! * [`sql_normalize`] — the join part in SQL plus the **normalization
//!   primitive** for the negative part (a temporal difference between the
//!   argument relation and the projected join result), the
//!   `sql+normalize` series of Fig. 16. Normalizing against the
//!   intermediate join result is what makes this approach slow.
//!
//! Both produce exactly the same relation as the reduction-rule
//! implementation (`temporal_core::algebra`) — asserted by the
//! `baselines_equivalence` integration tests — so the benchmarks compare
//! pure evaluation strategies.

pub mod sql_normalize;
pub mod sql_outer_join;

pub use sql_normalize::{sqlnorm_full_outer_join, sqlnorm_left_outer_join};
pub use sql_outer_join::{sql_full_outer_join, sql_left_outer_join, sql_left_outer_join_text};
