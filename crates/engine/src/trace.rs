//! A lightweight span tracer with chrome-trace export.
//!
//! `SET trace = on` (or `TEMPORAL_TRACE=on` in the environment) makes the
//! session layer record one span per query, plan and operator into the
//! database's [`Tracer`] — a fixed-capacity ring buffer of completed
//! spans. The buffer is bounded so a long-lived server can leave tracing
//! on without growing memory: when full, the oldest spans fall off and a
//! drop counter records how many were lost.
//!
//! [`Tracer::chrome_trace_json`] renders the buffer as a Chrome trace
//! event array (the `chrome://tracing` / Perfetto "X" complete-event
//! format), which the tsql `.trace <file>` dot-command writes to disk.
//! The JSON is emitted by hand — the tracer, like the rest of the
//! observability layer, takes no dependencies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: enough for ~100 queries with a dozen operator
/// spans each, small enough (~100 KB) to forget about.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One completed span. Times are microseconds relative to the tracer's
/// creation instant, so spans from different threads share one clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Human-readable name (`query`, `plan`, an operator head line).
    pub name: String,
    /// Category for trace-viewer filtering (`query` / `plan` / `operator`).
    pub cat: &'static str,
    /// Start offset from tracer creation, µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Lane: trace viewers stack spans per (pid, tid); the session layer
    /// uses depth-in-plan so operator spans nest visually under the query.
    pub tid: u64,
}

/// The span ring buffer (see module docs). Thread-safe; one per database.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    spans: Mutex<VecDeque<Span>>,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since tracer creation — the span clock.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a completed span. Oldest spans are evicted at capacity.
    pub fn record(&self, span: Span) {
        let mut ring = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Convenience: record a span that started at `start_us` on the span
    /// clock and just ended.
    pub fn record_since(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start_us: u64,
        tid: u64,
    ) {
        let end = self.now_us();
        self.record(Span {
            name: name.into(),
            cat,
            start_us,
            dur_us: end.saturating_sub(start_us),
            tid,
        });
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drop all buffered spans (the drop counter keeps accumulating).
    pub fn clear(&self) {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Copy out the buffered spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Render the buffer as a Chrome trace event array — complete ("X")
    /// events with microsecond timestamps, loadable in `chrome://tracing`
    /// or Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                json_escape(&s.name),
                json_escape(s.cat),
                s.start_us,
                s.dur_us,
                s.tid,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: u64) -> Span {
        Span {
            name: name.to_string(),
            cat: "query",
            start_us: start,
            dur_us: 5,
            tid: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(3);
        for i in 0..5 {
            t.record(span(&format!("q{i}"), i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let names: Vec<String> = t.spans().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["q2", "q3", "q4"]);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let t = Tracer::new(8);
        t.record(Span {
            name: "SELECT \"x\"\nline2".to_string(),
            cat: "query",
            start_us: 10,
            dur_us: 42,
            tid: 1,
        });
        let json = t.chrome_trace_json();
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":42"));
        // Quotes and newlines inside names are escaped.
        assert!(json.contains("SELECT \\\"x\\\"\\nline2"));
    }

    #[test]
    fn record_since_measures_on_the_span_clock() {
        let t = Tracer::new(8);
        let start = t.now_us();
        t.record_since("q", "query", start, 0);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_us, start);
    }

    #[test]
    fn clear_empties_the_ring() {
        let t = Tracer::new(4);
        t.record(span("a", 0));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }
}
