//! Temporal outer joins via SQL + the normalization primitive (Sec. 7.5):
//! the `sql+normalize` series of Fig. 16.
//!
//! The join part is computed with standard SQL (overlap predicates); the
//! negative part is the **temporal difference** between the argument
//! relation and the join result projected onto that argument's attributes,
//! computed with normalization per Table 2:
//! `r −ᵀ π(J) = N_A(r; π(J)) − N_A(π(J); r)`.
//!
//! The expensive step — and the reason `align` wins in Fig. 16 — is
//! normalizing against the *intermediate join result*, which is large and
//! supplies many candidate splitting points.

use temporal_core::error::TemporalResult;
use temporal_core::primitives::adjustment::normalize_plan;
use temporal_core::trel::TemporalRelation;
use temporal_engine::catalog::Catalog;
use temporal_engine::prelude::*;

/// Positive part: identical to the `sql` baseline's join part.
fn positive_part(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    crate::sql_outer_join::positive_part(r, s, theta)
}

/// The *temporal* projection of the positive part onto one side's
/// attributes: `πᵀ_A(J) = π_{A,T}(N_A(J; J))` per Table 2. A plain column
/// projection would leave value-equivalent overlapping tuples (the join
/// result pairs one r tuple with many s tuples), violating the
/// duplicate-freeness the temporal difference requires — and this
/// normalization of the intermediate join result is precisely the
/// expensive step Fig. 16 measures.
fn project_side(
    pos: LogicalPlan,
    keep_left: bool,
    dl: usize,
    dr_other: usize,
) -> TemporalResult<LogicalPlan> {
    let idxs: Vec<usize> = if keep_left {
        (0..dl).collect()
    } else {
        (dl..dl + dr_other).collect()
    };
    temporal_core::algebra::reduce_projection(pos, &idxs)
}

/// The temporal difference `x −ᵀ y` per Table 2 (both plans carry
/// identically-shaped data columns + ts/te).
fn temporal_difference(x: LogicalPlan, y: LogicalPlan) -> TemporalResult<LogicalPlan> {
    let dw = x.schema().len() - 2;
    let pairs: Vec<(usize, usize)> = (0..dw).map(|i| (i, i)).collect();
    let xn = normalize_plan(x.clone(), y.clone(), &pairs)?;
    let yn = normalize_plan(y, x, &pairs)?;
    Ok(xn.set_op(SetOpKind::Except, yn))
}

/// ω-pad a difference result `(data…, ts, te)` into the join schema.
fn pad(
    diff: LogicalPlan,
    own_names: Vec<String>,
    other_width: usize,
    nulls_on_right: bool,
) -> TemporalResult<LogicalPlan> {
    let own_width = own_names.len();
    let mut items: Vec<(Expr, String)> = Vec::new();
    if nulls_on_right {
        for (i, n) in own_names.iter().enumerate() {
            items.push((col(i), n.clone()));
        }
        for j in 0..other_width {
            items.push((Expr::Lit(Value::Null), format!("__pad{j}")));
        }
    } else {
        for j in 0..other_width {
            items.push((Expr::Lit(Value::Null), format!("__pad{j}")));
        }
        for (i, n) in own_names.iter().enumerate() {
            items.push((col(i), n.clone()));
        }
    }
    items.push((col(own_width), "ts".to_string()));
    items.push((col(own_width + 1), "te".to_string()));
    Ok(diff.project_named(items)?)
}

fn data_names(schema: &Schema) -> Vec<String> {
    schema.cols()[..schema.len() - 2]
        .iter()
        .map(|c| c.name.clone())
        .collect()
}

/// `r ⟕ᵀ_θ s` via sql+normalize.
pub fn sqlnorm_left_outer_join_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    let (dl, dr) = (rs.len() - 2, ss.len() - 2);
    let pos = positive_part(r.clone(), s, theta)?;
    let r_part = project_side(pos.clone(), true, dl, dr)?;
    let neg = temporal_difference(r, r_part)?;
    let padded = pad(neg, data_names(&rs), dr, true)?;
    Ok(pos.set_op(SetOpKind::Union, padded))
}

/// `r ⟗ᵀ_θ s` via sql+normalize.
pub fn sqlnorm_full_outer_join_plan(
    r: LogicalPlan,
    s: LogicalPlan,
    theta: Option<Expr>,
) -> TemporalResult<LogicalPlan> {
    let rs = r.schema();
    let ss = s.schema();
    let (dl, dr) = (rs.len() - 2, ss.len() - 2);
    let pos = positive_part(r.clone(), s.clone(), theta)?;
    let r_part = project_side(pos.clone(), true, dl, dr)?;
    let s_part = project_side(pos.clone(), false, dl, dr)?;
    let neg_r = pad(temporal_difference(r, r_part)?, data_names(&rs), dr, true)?;
    let neg_s = pad(temporal_difference(s, s_part)?, data_names(&ss), dl, false)?;
    Ok(pos
        .set_op(SetOpKind::Union, neg_r)
        .set_op(SetOpKind::Union, neg_s))
}

/// Evaluate [`sqlnorm_left_outer_join_plan`] on materialized relations.
pub fn sqlnorm_left_outer_join(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    planner: &Planner,
) -> TemporalResult<TemporalRelation> {
    let plan = sqlnorm_left_outer_join_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        theta,
    )?;
    TemporalRelation::new(planner.run(&plan, &Catalog::new())?)
}

/// Evaluate [`sqlnorm_full_outer_join_plan`] on materialized relations.
pub fn sqlnorm_full_outer_join(
    r: &TemporalRelation,
    s: &TemporalRelation,
    theta: Option<Expr>,
    planner: &Planner,
) -> TemporalResult<TemporalRelation> {
    let plan = sqlnorm_full_outer_join_plan(
        LogicalPlan::inline_scan(r.rel().clone()),
        LogicalPlan::inline_scan(s.rel().clone()),
        theta,
    )?;
    TemporalRelation::new(planner.run(&plan, &Catalog::new())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_core::algebra::TemporalAlgebra;
    use temporal_core::interval::Interval;

    fn rel(q: &str, rows: &[(i64, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::qualified(q, "k", DataType::Int)]),
            rows.iter()
                .map(|&(k, s, e)| (vec![Value::Int(k)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn matches_reduction_on_loj() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 8), (2, 5, 12), (1, 9, 14)]);
        let s = rel("s", &[(1, 2, 4), (2, 6, 15), (1, 5, 11)]);
        let theta = col(0).eq(col(3));
        let fast = alg.left_outer_join(&r, &s, Some(theta.clone())).unwrap();
        let sqlnorm = sqlnorm_left_outer_join(&r, &s, Some(theta), alg.planner()).unwrap();
        assert!(
            fast.same_set(&sqlnorm),
            "align:\n{fast}\nsqlnorm:\n{sqlnorm}"
        );
    }

    #[test]
    fn matches_reduction_on_foj() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 8), (2, 3, 6)]);
        let s = rel("s", &[(1, 2, 10), (3, 20, 30)]);
        let theta = col(0).eq(col(3));
        let fast = alg.full_outer_join(&r, &s, Some(theta.clone())).unwrap();
        let sqlnorm = sqlnorm_full_outer_join(&r, &s, Some(theta), alg.planner()).unwrap();
        assert!(
            fast.same_set(&sqlnorm),
            "align:\n{fast}\nsqlnorm:\n{sqlnorm}"
        );
    }

    #[test]
    fn adjacent_join_intervals_merge_correctly_in_negative_part() {
        // J covers [2,4) and [4,6) adjacently: the gap computation must
        // not leave a phantom tuple at the seam.
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 10)]);
        let s = rel("s", &[(1, 2, 4), (1, 4, 6)]);
        let theta = col(0).eq(col(3));
        let fast = alg.left_outer_join(&r, &s, Some(theta.clone())).unwrap();
        let sqlnorm = sqlnorm_left_outer_join(&r, &s, Some(theta), alg.planner()).unwrap();
        assert!(
            fast.same_set(&sqlnorm),
            "align:\n{fast}\nsqlnorm:\n{sqlnorm}"
        );
    }

    #[test]
    fn empty_sides() {
        let alg = TemporalAlgebra::default();
        let r = rel("r", &[(1, 0, 5)]);
        let empty = rel("s", &[]);
        let out = sqlnorm_left_outer_join(&r, &empty, None, alg.planner()).unwrap();
        assert_eq!(out.len(), 1);
        let out = sqlnorm_full_outer_join(&empty, &r, None, alg.planner()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
