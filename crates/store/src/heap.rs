//! Append-only heap files: ordered pages of variable-length records.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::{StoreError, StoreResult};
use crate::page::{Page, PageId, PageZone};

/// A table's heap file behind a [`BufferPool`]: records append to the last
/// page (spilling into fresh pages) and scans visit pages in order, one
/// pinned page at a time — a pool smaller than the file streams.
///
/// The heap is byte-oriented: records are opaque `&[u8]`. The tuple
/// encoding (and the schema whose fingerprint every page carries) lives
/// one layer up, in the engine's storage glue.
#[derive(Debug)]
pub struct TableHeap {
    pool: BufferPool,
    fingerprint: u64,
    rows: AtomicU64,
    /// Append cursor: the page currently taking inserts.
    tail: Mutex<Option<PageId>>,
    /// Zone maps of *frozen* pages (every page before the tail — the heap
    /// is append-only, so those can never change again). Lets repeated
    /// pruning passes skip pages without re-pinning them through the pool.
    zone_cache: Mutex<HashMap<PageId, PageZone>>,
}

impl TableHeap {
    /// Create a fresh (empty) heap file at `path`, truncating any previous
    /// file, with `pool_pages` buffer frames.
    pub fn create(
        path: impl AsRef<Path>,
        fingerprint: u64,
        pool_pages: usize,
    ) -> StoreResult<Self> {
        let path = path.as_ref();
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let disk = DiskManager::open(path)?;
        Ok(TableHeap {
            pool: BufferPool::new(disk, pool_pages),
            fingerprint,
            rows: AtomicU64::new(0),
            tail: Mutex::new(None),
            zone_cache: Mutex::new(HashMap::new()),
        })
    }

    /// Open an existing heap file, validating every page header against
    /// `fingerprint` and counting rows (pages stream through the pool).
    pub fn open(path: impl AsRef<Path>, fingerprint: u64, pool_pages: usize) -> StoreResult<Self> {
        let heap = Self::open_with_count(path, fingerprint, pool_pages, 0)?;
        let mut rows = 0u64;
        for id in 0..heap.page_count() {
            rows += heap.with_page(id, |page| Ok(page.tuple_count() as u64))?;
        }
        heap.rows.store(rows, Ordering::Relaxed);
        Ok(heap)
    }

    /// Open an existing heap file **without** scanning it, trusting a
    /// row count cached elsewhere (the database manifest). Pages are
    /// still fingerprint-validated lazily, on every pinned access — this
    /// only skips the eager whole-file pass, keeping `Database::open`
    /// O(manifest) instead of O(data).
    pub fn open_with_count(
        path: impl AsRef<Path>,
        fingerprint: u64,
        pool_pages: usize,
        rows: u64,
    ) -> StoreResult<Self> {
        let disk = DiskManager::open(path)?;
        let pool = BufferPool::new(disk, pool_pages);
        let pages = pool.disk().page_count();
        // Validate the first page eagerly: catches opening under the
        // wrong schema immediately, without reading the whole heap.
        if pages > 0 {
            pool.fetch(0)?.read().validate(fingerprint)?;
        }
        Ok(TableHeap {
            pool,
            fingerprint,
            rows: AtomicU64::new(rows),
            tail: Mutex::new(pages.checked_sub(1)),
            zone_cache: Mutex::new(HashMap::new()),
        })
    }

    /// The schema fingerprint every page of this heap carries.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of pages in the heap file.
    pub fn page_count(&self) -> u32 {
        self.pool.disk().page_count()
    }

    /// Number of records across all pages.
    pub fn row_count(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// The buffer pool (for io accounting and capacity introspection).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Append one record, spilling into a fresh page when the tail page is
    /// full. The record carries no zone information, so the tail page's
    /// zone map is marked unknown. Returns the page that took the record.
    pub fn append(&self, record: &[u8]) -> StoreResult<PageId> {
        self.append_inner(record, None)
    }

    /// Append one record whose valid-time interval is `[ts, te)` (and
    /// whose first key column, when integer, is `key`), widening the tail
    /// page's zone map. Returns the page that took the record — the heap
    /// position an interval index entry points at.
    pub fn append_with_zone(
        &self,
        record: &[u8],
        ts: i64,
        te: i64,
        key: Option<i64>,
    ) -> StoreResult<PageId> {
        self.append_inner(record, Some((ts, te, key)))
    }

    fn append_inner(
        &self,
        record: &[u8],
        zone: Option<(i64, i64, Option<i64>)>,
    ) -> StoreResult<PageId> {
        let stamp = |page: &mut Page| match zone {
            Some((ts, te, key)) => page.zone_add(ts, te, key),
            None => page.zone_clear(),
        };
        let mut tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(id) = *tail {
            let guard = self.pool.fetch(id)?;
            // Validate before trusting the header's free-space pointers:
            // a corrupt tail must surface as an error, not as pointer
            // arithmetic inside `Page::insert`.
            let fits = {
                let page = guard.read();
                page.validate(self.fingerprint)?;
                page.fits(record.len())
            };
            if fits {
                let mut page = guard.write();
                let inserted = page.insert(record)?;
                debug_assert!(inserted.is_some(), "free-space check guaranteed fit");
                stamp(&mut page);
                drop(page);
                self.rows.fetch_add(1, Ordering::Relaxed);
                return Ok(id);
            }
        }
        // Tail missing or full: start a new page.
        let mut page = Page::init(self.fingerprint);
        if page.insert(record)?.is_none() {
            return Err(StoreError::Capacity(format!(
                "record of {} bytes does not fit an empty page",
                record.len()
            )));
        }
        stamp(&mut page);
        let (id, _guard) = self.pool.allocate(page)?;
        *tail = Some(id);
        self.rows.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// The zone map of page `id`, from the header alone — no record is
    /// decoded. Frozen pages (everything before the append tail) are
    /// cached, so a pruning pass over a previously-scanned heap touches
    /// the pool only for pages it has never seen.
    pub fn zone_of(&self, id: PageId) -> StoreResult<PageZone> {
        if let Some(z) = self
            .zone_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
        {
            return Ok(*z);
        }
        // Only pages strictly before the tail are immutable; the decision
        // is taken *before* reading, which is safe because a page that is
        // frozen now can never be written again.
        let frozen = {
            let tail = self.tail.lock().unwrap_or_else(|e| e.into_inner());
            tail.is_some_and(|t| id < t)
        };
        let zone = self.with_page(id, |page| Ok(page.zone()))?;
        if frozen {
            self.zone_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(id, zone);
        }
        Ok(zone)
    }

    /// Run `f` over the pinned page `id` (validated). The pin is released
    /// when `f` returns, so a sequential caller streams pages through the
    /// pool rather than accumulating them.
    pub fn with_page<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&Page) -> StoreResult<R>,
    ) -> StoreResult<R> {
        let guard = self.pool.fetch(id)?;
        let page = guard.read();
        page.validate(self.fingerprint)?;
        f(&page)
    }

    /// Write back dirty pages and sync the file.
    pub fn flush(&self) -> StoreResult<()> {
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn heap_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("talign_store_heap_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_spills_across_pages_and_reopens() {
        let path = heap_path("spill.heap");
        let heap = TableHeap::create(&path, 0xfeed, 2).unwrap();
        let record = [7u8; 512];
        for _ in 0..40 {
            heap.append(&record).unwrap();
        }
        assert_eq!(heap.row_count(), 40);
        assert!(heap.page_count() > 1, "512-byte records must spill");
        heap.flush().unwrap();
        let pages = heap.page_count();
        drop(heap);

        let heap = TableHeap::open(&path, 0xfeed, 2).unwrap();
        assert_eq!(heap.row_count(), 40);
        assert_eq!(heap.page_count(), pages);
        let mut seen = 0;
        for id in 0..heap.page_count() {
            seen += heap
                .with_page(id, |p| {
                    for r in p.records() {
                        assert_eq!(r.unwrap(), &record[..]);
                    }
                    Ok(p.tuple_count() as u64)
                })
                .unwrap();
        }
        assert_eq!(seen, 40);
        // Appends continue on the reopened tail page without a new page
        // until it fills.
        let before = heap.page_count();
        heap.append(&[1u8; 8]).unwrap();
        assert_eq!(heap.page_count(), before);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_fingerprint_refuses_to_open() {
        let path = heap_path("fp.heap");
        let heap = TableHeap::create(&path, 1, 2).unwrap();
        heap.append(b"x").unwrap();
        heap.flush().unwrap();
        drop(heap);
        assert!(matches!(
            TableHeap::open(&path, 2, 2),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zone_maps_persist_and_zone_of_caches_frozen_pages() {
        use crate::page::ZoneBounds;
        let path = heap_path("zones.heap");
        let heap = TableHeap::create(&path, 5, 2).unwrap();
        let record = [3u8; 512];
        for i in 0..40i64 {
            heap.append_with_zone(&record, i, i + 10, Some(i % 4))
                .unwrap();
        }
        heap.flush().unwrap();
        let pages = heap.page_count();
        assert!(pages > 1);
        drop(heap);

        let heap = TableHeap::open(&path, 5, 2).unwrap();
        // Every page's zone is readable header-only and consistent with
        // the appended intervals; rows i live on page i/7 (7 per page).
        let z0 = heap.zone_of(0).unwrap();
        assert!(z0.time_valid && z0.key_valid);
        assert_eq!(z0.min_ts, 0);
        assert_eq!(z0.max_te, 6 + 10);
        assert!(z0.may_match(&ZoneBounds::as_of(3)));
        let zl = heap.zone_of(pages - 1).unwrap();
        assert!(!zl.may_match(&ZoneBounds::as_of(3)));
        // Frozen pages come from the cache on the second read even after
        // the pool evicted them (pool=2 < pages).
        let io_before = heap.pool().io_reads();
        for id in 0..pages {
            heap.zone_of(id).unwrap();
        }
        let io_mid = heap.pool().io_reads();
        for id in 0..pages - 1 {
            heap.zone_of(id).unwrap();
        }
        assert_eq!(
            heap.pool().io_reads(),
            io_mid,
            "frozen zones must be cached"
        );
        assert!(io_mid > io_before);
        // A plain (zone-less) append poisons only the tail page's zone.
        heap.append(&[9u8; 8]).unwrap();
        let z_tail = heap.zone_of(heap.page_count() - 1).unwrap();
        assert!(!z_tail.time_valid);
        assert!(z_tail.may_match(&ZoneBounds::as_of(-999)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_previous_contents() {
        let path = heap_path("trunc.heap");
        let heap = TableHeap::create(&path, 1, 2).unwrap();
        heap.append(b"old").unwrap();
        heap.flush().unwrap();
        drop(heap);
        let heap = TableHeap::create(&path, 1, 2).unwrap();
        assert_eq!(heap.row_count(), 0);
        assert_eq!(heap.page_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
