//! Change preservation (Def. 7) as an executable check.
//!
//! A temporal operator is change preserving iff for every result tuple `z`:
//!
//! 1. the lineage set is constant over `z.T`;
//! 2. if a value-equivalent tuple `z'` covers `z.Ts − 1`, the lineage just
//!    before `z` differs from `z`'s lineage (no missed coalescing to the
//!    left);
//! 3. symmetrically at `z.Te`.
//!
//! Lineage at a time point depends only on a tuple's *values* (Def. 6), so
//! conditions 2/3 compare lineage of the same value row at adjacent points.

use crate::error::TemporalResult;
use crate::semantics::lineage::lineage;
use crate::semantics::op::TemporalOp;
use crate::semantics::snapshot::critical_points;
use crate::trel::TemporalRelation;

/// Check Def. 7 for `result = opᵀ(args)`. Returns human-readable
/// descriptions of violations (empty = change preserving on this input).
pub fn check_change_preservation(
    op: &TemporalOp,
    args: &[&TemporalRelation],
    result: &TemporalRelation,
) -> TemporalResult<Vec<String>> {
    let mut violations = Vec::new();
    let arg_points = critical_points(args);

    for row in result.rows() {
        let z = result.data_of(row);
        let iv = result.interval_of(row);

        // (1) Constant lineage over z.T: check at z.Ts and at every
        // argument endpoint strictly inside z.T (lineage is constant
        // between argument endpoints).
        let base = lineage(op, args, z, iv.start())?;
        for &p in arg_points
            .iter()
            .filter(|&&p| p > iv.start() && p < iv.end())
        {
            let lin = lineage(op, args, z, p)?;
            if lin != base {
                violations.push(format!(
                    "tuple {z:?} over {iv}: lineage changes inside the interval at t={p}"
                ));
            }
        }

        // (2)+(3) Maximality: a value-equivalent tuple covering the
        // adjacent point must have different lineage there.
        for (boundary, probe) in [(iv.start(), iv.start() - 1), (iv.end(), iv.end())] {
            let covered_by_equivalent = result.rows().iter().any(|other| {
                result.data_of(other) == z && result.interval_of(other).contains_point(probe)
            });
            if covered_by_equivalent {
                let adjacent = lineage(op, args, z, probe)?;
                if adjacent == base {
                    violations.push(format!(
                        "tuple {z:?} over {iv}: not maximal at {boundary} \
                         (equal lineage at t={probe})"
                    ));
                }
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TemporalAlgebra;
    use crate::interval::Interval;
    use temporal_engine::prelude::*;

    fn rel(rows: &[(&str, i64, i64)]) -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("v", DataType::Str)]),
            rows.iter()
                .map(|&(v, s, e)| (vec![Value::str(v)], Interval::of(s, e)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn reduced_union_is_change_preserving() {
        let alg = TemporalAlgebra::default();
        let r = rel(&[("a", 0, 10)]);
        let s = rel(&[("a", 5, 20)]);
        let out = alg.union(&r, &s).unwrap();
        let v = check_change_preservation(&TemporalOp::Union, &[&r, &s], &out).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn coalesced_result_violates_change_preservation() {
        // Two meeting value-equivalent tuples: coalescing them into one
        // loses the change at t = 5 (Example 4's essence).
        let r = rel(&[("a", 0, 5), ("a", 5, 9)]);
        let s = rel(&[]);
        let coalesced = rel(&[("a", 0, 9)]);
        let v = check_change_preservation(&TemporalOp::Union, &[&r, &s], &coalesced).unwrap();
        assert!(!v.is_empty());
        assert!(v[0].contains("lineage changes inside"));
    }

    #[test]
    fn over_fragmented_result_violates_maximality() {
        let r = rel(&[("a", 0, 9)]);
        let s = rel(&[]);
        let fragmented = rel(&[("a", 0, 4), ("a", 4, 9)]);
        let v = check_change_preservation(&TemporalOp::Union, &[&r, &s], &fragmented).unwrap();
        assert!(!v.is_empty());
        assert!(v.iter().any(|m| m.contains("not maximal")));
    }

    #[test]
    fn paper_example4_z3_z4_not_coalesced() {
        // Reduced left outer join of the running example keeps z3/z4 apart;
        // the checker must accept that result and reject the coalesced one.
        use crate::interval::month::ym;
        let r = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("n", DataType::Str)]),
            vec![
                (
                    vec![Value::str("ann")],
                    Interval::of(ym(2012, 1), ym(2012, 8)),
                ),
                (
                    vec![Value::str("ann")],
                    Interval::of(ym(2012, 8), ym(2012, 12)),
                ),
            ],
        )
        .unwrap();
        let p = TemporalRelation::from_rows(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            vec![(vec![Value::Int(40)], Interval::of(ym(2012, 1), ym(2012, 6)))],
        )
        .unwrap();
        let alg = TemporalAlgebra::default();
        let op = TemporalOp::LeftOuterJoin { theta: None };
        let out = op.evaluate(&alg, &[&r, &p]).unwrap();
        let v = check_change_preservation(&op, &[&r, &p], &out).unwrap();
        assert!(v.is_empty(), "{v:?}\n{out}");
        // ω rows: [6,8) and [8,12) — not coalesced.
        let omega_rows: Vec<_> = out
            .iter()
            .filter(|(d, _)| d[1].is_null())
            .map(|(_, iv)| iv)
            .collect();
        assert_eq!(omega_rows.len(), 2);
    }
}
