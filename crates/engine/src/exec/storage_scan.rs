//! Sequential scan over a heap-file table, streaming pages through the
//! buffer pool.
//!
//! Unlike [`crate::exec::SeqScanExec`], which walks an already
//! materialized `Arc<Relation>`, this node decodes slotted pages into
//! [`RowBatch`]es *as they are pulled*: at any moment only the pages the
//! buffer pool holds are in memory, so a table larger than the pool (or
//! than RAM) scans in constant space. Both Volcano protocols pull from
//! the same page cursor, so `next()` and `next_batch()` agree row for
//! row. A scan may cover only a contiguous page range — the morsel shape
//! the parallel planner hands to exchange partitions; concurrent
//! partitions share the table's buffer pool, whose pin path is per-frame
//! (see `temporal_store::buffer`).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::{ExecNode, ExecutionState};
use crate::schema::Schema;
use crate::storage::StoredTable;
use crate::tuple::Row;

/// Scans a [`StoredTable`] page by page.
pub struct StorageScanExec {
    table: Arc<StoredTable>,
    next_page: u32,
    end_page: u32,
    pending: VecDeque<Row>,
}

impl StorageScanExec {
    pub fn new(table: Arc<StoredTable>) -> Self {
        let end_page = table.page_count();
        StorageScanExec {
            table,
            next_page: 0,
            end_page,
            pending: VecDeque::new(),
        }
    }

    /// Scan only pages `start..end` (clamped) — one morsel of a
    /// partitioned heap scan.
    pub fn with_page_range(table: Arc<StoredTable>, start: u32, end: u32) -> Self {
        let end_page = end.min(table.page_count());
        StorageScanExec {
            table,
            next_page: start.min(end_page),
            end_page,
            pending: VecDeque::new(),
        }
    }

    /// Decode pages until `pending` holds at least `want` rows or the
    /// morsel's page range is exhausted.
    fn refill(&mut self, want: usize) -> EngineResult<()> {
        while self.pending.len() < want && self.next_page < self.end_page {
            let rows = self.table.decode_page(self.next_page)?;
            self.next_page += 1;
            self.pending.extend(rows);
        }
        Ok(())
    }
}

impl ExecNode for StorageScanExec {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn next(&mut self, _state: &ExecutionState) -> EngineResult<Option<Row>> {
        if self.pending.is_empty() {
            self.refill(1)?;
        }
        Ok(self.pending.pop_front())
    }

    fn next_batch(&mut self, _state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        self.refill(BATCH_SIZE)?;
        if self.pending.is_empty() {
            return Ok(None);
        }
        let take = self.pending.len().min(BATCH_SIZE);
        let rows: Vec<Row> = self.pending.drain(..take).collect();
        Ok(Some(RowBatch::new(self.table.schema().clone(), rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, collect_rowwise, BoxedExec};
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    fn stored(name: &str, n: i64, pool: usize) -> Arc<StoredTable> {
        let dir = std::env::temp_dir().join("talign_engine_scan_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("label", DataType::Str),
        ]);
        let t = StoredTable::create(&path, "t", schema, pool).unwrap();
        for i in 0..n {
            t.append_row(&Row::new(vec![Value::Int(i), Value::str(format!("r{i}"))]))
                .unwrap();
        }
        t.flush().unwrap();
        Arc::new(t)
    }

    #[test]
    fn batch_scan_streams_and_preserves_order() {
        let t = stored("order.heap", 5000, 2);
        assert!(t.page_count() > 2);
        let scan: BoxedExec = Box::new(StorageScanExec::new(t.clone()));
        let out = collect(scan, &ExecutionState::default()).unwrap();
        assert_eq!(out.len(), 5000);
        for (i, r) in out.rows().iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn row_protocol_matches_batch_protocol() {
        let t = stored("protocols.heap", 3000, 2);
        let state = ExecutionState::default();
        let batch = collect(
            Box::new(StorageScanExec::new(t.clone())) as BoxedExec,
            &state,
        )
        .unwrap();
        let row = collect_rowwise(Box::new(StorageScanExec::new(t)) as BoxedExec, &state).unwrap();
        assert_eq!(batch.rows(), row.rows());
    }

    #[test]
    fn empty_table_scans_empty() {
        let t = stored("empty.heap", 0, 2);
        let mut scan = StorageScanExec::new(t);
        let state = ExecutionState::default();
        assert!(scan.next_batch(&state).unwrap().is_none());
        assert!(scan.next(&state).unwrap().is_none());
    }

    #[test]
    fn page_range_morsels_cover_the_table_exactly() {
        let t = stored("morsels.heap", 4000, 4);
        let pages = t.page_count();
        assert!(pages >= 2);
        let state = ExecutionState::default();
        let whole = collect(
            Box::new(StorageScanExec::new(t.clone())) as BoxedExec,
            &state,
        )
        .unwrap();
        let mid = pages / 2;
        let mut rows = Vec::new();
        for (s, e) in [(0, mid), (mid, pages)] {
            let part = collect(
                Box::new(StorageScanExec::with_page_range(t.clone(), s, e)) as BoxedExec,
                &state,
            )
            .unwrap();
            rows.extend(part.rows().to_vec());
        }
        assert_eq!(rows, whole.rows());
    }
}
