//! # temporal-datasets
//!
//! Seeded, deterministic workload generators for the evaluation of
//! *Temporal Alignment* (Sec. 7):
//!
//! * [`mod@incumben`] — a synthetic substitute for the University of Arizona
//!   `Incumben` dataset (83,857 job assignments of 49,195 employees over
//!   16 years at day granularity, durations 1–573 days with mean ≈ 180).
//!   The real data is not redistributable; the generator reproduces every
//!   statistic the paper reports, which is what the experiments exploit
//!   (group sizes per `ssn`/`pcn`, interval overlap density).
//! * [`synthetic`] — the synthetic datasets of Sec. 7.4/7.5: `Ddisj`
//!   (pairwise disjoint intervals), `Deq` (all intervals equal), `Drand`
//!   (random intervals and price categories) and the random dataset of
//!   Fig. 16b (Incumben-like durations, uniformly random starts).
//!
//! All generators take an explicit seed and are reproducible across runs.

pub mod incumben;
pub mod synthetic;

pub use incumben::{incumben, prefix, IncumbenSpec};
pub use synthetic::{ddisj, deq, drand, random_like_incumben};
