//! Logical plan rewrites, applied by the planner before costing.
//!
//! Three passes, each of which descends into [`ExtensionNode`] inputs so
//! that composed temporal plans — whose alignment / normalization /
//! absorb stages are extension nodes — optimize as **one** tree instead
//! of stopping at every extension boundary (the integration argument of
//! the paper's Sec. 6):
//!
//! 1. **constant folding** of every embedded expression;
//! 2. **filter pushdown**: predicate conjuncts move below projections,
//!    sorts, distincts, group-preserving aggregates, into join sides and
//!    set-operation branches, and — via
//!    [`ExtensionNode::passthrough_column`] — *through* extension nodes
//!    whose declared columns commute with selection (e.g. the
//!    non-timestamp data columns of a temporal alignment);
//! 3. **projection pruning**: adjacent projections collapse and identity
//!    projections disappear.

use std::collections::HashMap;
use std::sync::Arc;

use crate::expr::{fold, Expr};
use crate::plan::logical::{ExtensionNode, LogicalPlan};
use crate::plan::{JoinType, SetOpKind};
use crate::value::Value;

/// Per-pass memo of rebuilt extension nodes, keyed by the identity of the
/// original `Arc`. Plans produced by the temporal reduction rules reference
/// one operand subtree from several places (a reduced θ-join aligns r with
/// s *and* s with r); reusing the rebuilt node keeps those occurrences
/// pointing at a single node — in particular it preserves the shared
/// result cache of a `SpoolNode`, which a per-occurrence rebuild would
/// silently split.
type NodeMemo = HashMap<usize, Arc<dyn ExtensionNode>>;

fn node_key(node: &Arc<dyn ExtensionNode>) -> usize {
    Arc::as_ptr(node) as *const u8 as usize
}

/// Run all rewrite passes.
pub fn optimize(plan: &LogicalPlan) -> LogicalPlan {
    let folded = fold_exprs(plan.clone(), &mut NodeMemo::new());
    let pushed = push_filters(folded, Vec::new(), &mut NodeMemo::new());
    prune_projects(pushed, &mut NodeMemo::new())
}

// ---- pass 1: constant folding ------------------------------------------

/// Fold constants in every expression of the tree, descending into
/// extension inputs.
fn fold_exprs(plan: LogicalPlan, memo: &mut NodeMemo) -> LogicalPlan {
    match plan {
        LogicalPlan::TableScan { .. } | LogicalPlan::InlineScan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => {
            let input = fold_exprs(*input, memo);
            match fold(&predicate) {
                // σ_true is a no-op; keep folded FALSE/NULL filters (they
                // still have to produce an empty result at runtime).
                Expr::Lit(Value::Bool(true)) => input,
                predicate => input.filter(predicate),
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(fold_exprs(*input, memo)),
            exprs: exprs.iter().map(fold).collect(),
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_exprs(*input, memo)),
            group: group.iter().map(fold).collect(),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.as_ref().map(fold);
                    a
                })
                .collect(),
            schema,
        },
        LogicalPlan::Sort { input, mut keys } => {
            for k in &mut keys {
                k.expr = fold(&k.expr);
            }
            fold_exprs(*input, memo).sort(keys)
        }
        LogicalPlan::Distinct { input } => fold_exprs(*input, memo).distinct(),
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } => {
            let condition = match condition.as_ref().map(fold) {
                Some(Expr::Lit(Value::Bool(true))) => None,
                other => other,
            };
            fold_exprs(*left, memo).join(fold_exprs(*right, memo), join_type, condition)
        }
        LogicalPlan::SetOp { kind, left, right } => {
            fold_exprs(*left, memo).set_op(kind, fold_exprs(*right, memo))
        }
        LogicalPlan::Limit { input, n } => fold_exprs(*input, memo).limit(n),
        LogicalPlan::Extension { node } => {
            let key = node_key(&node);
            if let Some(rebuilt) = memo.get(&key) {
                return LogicalPlan::extension(Arc::clone(rebuilt));
            }
            let inputs = node
                .inputs()
                .into_iter()
                .map(|i| fold_exprs(i.clone(), memo))
                .collect();
            let rebuilt = node.with_new_inputs(inputs);
            memo.insert(key, Arc::clone(&rebuilt));
            LogicalPlan::extension(rebuilt)
        }
    }
}

// ---- pass 2: filter pushdown -------------------------------------------

/// All column indices referenced by `e`, deduplicated.
fn referenced_cols(e: &Expr) -> Vec<usize> {
    let mut cols = Vec::new();
    e.visit_cols(&mut |i| {
        if !cols.contains(&i) {
            cols.push(i);
        }
    });
    cols
}

/// Wrap leftover predicates around `plan`.
fn wrap(plan: LogicalPlan, preds: Vec<Expr>) -> LogicalPlan {
    match Expr::and_all(preds) {
        Some(p) => plan.filter(p),
        None => plan,
    }
}

/// Push each predicate in `preds` (conjuncts over `plan`'s output) as far
/// down the tree as semantics allow; whatever cannot descend wraps the
/// rewritten node as a Filter.
fn push_filters(plan: LogicalPlan, mut preds: Vec<Expr>, memo: &mut NodeMemo) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            preds.extend(predicate.conjuncts().into_iter().cloned());
            push_filters(*input, preds, memo)
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            // A conjunct crosses the projection iff every column it reads
            // maps to a plain input column (no expression duplication).
            let mapping: Vec<Option<usize>> = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(i) => Some(*i),
                    _ => None,
                })
                .collect();
            let (down, kept): (Vec<Expr>, Vec<Expr>) = preds.into_iter().partition(|p| {
                referenced_cols(p)
                    .iter()
                    .all(|&c| mapping.get(c).is_some_and(|m| m.is_some()))
            });
            let down = down
                .into_iter()
                .map(|p| p.remap_cols(&|c| mapping[c].expect("partitioned as mappable")))
                .collect();
            let projected = LogicalPlan::Project {
                input: Box::new(push_filters(*input, down, memo)),
                exprs,
                schema,
            };
            wrap(projected, kept)
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            // Output columns 0..group.len() are the group exprs; a filter
            // on plain-column group keys drops whole groups, so it commutes
            // with the aggregation. Column-free predicates must NOT cross:
            // a global (empty-group) aggregate emits one row from zero
            // input rows, so σ_false above it is not σ_false below it.
            let mapping: Vec<Option<usize>> = group
                .iter()
                .map(|e| match e {
                    Expr::Col(i) => Some(*i),
                    _ => None,
                })
                .collect();
            let (down, kept): (Vec<Expr>, Vec<Expr>) = preds.into_iter().partition(|p| {
                let cols = referenced_cols(p);
                !cols.is_empty()
                    && cols
                        .iter()
                        .all(|&c| mapping.get(c).is_some_and(|m| m.is_some()))
            });
            let down = down
                .into_iter()
                .map(|p| p.remap_cols(&|c| mapping[c].expect("partitioned as mappable")))
                .collect();
            let aggregated = LogicalPlan::Aggregate {
                input: Box::new(push_filters(*input, down, memo)),
                group,
                aggs,
                schema,
            };
            wrap(aggregated, kept)
        }
        LogicalPlan::Sort { input, keys } => push_filters(*input, preds, memo).sort(keys),
        LogicalPlan::Distinct { input } => push_filters(*input, preds, memo).distinct(),
        LogicalPlan::Limit { input, n } => {
            // LIMIT does not commute with selection.
            wrap(push_filters(*input, Vec::new(), memo).limit(n), preds)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } => {
            let wl = left.schema().len();
            let push_left_ok = matches!(
                join_type,
                JoinType::Inner | JoinType::Left | JoinType::Semi | JoinType::Anti
            );
            let push_right_ok = matches!(join_type, JoinType::Inner | JoinType::Right);
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut cond_extra = Vec::new();
            let mut kept = Vec::new();
            for p in preds {
                let cols = referenced_cols(&p);
                let left_only = cols.iter().all(|&c| c < wl);
                let right_only = !cols.is_empty() && cols.iter().all(|&c| c >= wl);
                if left_only && push_left_ok {
                    left_preds.push(p);
                } else if right_only && push_right_ok {
                    right_preds.push(p.remap_cols(&|c| c - wl));
                } else if join_type == JoinType::Inner {
                    // Straddling conjunct over an inner join: merge it into
                    // the condition, where equalities become join keys.
                    cond_extra.push(p);
                } else {
                    kept.push(p);
                }
            }
            // For inner joins, single-side conjuncts of the condition
            // itself may also descend (an outer join's condition has
            // different semantics than a filter and must stay put).
            let mut cond_parts = Vec::new();
            if join_type == JoinType::Inner {
                for c in condition.iter().flat_map(|c| c.conjuncts()).cloned() {
                    let cols = referenced_cols(&c);
                    if cols.iter().all(|&x| x < wl) {
                        left_preds.push(c);
                    } else if !cols.is_empty() && cols.iter().all(|&x| x >= wl) {
                        right_preds.push(c.remap_cols(&|x| x - wl));
                    } else {
                        cond_parts.push(c);
                    }
                }
            } else if let Some(c) = condition {
                cond_parts.push(c);
            }
            cond_parts.extend(cond_extra);
            let joined = push_filters(*left, left_preds, memo).join(
                push_filters(*right, right_preds, memo),
                join_type,
                Expr::and_all(cond_parts),
            );
            wrap(joined, kept)
        }
        LogicalPlan::SetOp { kind, left, right } => {
            // Both branches share the output schema; σ distributes over
            // ∪, ∩ and − alike.
            let _: SetOpKind = kind;
            let right_preds = preds.clone();
            push_filters(*left, preds, memo).set_op(kind, push_filters(*right, right_preds, memo))
        }
        LogicalPlan::Extension { node } => {
            // A conjunct crosses the extension iff every column it reads is
            // a declared passthrough into one single input.
            let inputs: Vec<LogicalPlan> = node.inputs().into_iter().cloned().collect();
            let mut per_input: Vec<Vec<Expr>> = vec![Vec::new(); inputs.len()];
            let mut kept = Vec::new();
            for p in preds {
                let cols = referenced_cols(&p);
                let mut target: Option<usize> = None;
                let mut remap: Vec<(usize, usize)> = Vec::new();
                let mut crossable = !cols.is_empty();
                for &c in &cols {
                    match node.passthrough_column(c) {
                        Some((input_idx, in_col))
                            if target.is_none() || target == Some(input_idx) =>
                        {
                            target = Some(input_idx);
                            remap.push((c, in_col));
                        }
                        _ => {
                            crossable = false;
                            break;
                        }
                    }
                }
                match target {
                    Some(idx) if crossable => per_input[idx].push(p.remap_cols(&|c| {
                        remap
                            .iter()
                            .find(|&&(out, _)| out == c)
                            .expect("collected above")
                            .1
                    })),
                    // Opaque or column-free predicate: stay above the node.
                    _ => kept.push(p),
                }
            }
            let no_descent = per_input.iter().all(|p| p.is_empty());
            let key = node_key(&node);
            if no_descent {
                if let Some(rebuilt) = memo.get(&key) {
                    return wrap(LogicalPlan::extension(Arc::clone(rebuilt)), kept);
                }
            }
            let new_inputs = inputs
                .into_iter()
                .zip(per_input)
                .map(|(i, p)| push_filters(i, p, memo))
                .collect();
            let rebuilt = node.with_new_inputs(new_inputs);
            if no_descent {
                memo.insert(key, Arc::clone(&rebuilt));
            }
            wrap(LogicalPlan::extension(rebuilt), kept)
        }
        LogicalPlan::TableScan { .. } | LogicalPlan::InlineScan { .. } => wrap(plan, preds),
    }
}

// ---- pass 3: projection pruning ----------------------------------------

/// Collapse adjacent projections and drop identity projections, descending
/// into extension inputs.
fn prune_projects(plan: LogicalPlan, memo: &mut NodeMemo) -> LogicalPlan {
    match plan {
        LogicalPlan::TableScan { .. } | LogicalPlan::InlineScan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => prune_projects(*input, memo).filter(predicate),
        LogicalPlan::Project {
            input,
            mut exprs,
            schema,
        } => {
            let mut input = prune_projects(*input, memo);
            // Project(Project): when the outer reads plain columns, inline
            // the inner expressions it selects and skip the inner node.
            loop {
                let all_cols = exprs.iter().all(|e| matches!(e, Expr::Col(_)));
                match input {
                    LogicalPlan::Project {
                        input: inner_input,
                        exprs: inner_exprs,
                        ..
                    } if all_cols => {
                        exprs = exprs
                            .iter()
                            .map(|e| match e {
                                Expr::Col(i) => inner_exprs[*i].clone(),
                                _ => unreachable!("all_cols checked"),
                            })
                            .collect();
                        input = *inner_input;
                    }
                    other => {
                        input = other;
                        break;
                    }
                }
            }
            // Identity projection (same columns, names and types): drop it.
            let identity = exprs.len() == input.schema().len()
                && exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, Expr::Col(c) if *c == i))
                && schema == input.schema();
            if identity {
                input
            } else {
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs,
                    schema,
                }
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(prune_projects(*input, memo)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => prune_projects(*input, memo).sort(keys),
        LogicalPlan::Distinct { input } => prune_projects(*input, memo).distinct(),
        LogicalPlan::Join {
            left,
            right,
            join_type,
            condition,
        } => prune_projects(*left, memo).join(prune_projects(*right, memo), join_type, condition),
        LogicalPlan::SetOp { kind, left, right } => {
            prune_projects(*left, memo).set_op(kind, prune_projects(*right, memo))
        }
        LogicalPlan::Limit { input, n } => prune_projects(*input, memo).limit(n),
        LogicalPlan::Extension { node } => {
            let key = node_key(&node);
            if let Some(rebuilt) = memo.get(&key) {
                return LogicalPlan::extension(Arc::clone(rebuilt));
            }
            let inputs = node
                .inputs()
                .into_iter()
                .map(|i| prune_projects(i.clone(), memo))
                .collect();
            let rebuilt = node.with_new_inputs(inputs);
            memo.insert(key, Arc::clone(&rebuilt));
            LogicalPlan::extension(rebuilt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::error::EngineResult;
    use crate::exec::BoxedExec;
    use crate::expr::{col, lit};
    use crate::plan::cost::{CostModel, PlanStats};
    use crate::plan::logical::ExtensionNode;
    use crate::plan::Planner;
    use crate::relation::Relation;
    use crate::schema::{Column, DataType, Schema};
    use crate::value::Value;
    use std::sync::Arc;

    fn rel() -> Relation {
        Relation::from_values(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
            (0..10)
                .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
                .collect(),
        )
        .unwrap()
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::inline_scan(rel())
    }

    /// A toy extension passing through column 0 (and hiding column 1).
    #[derive(Debug)]
    struct PassThrough {
        input: LogicalPlan,
    }

    impl ExtensionNode for PassThrough {
        fn name(&self) -> &str {
            "PassThrough"
        }
        fn inputs(&self) -> Vec<&LogicalPlan> {
            vec![&self.input]
        }
        fn with_new_inputs(&self, mut inputs: Vec<LogicalPlan>) -> Arc<dyn ExtensionNode> {
            Arc::new(PassThrough {
                input: inputs.remove(0),
            })
        }
        fn schema(&self) -> Schema {
            self.input.schema()
        }
        fn estimate(&self, input_stats: &[PlanStats], _model: &CostModel) -> PlanStats {
            input_stats[0]
        }
        fn build_exec(&self, mut children: Vec<BoxedExec>) -> EngineResult<BoxedExec> {
            Ok(children.remove(0))
        }
        fn passthrough_column(&self, out_col: usize) -> Option<(usize, usize)> {
            (out_col == 0).then_some((0, 0))
        }
    }

    fn first_filter_depth(plan: &LogicalPlan, depth: usize) -> Option<usize> {
        match plan {
            LogicalPlan::Filter { .. } => Some(depth),
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Aggregate { input, .. } => first_filter_depth(input, depth + 1),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                first_filter_depth(left, depth + 1).or_else(|| first_filter_depth(right, depth + 1))
            }
            LogicalPlan::Extension { node } => node
                .inputs()
                .into_iter()
                .find_map(|i| first_filter_depth(i, depth + 1)),
            _ => None,
        }
    }

    #[test]
    fn filter_crosses_projection_and_sort() {
        let plan = scan()
            .project_named(vec![(col(1), "b"), (col(0), "a")])
            .unwrap()
            .sort(vec![crate::expr::SortKey::asc(col(0))])
            .filter(col(1).gt(lit(3i64)));
        let optimized = optimize(&plan);
        // The filter lands directly above the scan (depth: sort, project,
        // filter → scan).
        assert_eq!(first_filter_depth(&optimized, 0), Some(2), "{optimized:?}");
        let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert!(a.same_bag(&b));
    }

    #[test]
    fn filter_splits_across_inner_join_sides() {
        let plan = scan()
            .join(
                scan(),
                crate::plan::JoinType::Inner,
                Some(col(0).eq(col(2))),
            )
            .filter(col(1).gt(lit(2i64)).and(col(3).lt(lit(10i64))));
        let optimized = optimize(&plan);
        // Both conjuncts descend into the join inputs.
        let LogicalPlan::Join { left, right, .. } = &optimized else {
            panic!("expected join at root, got {optimized:?}");
        };
        assert!(matches!(**left, LogicalPlan::Filter { .. }));
        assert!(matches!(**right, LogicalPlan::Filter { .. }));
        let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert!(a.same_bag(&b));
    }

    #[test]
    fn right_side_filter_stays_above_left_join() {
        let plan = scan()
            .join(scan(), crate::plan::JoinType::Left, Some(col(0).eq(col(2))))
            .filter(col(2).gt(lit(2i64)));
        let optimized = optimize(&plan);
        assert!(
            matches!(optimized, LogicalPlan::Filter { .. }),
            "ω-padding filter must not descend: {optimized:?}"
        );
    }

    #[test]
    fn filter_distributes_over_set_ops() {
        for kind in [SetOpKind::Union, SetOpKind::Intersect, SetOpKind::Except] {
            let plan = scan().set_op(kind, scan()).filter(col(0).lt(lit(5i64)));
            let optimized = optimize(&plan);
            assert!(
                matches!(optimized, LogicalPlan::SetOp { .. }),
                "{kind:?}: {optimized:?}"
            );
            let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
            let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
            assert!(a.same_bag(&b), "{kind:?}");
        }
    }

    #[test]
    fn filter_crosses_extension_via_passthrough() {
        let ext = LogicalPlan::extension(Arc::new(PassThrough { input: scan() }));
        let passthrough_pred = col(0).gt(lit(3i64));
        let opaque_pred = col(1).gt(lit(4i64));
        let plan = ext.filter(passthrough_pred.and(opaque_pred.clone()));
        let optimized = optimize(&plan);
        // The col-0 conjunct descends into the extension input; the col-1
        // conjunct stays above.
        let LogicalPlan::Filter { input, predicate } = &optimized else {
            panic!("expected residual filter, got {optimized:?}");
        };
        assert_eq!(*predicate, opaque_pred);
        let LogicalPlan::Extension { node } = &**input else {
            panic!("expected extension below, got {input:?}");
        };
        assert!(matches!(node.inputs()[0], LogicalPlan::Filter { .. }));
        let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert!(a.same_bag(&b));
    }

    #[test]
    fn filter_pushes_through_aggregate_group_keys() {
        let plan = scan()
            .aggregate_named(
                vec![(col(0), "a")],
                vec![(crate::expr::AggCall::count_star(), "cnt")],
            )
            .unwrap()
            .filter(col(0).lt(lit(4i64)));
        let optimized = optimize(&plan);
        assert!(
            matches!(optimized, LogicalPlan::Aggregate { .. }),
            "{optimized:?}"
        );
        let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert!(a.same_set(&b));
    }

    #[test]
    fn constant_filter_stays_above_global_aggregate() {
        // σ_false(ϑ_{∅; COUNT}(r)) is empty, but the global aggregate below
        // emits one row from zero inputs — the constant predicate must not
        // descend. (Folding keeps non-true constants as a Filter node.)
        let plan = scan()
            .aggregate_named(
                Vec::<(crate::expr::Expr, &str)>::new(),
                vec![(crate::expr::AggCall::count_star(), "cnt")],
            )
            .unwrap()
            .filter(lit(false));
        let optimized = optimize(&plan);
        let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert!(a.is_empty());
        assert!(b.is_empty(), "rewrite fabricated rows: {b}");
    }

    #[test]
    fn filter_on_aggregate_output_stays() {
        let plan = scan()
            .aggregate_named(
                vec![(col(0), "a")],
                vec![(crate::expr::AggCall::count_star(), "cnt")],
            )
            .unwrap()
            .filter(col(1).gt(lit(0i64)));
        let optimized = optimize(&plan);
        assert!(matches!(optimized, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn limit_blocks_pushdown() {
        let plan = scan().limit(3).filter(col(0).gt(lit(1i64)));
        let optimized = optimize(&plan);
        assert!(matches!(optimized, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn constant_folding_descends_into_extensions() {
        let inner = scan().filter(
            lit(1i64)
                .eq(lit(1i64))
                .and(col(0).gt(lit(2i64).add(lit(1i64)))),
        );
        let ext = LogicalPlan::extension(Arc::new(PassThrough { input: inner }));
        let optimized = optimize(&ext);
        let LogicalPlan::Extension { node } = &optimized else {
            panic!("expected extension, got {optimized:?}");
        };
        let LogicalPlan::Filter { predicate, .. } = node.inputs()[0] else {
            panic!("expected folded filter inside extension");
        };
        assert_eq!(*predicate, col(0).gt(lit(3i64)));
    }

    #[test]
    fn adjacent_projections_collapse_and_identity_drops() {
        let plan = scan()
            .project_named(vec![(col(1), "b"), (col(0), "a")])
            .unwrap()
            .project_cols(&[1, 0]);
        let optimized = optimize(&plan);
        // (b,a) then swapped back to (a,b) with original names = identity.
        assert!(
            matches!(optimized, LogicalPlan::InlineScan { .. }),
            "{optimized:?}"
        );
        let plan = scan()
            .project_named(vec![(col(0).add(lit(1i64)), "a1"), (col(1), "b")])
            .unwrap()
            .project_cols(&[0]);
        let optimized = optimize(&plan);
        let LogicalPlan::Project { input, exprs, .. } = &optimized else {
            panic!("expected single project, got {optimized:?}");
        };
        assert!(matches!(**input, LogicalPlan::InlineScan { .. }));
        assert_eq!(exprs.len(), 1);
        let out = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["a1"]);
    }

    #[test]
    fn renaming_projection_is_preserved() {
        // Same columns but new names: must NOT be dropped (requalify).
        let plan = scan()
            .project_named(vec![(col(0), "x"), (col(1), "y")])
            .unwrap();
        let optimized = optimize(&plan);
        assert!(matches!(optimized, LogicalPlan::Project { .. }));
        let out = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["x", "y"]);
    }

    #[test]
    fn optimize_preserves_spool_sharing() {
        use crate::plan::SpoolNode;
        let shared = SpoolNode::shared(scan().filter(col(0).lt(lit(7i64))));
        let plan = shared.clone().join(
            shared,
            crate::plan::JoinType::Inner,
            Some(col(0).eq(col(2))),
        );
        let optimized = optimize(&plan);
        let LogicalPlan::Join { left, right, .. } = &optimized else {
            panic!("expected join, got {optimized:?}");
        };
        let (LogicalPlan::Extension { node: l }, LogicalPlan::Extension { node: r }) =
            (&**left, &**right)
        else {
            panic!("expected spools on both sides: {optimized:?}");
        };
        assert!(
            Arc::ptr_eq(l, r),
            "rewrites must not split a shared spool into per-occurrence copies"
        );
    }

    #[test]
    fn optimized_plans_stay_valid() {
        let plan = scan()
            .join(
                scan(),
                crate::plan::JoinType::Inner,
                Some(col(0).eq(col(2))),
            )
            .filter(col(1).gt(lit(2i64)))
            .project_cols(&[0, 3])
            .distinct()
            .filter(col(0).lt(lit(9i64)));
        let optimized = optimize(&plan);
        assert!(optimized.clone().validated().is_ok());
        let a = Planner::default().run(&plan, &Catalog::new()).unwrap();
        let b = Planner::default().run(&optimized, &Catalog::new()).unwrap();
        assert!(a.same_set(&b));
    }
}
