//! The paged storage layer end to end (ISSUE 5): registering on a
//! `Database::open`ed directory writes heap files; reopening the
//! directory restores the same tables and rows; and queries over
//! persisted tables — including temporal joins and the alignment
//! primitives — produce byte-identical results before and after a
//! drop/reopen, with the buffer pool capped *below* the table's page
//! count (so scans demonstrably stream pages instead of materializing
//! the heap).

use proptest::prelude::*;
use temporal_alignment::core::prelude::*;
use temporal_alignment::engine::prelude::*;
use temporal_alignment::sql::{DatabaseSqlExt, Session};
use temporal_datasets::{ddisj, deq, drand};

/// A unique scratch directory for one test.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("talign_persistence_tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Rows of a frame collect, as plain vectors (schema qualifiers aside).
fn collect_rows(db: &Database, table: &str) -> Vec<Row> {
    db.table(table)
        .unwrap()
        .collect()
        .unwrap()
        .rel()
        .rows()
        .to_vec()
}

/// Register `rel` on a durable database, drop it, reopen, and require the
/// scan to return identical rows in identical order.
fn assert_reopen_identical(name: &str, dir: &std::path::Path, rel: &TemporalRelation) {
    let db = Database::open(dir).unwrap();
    db.register_or_replace(name, rel).unwrap();
    let before = collect_rows(&db, name);
    assert_eq!(
        before,
        rel.rows().to_vec(),
        "{name}: persisted scan differs"
    );
    drop(db);

    let db = Database::open(dir).unwrap();
    let after = collect_rows(&db, name);
    assert_eq!(before, after, "{name}: reopen changed the rows");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// register → collect → reopen → collect is row-identical on the
    /// paper's synthetic datasets (Ddisj, Deq, Drand cover disjoint,
    /// fully-overlapping and random intervals plus NULL-free multi-column
    /// schemas).
    #[test]
    fn reopen_round_trip_on_synthetic_datasets(n in 2usize..40, seed in 0u64..1000) {
        let dir = scratch("proptest-roundtrip");
        let (r, s) = ddisj(n);
        assert_reopen_identical("ddisj_r", &dir, &r);
        assert_reopen_identical("ddisj_s", &dir, &s);
        let (r, s) = deq(n);
        assert_reopen_identical("deq_r", &dir, &r);
        assert_reopen_identical("deq_s", &dir, &s);
        let (r, s) = drand(n, seed);
        assert_reopen_identical("drand_r", &dir, &r);
        assert_reopen_identical("drand_s", &dir, &s);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The page count and pool capacity of a stored table.
fn stored_stats(db: &Database, name: &str) -> (u32, usize, u64) {
    db.read(|catalog, _| match catalog.source(name).unwrap() {
        TableSource::Stored(t) => (t.page_count(), t.pool_pages(), t.io_reads()),
        TableSource::Mem(_) => panic!("table {name} is not stored"),
    })
}

/// ISSUE 5 acceptance: a temporal join + alignment query over a
/// persisted table is byte-identical before and after dropping and
/// reopening the `Database`, with the buffer pool capped below the
/// table's page count.
#[test]
fn acceptance_join_and_alignment_survive_reopen_with_tiny_pool() {
    let dir = scratch("acceptance");
    const POOL: usize = 2;

    // Big enough that each table's heap clearly exceeds a 2-page pool.
    let (r, s) = drand(3000, 42);
    let run = |db: &Database| {
        // ⋈ᵀ (reduced through the alignment primitives) + an explicit
        // alignment (Φ) + temporal aggregation — the full vertical slice.
        let theta = col("r.id").eq(col("s.a"));
        let join = db
            .table("r")
            .unwrap()
            .temporal_join(db.table("s").unwrap(), theta)
            .collect()
            .unwrap();
        let align = db
            .table("r")
            .unwrap()
            .align(db.table("s").unwrap(), col("r.id").le(col("s.a")))
            .collect()
            .unwrap();
        let agg = db
            .table("r")
            .unwrap()
            .aggregate(&["id"], vec![(AggCall::count_star(), "cnt")])
            .collect()
            .unwrap();
        (
            join.rel().to_table(),
            align.rel().to_table(),
            agg.rel().to_table(),
        )
    };

    let db = Database::open_with_pool(&dir, POOL).unwrap();
    db.register("r", &r).unwrap();
    db.register("s", &s).unwrap();
    let (pages, pool, _) = stored_stats(&db, "r");
    assert_eq!(pool, POOL);
    assert!(
        pages as usize > POOL,
        "table must not fit its pool: {pages} pages vs {POOL} frames"
    );
    let (_, _, io_before) = stored_stats(&db, "r");
    let before = run(&db);
    let (_, _, io_after) = stored_stats(&db, "r");
    assert!(
        io_after - io_before >= pages as u64,
        "scans must stream pages from disk through the pool \
         ({io_after} - {io_before} reads for {pages} pages)"
    );
    drop(db);

    // A fresh process image: nothing of the tables survives but the files.
    let db = Database::open_with_pool(&dir, POOL).unwrap();
    assert_eq!(db.list_tables(), vec!["r".to_string(), "s".to_string()]);
    let after = run(&db);
    assert_eq!(before.0, after.0, "temporal join changed across reopen");
    assert_eq!(before.1, after.1, "alignment changed across reopen");
    assert_eq!(before.2, after.2, "aggregation changed across reopen");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same acceptance shape through the SQL surface: a `PERSISTED`
/// table queried with ALIGN before and after reopen.
#[test]
fn sql_align_over_persisted_table_survives_reopen() {
    let dir = scratch("sql-align");
    let (r, s) = ddisj(200);
    {
        let db = Database::open_with_pool(&dir, 2).unwrap();
        db.register("r", &r).unwrap();
        db.register("s", &s).unwrap();
    }
    let query = "SELECT * FROM (r ALIGN s ON r.id = s.id) x ORDER BY ts, te, id";
    let run = |db: &Database| db.sql_rows(query).unwrap().to_table();

    let db = Database::open_with_pool(&dir, 2).unwrap();
    let plan = db.sql_explain("SELECT * FROM r").unwrap();
    assert!(plan.contains("StorageScan on r"), "{plan}");
    let before = run(&db);
    drop(db);

    let db = Database::open_with_pool(&dir, 2).unwrap();
    assert_eq!(before, run(&db), "SQL ALIGN output changed across reopen");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tables persisted through one surface are visible through the other
/// after reopen, and SQL DDL round-trips through the manifest.
#[test]
fn surfaces_share_persisted_tables_across_reopen() {
    let dir = scratch("two-surfaces");
    {
        let db = Database::open(&dir).unwrap();
        let mut session = Session::with_database(db.clone());
        session
            .execute("CREATE TABLE m (name str, ts int, te int) PERSISTED")
            .unwrap();
        let csv = dir.join("m.csv");
        std::fs::write(&csv, "ann,0,8\njoe,2,6\nann,8,12\n").unwrap();
        session
            .execute(&format!("COPY m FROM '{}'", csv.display()))
            .unwrap();
    }
    let db = Database::open(&dir).unwrap();
    // Rust frame surface over the SQL-created table:
    let out = db
        .table("m")
        .unwrap()
        .filter(col("name").eq(lit("ann")))
        .collect()
        .unwrap();
    assert_eq!(out.len(), 2);
    // And the stored backing is real (not a rehydrated memory table).
    let (pages, _, _) = stored_stats(&db, "m");
    assert!(pages >= 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// register_or_replace on a persisted database must not leak heap files:
/// replacing and dropping both remove the old file.
#[test]
fn replace_does_not_leak_heap_files() {
    let dir = scratch("no-leak");
    let (r, s) = ddisj(2000);
    let db = Database::open(&dir).unwrap();
    db.register("t", &r).unwrap();
    let heap = dir.join("t.heap");
    assert!(heap.exists());
    let size_before = std::fs::metadata(&heap).unwrap().len();

    // Replace with a much smaller relation: the file must be rewritten,
    // not appended to or left dangling beside a new file.
    let (small, _) = ddisj(1);
    db.register_or_replace("t", &small).unwrap();
    let size_after = std::fs::metadata(&heap).unwrap().len();
    assert!(
        size_after < size_before,
        "stale heap bytes leaked: {size_after} >= {size_before}"
    );
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|f| f.ends_with(".heap"))
        .collect();
    assert_eq!(files, vec!["t.heap".to_string()]);

    // Replacing through SQL-visible surfaces behaves the same.
    db.register_or_replace("t", &s).unwrap();
    assert!(db.drop_table("t").unwrap());
    assert!(!heap.exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
