//! Query planning: logical plans, physical plans, and the cost-based
//! optimizer that chooses join algorithms.

mod cost;
mod logical;
mod optimizer;
mod physical;
pub mod rewrite;
mod spool;

pub use cost::{CostModel, PlanStats, DISABLE_COST};
pub use logical::{ExtensionNode, LogicalPlan};
pub use optimizer::{Planner, PlannerConfig};
pub use physical::PhysicalPlan;
pub use spool::{SpoolExec, SpoolNode};

/// Join types. The temporal algebra reduces to all six (Table 2 of the
/// paper covers ×, ⋈, ⟕, ⟖, ⟗ and ▷; Semi backs `EXISTS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    Left,
    Right,
    Full,
    /// Left semi join: emit left rows with at least one match.
    Semi,
    /// Left anti join: emit left rows with no match (SQL `NOT EXISTS`).
    Anti,
}

impl JoinType {
    /// Does the output include the right side's columns?
    pub fn emits_right(&self) -> bool {
        matches!(
            self,
            JoinType::Inner | JoinType::Left | JoinType::Right | JoinType::Full
        )
    }

    /// Does the join emit unmatched right rows (ω-padded)?
    pub fn emits_right_unmatched(&self) -> bool {
        matches!(self, JoinType::Right | JoinType::Full)
    }

    /// Does the join emit unmatched left rows?
    pub fn emits_left_unmatched(&self) -> bool {
        matches!(self, JoinType::Left | JoinType::Full | JoinType::Anti)
    }

    pub fn name(&self) -> &'static str {
        match self {
            JoinType::Inner => "Inner",
            JoinType::Left => "Left",
            JoinType::Right => "Right",
            JoinType::Full => "Full",
            JoinType::Semi => "Semi",
            JoinType::Anti => "Anti",
        }
    }
}

/// Set operations (set semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

impl SetOpKind {
    pub fn name(&self) -> &'static str {
        match self {
            SetOpKind::Union => "Union",
            SetOpKind::Intersect => "Intersect",
            SetOpKind::Except => "Except",
        }
    }
}
