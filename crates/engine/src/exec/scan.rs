//! Sequential scan over a materialized relation.

use std::sync::Arc;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::ExecNode;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Row;

/// Scans an `Arc<Relation>`; row clones are `Arc` bumps, not deep copies.
pub struct SeqScanExec {
    rel: Arc<Relation>,
    pos: usize,
}

impl SeqScanExec {
    pub fn new(rel: Arc<Relation>) -> Self {
        SeqScanExec { rel, pos: 0 }
    }
}

impl ExecNode for SeqScanExec {
    fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    fn next(&mut self) -> EngineResult<Option<Row>> {
        match self.rel.rows().get(self.pos) {
            Some(row) => {
                self.pos += 1;
                Ok(Some(row.clone()))
            }
            None => Ok(None),
        }
    }

    /// Batch path: clone a contiguous chunk of the backing relation (each
    /// clone is an `Arc` bump).
    fn next_batch(&mut self) -> EngineResult<Option<RowBatch>> {
        let rows = self.rel.rows();
        if self.pos >= rows.len() {
            return Ok(None);
        }
        let end = (self.pos + BATCH_SIZE).min(rows.len());
        let chunk = rows[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(RowBatch::new(self.rel.schema().clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::test_util::int_rel;
    use crate::exec::{collect, BoxedExec};

    #[test]
    fn scans_all_rows_in_order() {
        let rel = int_rel("a", &[3, 1, 2]).into_shared();
        let scan: BoxedExec = Box::new(SeqScanExec::new(rel.clone()));
        let out = collect(scan).unwrap();
        assert_eq!(out.rows(), rel.rows());
    }

    #[test]
    fn empty_scan() {
        let rel = int_rel("a", &[]).into_shared();
        let mut scan = SeqScanExec::new(rel);
        assert!(scan.next().unwrap().is_none());
        assert!(scan.next().unwrap().is_none());
    }
}
