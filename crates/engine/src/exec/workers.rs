//! Minimal scoped worker pool for morsel-driven parallelism.
//!
//! The build is offline (no rayon), so this is the whole threading layer:
//! a set of `std::thread::scope` workers claiming task indices from a
//! shared atomic counter. Results land in per-task slots, so the output
//! order is the task order regardless of which worker ran what — the
//! property every parallel operator relies on for determinism.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::{EngineError, EngineResult};

/// What the hardware can actually run concurrently. Worker counts are
/// capped here: oversubscribing a core never speeds up CPU-bound work, it
/// only adds context-switch overhead — so `threads = 4` on a single-core
/// box runs the same partitioned algorithms serially (identical output by
/// the slot-order guarantee) instead of thrashing the scheduler.
fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `tasks` closures `f(task_index)` on up to `threads` workers and
/// return their results in task order. Serial (no spawn) when the
/// effective worker count — `threads` capped by the hardware — is 1, or
/// there is at most one task. On error the first failure is reported and
/// remaining unclaimed tasks are skipped.
pub fn par_run<T, F>(threads: usize, tasks: usize, f: F) -> EngineResult<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> EngineResult<T> + Sync,
{
    let threads = threads.min(hardware_threads());
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(&f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_err: Mutex<Option<EngineError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(tasks) {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    return;
                }
                match f(i) {
                    Ok(v) => {
                        *slots[i].lock().expect("slot poisoned") = Some(v);
                    }
                    Err(e) => {
                        let mut slot = first_err.lock().expect("error slot poisoned");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        failed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = first_err.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every task ran")
        })
        .collect())
}

/// Split `n` items into at most `parts` contiguous ranges of near-equal
/// size (empty ranges are never produced; fewer parts come back when
/// `n < parts`). The ranges cover `0..n` in order.
pub fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let out = par_run(4, 64, |i| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback_matches() {
        let out = par_run(1, 5, Ok).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn first_error_wins_and_propagates() {
        let res: EngineResult<Vec<usize>> = par_run(4, 100, |i| {
            if i == 3 {
                Err(EngineError::Internal("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(res.is_err());
    }

    #[test]
    fn ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 100] {
            for parts in [1usize, 2, 3, 8] {
                let r = split_ranges(n, parts);
                let total: usize = r.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, n);
                assert!(r.iter().all(|(a, b)| a < b));
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }
}
