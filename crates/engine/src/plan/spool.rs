//! Shared materialization (spool) for plans that reference one subtree
//! from several places.
//!
//! The reduction rules of the paper are *self-referencing*: a reduced
//! θ-join aligns `r` against `s` **and** `s` against `r`, and a reduced
//! group-based operator normalizes its input against itself, so composing
//! whole temporal queries into a single plan duplicates the operand
//! subtree. Duplicated *base* scans are free (they share the relation),
//! but a duplicated composed subtree would re-execute. [`SpoolNode`] is
//! the engine's equivalent of PostgreSQL's shared CTE scan: every clone of
//! the wrapped plan shares one result cache, so the subtree runs exactly
//! once per query execution no matter how many times the reduction rules
//! mention it.
//!
//! The cache lives in the per-query [`ExecutionState`] spool registry,
//! keyed by the spool node's identity — not in the plan. A plan therefore
//! carries no execution state at all: re-running it under a fresh state
//! observes current table contents, and two concurrent executions of the
//! same plan (or two exchange workers inside one execution) cannot step on
//! each other's cache.

use std::sync::Arc;

use crate::batch::{RowBatch, BATCH_SIZE};
use crate::error::EngineResult;
use crate::exec::{collect, collect_rowwise, BoxedExec, ExecNode, ExecutionState};
use crate::plan::cost::{CostModel, PlanStats};
use crate::plan::logical::{ExtensionNode, LogicalPlan};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Row;

/// A logical node that materializes its input once per execution and
/// serves the buffered rows to every plan occurrence sharing this node.
#[derive(Debug)]
pub struct SpoolNode {
    input: LogicalPlan,
    schema: Schema,
}

impl SpoolNode {
    /// Wrap `input` so that every *clone* of the returned plan shares one
    /// materialization of it.
    pub fn shared(input: LogicalPlan) -> LogicalPlan {
        let schema = input.schema();
        LogicalPlan::extension(Arc::new(SpoolNode { input, schema }))
    }

    /// Registry key: the node's address. Occurrences of the same spool
    /// share the node (behind one `Arc`), so they build executors with the
    /// same key; a rebuilt node ([`ExtensionNode::with_new_inputs`]) is a
    /// new allocation and therefore a new key.
    fn cache_key(&self) -> usize {
        self as *const SpoolNode as usize
    }
}

impl ExtensionNode for SpoolNode {
    fn name(&self) -> &str {
        "Spool"
    }

    fn inputs(&self) -> Vec<&LogicalPlan> {
        vec![&self.input]
    }

    fn with_new_inputs(&self, mut inputs: Vec<LogicalPlan>) -> Arc<dyn ExtensionNode> {
        assert_eq!(inputs.len(), 1);
        let input = inputs.remove(0);
        let schema = input.schema();
        Arc::new(SpoolNode { input, schema })
    }

    fn schema(&self) -> Schema {
        self.schema.clone()
    }

    fn estimate(&self, input_stats: &[PlanStats], model: &CostModel) -> PlanStats {
        model.spool(input_stats[0])
    }

    fn build_exec(&self, mut children: Vec<BoxedExec>) -> EngineResult<BoxedExec> {
        Ok(Box::new(SpoolExec {
            child: Some(children.remove(0)),
            schema: self.schema.clone(),
            key: self.cache_key(),
            local: None,
            pos: 0,
        }))
    }

    // No passthrough: pushing a filter below a *shared* node would detach
    // this occurrence from the cache (with_new_inputs makes a fresh node,
    // hence a fresh cache key) and silently drop the sharing the spool
    // exists for.

    fn explain(&self) -> String {
        "Spool (shared materialization)".to_string()
    }
}

/// Executor for [`SpoolNode`]: the first stream to pull drains the child
/// into the execution state's spool registry; every stream then serves
/// rows from the shared materialization (resolved once per stream, then
/// read lock-free).
pub struct SpoolExec {
    child: Option<BoxedExec>,
    schema: Schema,
    key: usize,
    /// Local handle to the materialized relation, filled on first `next()`
    /// so the registry is consulted once per stream, not once per row.
    local: Option<Arc<Relation>>,
    pos: usize,
}

impl SpoolExec {
    /// Materialize (or attach to) the shared cache in `state`. The first
    /// stream to pull drains the child through the protocol that stream is
    /// being driven with — batch-wise under `next_batch()`, row-wise under
    /// `next()` — so the spool subtree belongs to the same execution path
    /// as the rest of the plan.
    fn materialized(&mut self, state: &ExecutionState, batched: bool) -> EngineResult<&Relation> {
        if self.local.is_none() {
            let child = &mut self.child;
            let rel = state.spool_get_or_fill(self.key, || {
                let node = child.take().expect("spool child built exactly once");
                if batched {
                    collect(node, state)
                } else {
                    collect_rowwise(node, state)
                }
            })?;
            self.local = Some(rel);
        }
        Ok(self.local.as_ref().expect("filled above"))
    }
}

impl ExecNode for SpoolExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, state: &ExecutionState) -> EngineResult<Option<Row>> {
        let pos = self.pos;
        let rel = self.materialized(state, false)?;
        let row = rel.rows().get(pos).cloned();
        self.pos += 1;
        Ok(row)
    }

    /// Batch path: serve a contiguous chunk of the shared materialization
    /// (row clones are `Arc` bumps).
    fn next_batch(&mut self, state: &ExecutionState) -> EngineResult<Option<RowBatch>> {
        let pos = self.pos;
        let rel = self.materialized(state, true)?;
        let rows = rel.rows();
        if pos >= rows.len() {
            return Ok(None);
        }
        let end = (pos + BATCH_SIZE).min(rows.len());
        let chunk = rows[pos..end].to_vec();
        self.pos = end;
        Ok(Some(RowBatch::new(self.schema.clone(), chunk)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::expr::{col, lit};
    use crate::plan::{JoinType, Planner};
    use crate::schema::{Column, DataType};
    use crate::value::Value;
    use std::sync::Mutex;

    /// An exec that counts how many times its source is drained, via a
    /// shared counter.
    struct CountingScan {
        rel: Relation,
        pos: usize,
        drains: Arc<Mutex<usize>>,
    }

    impl ExecNode for CountingScan {
        fn schema(&self) -> &Schema {
            self.rel.schema()
        }
        fn next(&mut self, _state: &ExecutionState) -> EngineResult<Option<Row>> {
            if self.pos == 0 {
                *self.drains.lock().unwrap() += 1;
            }
            let row = self.rel.rows().get(self.pos).cloned();
            self.pos += 1;
            Ok(row)
        }
    }

    fn rel() -> Relation {
        Relation::from_values(
            Schema::new(vec![Column::new("a", DataType::Int)]),
            (0..5).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn clones_share_one_materialization() {
        let drains = Arc::new(Mutex::new(0usize));
        // Build a spool by hand around a counting child executor.
        let node = SpoolNode {
            input: LogicalPlan::inline_scan(rel()),
            schema: rel().schema().clone(),
        };
        let mk_child = || -> BoxedExec {
            Box::new(CountingScan {
                rel: rel(),
                pos: 0,
                drains: Arc::clone(&drains),
            })
        };
        let state = ExecutionState::default();
        let mut a = node.build_exec(vec![mk_child()]).unwrap();
        let mut b = node.build_exec(vec![mk_child()]).unwrap();
        let mut n = 0;
        while a.next(&state).unwrap().is_some() {
            n += 1;
        }
        while b.next(&state).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(*drains.lock().unwrap(), 1, "child must be drained once");
    }

    #[test]
    fn spooled_self_join_matches_plain_self_join() {
        let base = LogicalPlan::inline_scan(rel()).filter(col(0).lt(lit(3i64)));
        let shared = SpoolNode::shared(base.clone());
        let cond = Some(col(0).eq(col(1)));
        let spooled = shared.clone().join(shared, JoinType::Inner, cond.clone());
        let plain = base.clone().join(base, JoinType::Inner, cond);
        let planner = Planner::default();
        let a = planner.run(&spooled, &Catalog::new()).unwrap();
        let b = planner.run(&plain, &Catalog::new()).unwrap();
        assert!(a.same_bag(&b), "{a} vs {b}");
    }

    #[test]
    fn reexecution_observes_current_table_contents() {
        use crate::plan::PlannerConfig;
        use crate::schema::{Column, DataType};
        // With rewrites off, plan_inner keeps the ORIGINAL spool node, so
        // the same physical node is executed twice — each execution runs
        // under a fresh ExecutionState, so the second run must
        // re-materialize against the current catalog.
        let planner = Planner::new(PlannerConfig {
            enable_rewrites: false,
            ..Default::default()
        });
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let shared = SpoolNode::shared(LogicalPlan::table_scan("t", schema.clone()));
        let plan = shared.clone().join(
            shared,
            crate::plan::JoinType::Inner,
            Some(col(0).eq(col(1))),
        );
        let mut catalog = Catalog::new();
        catalog.register("t", rel()).unwrap();
        assert_eq!(planner.run(&plan, &catalog).unwrap().len(), 5);
        let bigger =
            Relation::from_values(schema, (0..7).map(|i| vec![Value::Int(i)]).collect()).unwrap();
        catalog.register_or_replace("t", bigger);
        assert_eq!(
            planner.run(&plan, &catalog).unwrap().len(),
            7,
            "second execution must not serve the first execution's cache"
        );
    }

    #[test]
    fn with_new_inputs_gets_a_fresh_cache() {
        // Plan with rewrites off so the warm-up run fills the cache of THIS
        // node (the default rewrite pass would rebuild it and warm a clone).
        let planner = Planner::new(crate::plan::PlannerConfig {
            enable_rewrites: false,
            ..Default::default()
        });
        let shared = SpoolNode::shared(LogicalPlan::inline_scan(rel()));
        // Warm the original node's cache in one execution state: build an
        // executor and pull a row (next() materializes into the registry).
        let physical = planner.plan(&shared, &Catalog::new()).unwrap();
        let state = ExecutionState::default();
        let mut exec = physical.execute(&state).unwrap();
        assert!(exec.next(&state).unwrap().is_some());
        // Rebuild with a different input: must not serve the warm cache.
        let LogicalPlan::Extension { node } = &shared else {
            panic!("spool is an extension")
        };
        let filtered = LogicalPlan::inline_scan(rel()).filter(col(0).lt(lit(2i64)));
        let rebuilt = LogicalPlan::extension(node.with_new_inputs(vec![filtered]));
        let out = planner.run(&rebuilt, &Catalog::new()).unwrap();
        assert_eq!(out.len(), 2);
    }
}
