//! The name-based, lazy front door: [`Database`] and [`TemporalFrame`].
//!
//! [`Database`] owns the single [`Catalog`] + [`Planner`] (and hence the
//! GUC switches) behind *both* query surfaces: Rust frames built here and
//! the SQL session (`temporal_sql::Session`) wrap the same shared state,
//! so a table registered through one surface is queryable through the
//! other and a `SET enable_*` applies to both.
//!
//! [`TemporalFrame`] is a lazy builder over [`TemporalPlan`], in the
//! spirit of a Polars `LazyFrame`: every operator of the sequenced
//! temporal algebra composes into one logical plan, expressions reference
//! columns *by name* (`col("team")`, qualified `col("staff.team")`), and
//! nothing executes until [`TemporalFrame::collect`]. Builder errors
//! (unknown columns, incompatible schemas) are carried inside the frame
//! and surface at collect/explain time, which keeps chains fluent.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::{Duration, Instant};

use temporal_engine::catalog::Catalog;
use temporal_engine::prelude::*;
use temporal_engine::recovery;
use temporal_engine::storage::{
    self, heap_path, index_path, IntervalIndex, Manifest, PoolStats, StoredTable, SyncMode,
    TableMeta, Wal, WalStats, DEFAULT_BUFFER_POOL_PAGES, PAGE_SIZE,
};

use crate::algebra::TemporalPlan;
use crate::error::{TemporalError, TemporalResult};
use crate::trel::TemporalRelation;

/// Default `wal_checkpoint_pages`: checkpoint once the WAL holds about
/// this many pages' worth of bytes since the last one.
const DEFAULT_WAL_CHECKPOINT_PAGES: u64 = 256;

/// How long a mutating call waits for the writer lock before giving up
/// with [`EngineError::Busy`] — long enough that writers queueing behind a
/// checkpoint succeed, short enough that a wedged writer surfaces as an
/// error instead of a hang. Overridable via `TEMPORAL_WRITER_WAIT_MS`
/// (re-read per acquisition, so servers and tests can tune it live).
const WRITER_WAIT_MS: u64 = 10_000;

fn writer_wait() -> Duration {
    let ms = std::env::var("TEMPORAL_WRITER_WAIT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(WRITER_WAIT_MS);
    Duration::from_millis(ms)
}

/// The on-disk side of an opened database: the directory, its manifest,
/// the write-ahead log, and the per-table buffer pool size used when
/// (re)opening heap files.
#[derive(Debug)]
struct StorageRoot {
    dir: PathBuf,
    manifest: Manifest,
    pool_pages: usize,
    /// The directory's write-ahead log: every mutation is logged (and,
    /// under `sync_mode` `commit`/`always`, synced) before it is
    /// acknowledged, so `Database::open` can redo it after a crash.
    wal: Arc<Wal>,
    /// Checkpoint threshold (`wal_checkpoint_pages`): once the log grows
    /// past this many pages' worth of bytes, the next mutation flushes
    /// everything and truncates it.
    checkpoint_pages: u64,
}

/// Shared database state: one catalog, one planner, optionally one
/// storage directory (when opened via [`Database::open`]).
#[derive(Debug, Default)]
struct DbState {
    catalog: Catalog,
    planner: Planner,
    storage: Option<StorageRoot>,
}

impl DbState {
    /// Flush every stored table, refresh the manifest's row counts, stamp
    /// the database epoch into it, save it, and truncate the WAL.
    /// Everything logged so far is now on the data pages, so recovery no
    /// longer needs the log prefix.
    fn checkpoint(&mut self, epoch: u64) -> TemporalResult<()> {
        let Some(root) = &mut self.storage else {
            return Ok(());
        };
        let mut refreshed = Vec::new();
        for name in self.catalog.list_tables() {
            if let Ok(TableSource::Stored(table)) = self.catalog.source(&name) {
                table.flush()?;
                refreshed.push((name, table.row_count()));
            }
        }
        for (name, rows) in refreshed {
            if let Some(meta) = root.manifest.get(&name) {
                if meta.rows != rows {
                    let mut meta = meta.clone();
                    meta.rows = rows;
                    root.manifest.insert(name, meta);
                }
            }
        }
        root.manifest.set_epoch(epoch);
        root.manifest.save(&root.dir).map_err(EngineError::from)?;
        root.wal.checkpoint().map_err(EngineError::from)?;
        Ok(())
    }

    /// Checkpoint if the WAL has outgrown the configured threshold.
    fn maybe_checkpoint(&mut self, epoch: u64) -> TemporalResult<()> {
        let due = self.storage.as_ref().is_some_and(|root| {
            root.wal.bytes_since_checkpoint() > root.checkpoint_pages * PAGE_SIZE as u64
        });
        if due {
            self.checkpoint(epoch)?;
        }
        Ok(())
    }
}

/// The shared body behind every [`Database`] handle: the catalog state, the
/// writer lock, the open-session refcount and the change epoch.
///
/// Lock hierarchy (outer → inner): `writer` → `state` → heap tail lock →
/// buffer-frame latch → WAL inner. Every mutating entry point follows this
/// order, so two sessions can never deadlock against each other.
#[derive(Debug, Default)]
struct DbShared {
    /// Catalog + planner + storage metadata. Readers (planning, catalog
    /// lookups) take it shared; mutators take it exclusive only for short
    /// metadata sections — bulk append I/O and the commit fsync run
    /// outside it, so snapshot scans never wait on a writer's disk.
    state: RwLock<DbState>,
    /// Serializes every mutating entry point (registration, insert, drop,
    /// persist, checkpoint). Acquisition is bounded: a writer that cannot
    /// get the lock within [`writer_wait`] fails with
    /// [`EngineError::Busy`] instead of hanging — concurrent writers are
    /// *serialized*, never interleaved, which is what keeps the
    /// append/WAL/manifest triple free of lost updates.
    writer: Mutex<()>,
    /// Open session registrations (see [`Database::open_session`]).
    /// [`Database::close`] shuts buffer pools only when this is zero, so
    /// one connection closing cannot yank pages from under another.
    sessions: AtomicUsize,
    /// Monotonic change counter: every committed mutation bumps it, and a
    /// checkpoint persists it into the manifest. Readers use it to detect
    /// cheaply whether anything changed between statements.
    epoch: AtomicU64,
    /// Unified observability registry: named counters, gauges and latency
    /// histograms from every layer (server sessions/statements, SQL
    /// session latencies) accumulate here; store-side counters (buffer
    /// pools, WAL) are *polled* into gauges at
    /// [`Database::metrics_snapshot`] time, so their hot paths stay plain
    /// atomic increments.
    metrics: MetricsRegistry,
    /// Ring-buffer span tracer behind the `trace` GUC: statement, plan
    /// and operator spans land here and dump as chrome-trace JSON
    /// (tsql `.trace <file>`).
    tracer: Tracer,
}

impl Drop for DbShared {
    /// Best-effort checkpoint when the last handle goes away: flushes the
    /// pools and truncates the WAL so the next open replays nothing.
    /// Errors are swallowed (there is nowhere to report them from a
    /// destructor) — that is fine, because the WAL already holds
    /// everything a reopen needs; use [`Database::close`] to observe
    /// flush failures. This runs only when the last `Arc` drops, so no
    /// other session can still be using the pools.
    fn drop(&mut self) {
        let epoch = *self.epoch.get_mut();
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        let _ = state.checkpoint(epoch);
    }
}

/// The unified front door: a shared [`Catalog`] + [`Planner`] behind the
/// Rust frame API and the SQL session.
///
/// `Database` is a cheap handle (`Clone` shares the underlying state), so
/// frames, sessions and threads can all point at the same tables and
/// planner configuration.
///
/// ```
/// use temporal_core::prelude::*;
/// use temporal_engine::prelude::*;
///
/// let db = Database::new();
/// let staff = TemporalRelation::from_rows(
///     Schema::new(vec![
///         Column::new("person", DataType::Str),
///         Column::new("team", DataType::Str),
///     ]),
///     vec![
///         (vec![Value::str("ann"), Value::str("db")], Interval::of(0, 8)),
///         (vec![Value::str("sam"), Value::str("ui")], Interval::of(4, 10)),
///     ],
/// )
/// .unwrap();
/// db.register("staff", &staff).unwrap();
///
/// // Lazy, name-based query: nothing runs until collect().
/// let out = db
///     .table("staff")
///     .unwrap()
///     .filter(col("team").eq(lit("db")))
///     .collect()
///     .unwrap();
/// assert_eq!(out.len(), 1);
/// assert_eq!(db.list_tables(), vec!["staff".to_string()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    inner: Arc<DbShared>,
}

/// RAII registration of one open session over a shared [`Database`] — a
/// server connection, an interactive shell, a worker thread. While any
/// guard is alive, [`Database::close`] checkpoints but leaves the buffer
/// pools open; pools shut only at the last close. Dropping the guard
/// deregisters the session.
#[derive(Debug)]
pub struct SessionGuard {
    shared: Arc<DbShared>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.shared.sessions.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Database {
    /// A fresh database with the default planner configuration.
    pub fn new() -> Database {
        Database::default()
    }

    /// A fresh database with an explicit planner configuration.
    pub fn with_config(config: PlannerConfig) -> Database {
        Database {
            inner: Arc::new(DbShared {
                state: RwLock::new(DbState {
                    catalog: Catalog::new(),
                    planner: Planner::new(config),
                    storage: None,
                }),
                writer: Mutex::new(()),
                sessions: AtomicUsize::new(0),
                epoch: AtomicU64::new(0),
                metrics: MetricsRegistry::default(),
                tracer: Tracer::default(),
            }),
        }
    }

    /// Open (or create) a **persisted** database rooted at directory
    /// `dir`: tables in the directory's manifest are attached as
    /// heap-file-backed catalog entries (scans stream their pages through
    /// a buffer pool), and every subsequent [`Database::register`] /
    /// [`Database::register_or_replace`] writes through to disk — so a
    /// later `open` of the same directory sees the same tables and rows.
    ///
    /// ```
    /// use temporal_core::prelude::*;
    /// use temporal_engine::prelude::*;
    ///
    /// let dir = std::env::temp_dir().join("talign_db_open_doc");
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let rel = TemporalRelation::from_rows(
    ///     Schema::new(vec![Column::new("n", DataType::Str)]),
    ///     vec![(vec![Value::str("ann")], Interval::of(0, 7))],
    /// )
    /// .unwrap();
    ///
    /// let db = Database::open(&dir).unwrap();
    /// db.register("r", &rel).unwrap();
    /// drop(db);
    ///
    /// // A fresh process sees the same table.
    /// let db = Database::open(&dir).unwrap();
    /// assert_eq!(db.list_tables(), vec!["r".to_string()]);
    /// assert_eq!(db.table("r").unwrap().collect().unwrap().len(), 1);
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn open(dir: impl AsRef<Path>) -> TemporalResult<Database> {
        Database::open_with_pool(dir, DEFAULT_BUFFER_POOL_PAGES)
    }

    /// [`Database::open`] with an explicit per-table buffer pool size (in
    /// pages). A pool smaller than a table's page count still scans the
    /// whole table — pages stream through the pool instead of residing in
    /// memory.
    pub fn open_with_pool(dir: impl AsRef<Path>, pool_pages: usize) -> TemporalResult<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| engine_storage_err(format!("create {}: {e}", dir.display())))?;
        // Crash recovery first: replay whatever consistent prefix survives
        // in the WAL over the heap files, rebuild touched indexes, and get
        // back the settled manifest plus the live log handle.
        let (manifest, wal, report) = recovery::recover(&dir, pool_pages)?;
        let db = Database::new();
        let epoch = manifest.epoch();
        db.inner.epoch.store(epoch, Ordering::Release);
        {
            let mut state = db.state_mut();
            for (name, meta) in manifest.iter() {
                let schema = storage::schema_from_string(&meta.schema)?;
                // Trust the manifest's cached row count: pages validate
                // lazily on every pinned access, so open stays
                // O(manifest), not O(data). (Recovery already recounted
                // any table it replayed into.)
                let table = StoredTable::open_with_count(
                    dir.join(&meta.file),
                    name.clone(),
                    schema,
                    pool_pages,
                    meta.rows,
                )?;
                // Reattach the interval index leniently: a missing or
                // unreadable index file only loses the pruning fast path,
                // never the table (scans degrade to zone maps / full).
                if let Some(index_file) = &meta.index {
                    if let Ok(index) = IntervalIndex::open(dir.join(index_file), pool_pages) {
                        table.attach_index(index);
                    }
                }
                table.attach_wal(Arc::clone(&wal));
                state
                    .catalog
                    .register_stored(name.clone(), Arc::new(table))?;
            }
            state.storage = Some(StorageRoot {
                dir,
                manifest,
                pool_pages,
                wal,
                checkpoint_pages: DEFAULT_WAL_CHECKPOINT_PAGES,
            });
            if report.did_work() {
                // Fold the replayed state into the data files and truncate
                // the log, so the next open starts clean.
                state.checkpoint(epoch)?;
            }
        }
        Ok(db)
    }

    fn state(&self) -> RwLockReadGuard<'_, DbState> {
        self.inner.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn state_mut(&self) -> RwLockWriteGuard<'_, DbState> {
        self.inner.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the writer lock with a bounded wait (see `DbShared::writer`
    /// and [`writer_wait`]). All mutating entry points funnel through this
    /// before touching catalog, heap files, WAL or manifest.
    fn writer_lock(&self) -> TemporalResult<MutexGuard<'_, ()>> {
        let deadline = Instant::now() + writer_wait();
        loop {
            match self.inner.writer.try_lock() {
                Ok(guard) => return Ok(guard),
                Err(TryLockError::Poisoned(p)) => return Ok(p.into_inner()),
                Err(TryLockError::WouldBlock) => {
                    if Instant::now() >= deadline {
                        return Err(TemporalError::from(EngineError::Busy(
                            "another session is writing; retry the statement".into(),
                        )));
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Do two handles share the same underlying database?
    pub fn same_as(&self, other: &Database) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // ---- sessions & epoch ------------------------------------------------

    /// Register one open session (a server connection, a shell) over this
    /// database. [`Database::close`] leaves buffer pools open while any
    /// guard is alive; drop the guard to deregister.
    pub fn open_session(&self) -> SessionGuard {
        self.inner.sessions.fetch_add(1, Ordering::AcqRel);
        SessionGuard {
            shared: Arc::clone(&self.inner),
        }
    }

    /// How many [`SessionGuard`]s are currently alive.
    pub fn open_sessions(&self) -> usize {
        self.inner.sessions.load(Ordering::Acquire)
    }

    /// The database's change epoch: bumped by every committed mutation,
    /// persisted into the manifest at checkpoint, restored on open. Two
    /// equal epochs from the same handle mean no table changed in between.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Bump and return the new change epoch (callers hold the writer lock).
    fn bump_epoch(&self) -> u64 {
        self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    // ---- catalog ---------------------------------------------------------

    /// Register a temporal relation as a table; errors if the name is
    /// taken. Rows are shared, not copied — except on a database opened
    /// via [`Database::open`], where registration is **durable**: the
    /// rows are written to a heap file and the table is backed by it.
    pub fn register(&self, name: impl Into<String>, rel: &TemporalRelation) -> TemporalResult<()> {
        self.register_relation(name, rel.rel().clone())
    }

    /// Register or replace a temporal relation as a table. On a durable
    /// database the replacement is atomic per table: the new rows are
    /// written to a temp file renamed over `<name>.heap` and the manifest
    /// entry is replaced in place — the old durable copy stays intact if
    /// persisting fails, and no dangling heap files are left behind.
    pub fn register_or_replace(
        &self,
        name: impl Into<String>,
        rel: &TemporalRelation,
    ) -> TemporalResult<()> {
        let name = name.into();
        let _writer = self.writer_lock()?;
        let epoch = self.bump_epoch();
        let mut state = self.state_mut();
        if state.storage.is_some() {
            // persist_into swaps the heap file atomically and replaces
            // both the manifest entry and the catalog entry.
            Self::persist_into(&mut state, &name, rel.rel(), epoch)
        } else {
            state
                .catalog
                .register_or_replace_shared(name, Arc::new(rel.rel().clone()));
            Ok(())
        }
    }

    /// Register a plain (not necessarily temporal) relation — such tables
    /// are reachable from SQL and from [`Database::relation`], but not
    /// from [`Database::table`], which requires the temporal shape.
    /// Durable on an opened database, like [`Database::register`].
    pub fn register_relation(&self, name: impl Into<String>, rel: Relation) -> TemporalResult<()> {
        let name = name.into();
        let _writer = self.writer_lock()?;
        let epoch = self.bump_epoch();
        let mut state = self.state_mut();
        if state.catalog.contains(&name) {
            return Err(TemporalError::from(EngineError::DuplicateTable(name)));
        }
        if state.storage.is_some() {
            Self::persist_into(&mut state, &name, &rel, epoch)
        } else {
            state
                .catalog
                .register(name, rel)
                .map_err(TemporalError::from)
        }
    }

    /// Drop a table; returns whether it existed. On a persisted database
    /// this also deletes the table's heap file and manifest entry —
    /// errors if that cleanup fails (the table would otherwise resurrect
    /// on reopen).
    pub fn drop_table(&self, name: &str) -> TemporalResult<bool> {
        let _writer = self.writer_lock()?;
        let epoch = self.bump_epoch();
        let mut state = self.state_mut();
        let existed = state.catalog.drop_table(name).is_some();
        Self::remove_persisted(&mut state, name, epoch)?;
        Ok(existed)
    }

    // ---- persistence -----------------------------------------------------

    /// The storage directory, when this database was opened on one.
    pub fn storage_dir(&self) -> Option<PathBuf> {
        self.state().storage.as_ref().map(|r| r.dir.clone())
    }

    /// Does this database write registrations through to disk?
    pub fn is_durable(&self) -> bool {
        self.state().storage.is_some()
    }

    /// Checkpoint a persisted database: flush every stored table, refresh
    /// and save the manifest, and truncate the WAL (everything logged so
    /// far is now on the data pages). A no-op on an in-memory database.
    /// Checkpoints also fire automatically once the log outgrows the
    /// `wal_checkpoint_pages` threshold (see [`Database::set_int`]).
    pub fn checkpoint(&self) -> TemporalResult<()> {
        let _writer = self.writer_lock()?;
        let epoch = self.epoch();
        self.state_mut().checkpoint(epoch)
    }

    /// Checkpoint, then — when no registered session is still open —
    /// close every stored table's buffer pools, surfacing the I/O errors
    /// the silent drop path can only print. While other
    /// [`SessionGuard`]s are alive the pools stay open (their scans may
    /// hold pages), so per-connection teardown is always safe to call.
    pub fn close(&self) -> TemporalResult<()> {
        let _writer = self.writer_lock()?;
        let epoch = self.epoch();
        let mut state = self.state_mut();
        state.checkpoint(epoch)?;
        if self.inner.sessions.load(Ordering::Acquire) > 0 {
            return Ok(());
        }
        for name in state.catalog.list_tables() {
            if let Ok(TableSource::Stored(table)) = state.catalog.source(&name) {
                table.close()?;
            }
        }
        Ok(())
    }

    /// The WAL durability policy of a persisted database (`None` when
    /// in-memory). Defaults to [`SyncMode::Commit`], overridable via the
    /// `TEMPORAL_SYNC_MODE` environment variable or `set_str`.
    pub fn sync_mode(&self) -> Option<SyncMode> {
        self.state().storage.as_ref().map(|r| r.wal.mode())
    }

    /// WAL counters of a persisted database (`None` when in-memory):
    /// commits acknowledged, fsyncs issued, bytes appended and
    /// checkpoints taken. [`WalStats::group_commit_ratio`]
    /// (syncs ÷ commits) drops below 1 as soon as committers overlap on
    /// the group-commit flusher — `reproduce -- serve` and the server's
    /// `.stats` both report it.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.state().storage.as_ref().map(|r| r.wal.stats())
    }

    /// Aggregated buffer-pool counters across every stored table's pool
    /// (`None` when in-memory): fetches, disk reads (misses), write-backs,
    /// syncs, evictions and total capacity. [`PoolStats::hit_rate`] is
    /// `1 − io_reads/fetches` over the aggregate.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        let state = self.state();
        state.storage.as_ref()?;
        let mut total = PoolStats::default();
        for name in state.catalog.list_tables() {
            if let Ok(TableSource::Stored(table)) = state.catalog.source(&name) {
                total.merge(&table.pool_stats());
            }
        }
        Some(total)
    }

    // ---- observability ---------------------------------------------------

    /// The database-wide metrics registry. Any layer holding a handle can
    /// register counters/gauges/histograms by name (`server.statements`,
    /// `session.statement_us`, …); they all land in one
    /// [`Database::metrics_snapshot`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The database-wide span tracer. Populated while the `trace` GUC is
    /// on (`SET trace = on`, or `TEMPORAL_TRACE=1` at startup); dump with
    /// tsql `.trace <file>` as chrome-trace JSON.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// One coherent snapshot of every metric: polls the store-side
    /// counters (buffer pools, WAL) and ambient state (epoch, open
    /// sessions) into gauges, then snapshots the whole registry. Two
    /// snapshots [`MetricsSnapshot::diff`] into an interval view with
    /// percentiles recomputed over just that window.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let m = &self.inner.metrics;
        if let Some(pool) = self.pool_stats() {
            m.gauge("pool.fetches").set(pool.fetches);
            m.gauge("pool.io_reads").set(pool.io_reads);
            m.gauge("pool.io_writes").set(pool.io_writes);
            m.gauge("pool.io_syncs").set(pool.io_syncs);
            m.gauge("pool.evictions").set(pool.evictions);
            m.gauge("pool.capacity").set(pool.capacity);
        }
        if let Some(wal) = self.wal_stats() {
            m.gauge("wal.commits").set(wal.commits);
            m.gauge("wal.syncs").set(wal.syncs);
            m.gauge("wal.bytes").set(wal.bytes);
            m.gauge("wal.checkpoints").set(wal.checkpoints);
        }
        m.gauge("db.epoch").set(self.epoch());
        m.gauge("db.sessions").set(self.open_sessions() as u64);
        m.snapshot()
    }

    /// Set a string-valued setting by name. Currently that is
    /// `sync_mode` — when the WAL fsyncs — with values `off` (never:
    /// fastest, a crash can lose recent commits), `commit` (once per
    /// acknowledged batch; the default) or `always` (on every record).
    /// Accepted but inert on an in-memory database, so scripts run
    /// against either backing.
    pub fn set_str(&self, name: &str, value: &str) -> TemporalResult<()> {
        if name.eq_ignore_ascii_case("sync_mode") {
            let mode = SyncMode::parse(value).ok_or_else(|| {
                TemporalError::Unsupported(format!(
                    "sync_mode accepts off, commit or always (got {value:?})"
                ))
            })?;
            if let Some(root) = &self.state().storage {
                root.wal.set_mode(mode);
            }
            return Ok(());
        }
        Err(TemporalError::Unsupported(format!(
            "unknown string setting {name:?} (expected sync_mode)"
        )))
    }

    /// Persist table `name` into the database's storage directory: its
    /// current rows are written to `<dir>/<name>.heap`, the manifest is
    /// updated, and the catalog entry switches to the heap-file backing
    /// (scans now stream pages through the buffer pool). Errors if the
    /// database was not opened on a directory ([`Database::open`]).
    pub fn persist(&self, name: &str) -> TemporalResult<()> {
        let _writer = self.writer_lock()?;
        let epoch = self.bump_epoch();
        let mut state = self.state_mut();
        if state.storage.is_none() {
            return Err(TemporalError::Unsupported(
                "database has no storage directory; open one with Database::open(dir)".into(),
            ));
        }
        let rel = state.catalog.get(name).map_err(TemporalError::from)?;
        Self::persist_into(&mut state, name, &rel, epoch)
    }

    /// Append rows to table `name` (arity-checked). In-memory tables get
    /// copy-on-write appends; persisted tables append through the buffer
    /// pool and the manifest row count is refreshed. Returns the number
    /// of appended rows.
    ///
    /// Concurrency: writers serialize on the writer lock (bounded wait,
    /// then [`EngineError::Busy`]), but the append itself and the
    /// commit-time fsync run *outside* the shared state lock — snapshot
    /// readers keep scanning, and the fsync happens after the writer lock
    /// is released, so concurrent committers batch through the WAL's
    /// group-commit flusher instead of paying one fsync each.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> TemporalResult<usize> {
        let n = rows.len();
        let writer = self.writer_lock()?;
        let source = {
            let state = self.state();
            state.catalog.source(name).map_err(TemporalError::from)?
        };
        match source {
            TableSource::Stored(table) => {
                // Validate the whole batch up front so a bad row cannot
                // leave a prefix durably appended (the in-memory branch is
                // naturally all-or-nothing; match its semantics for the
                // foreseeable error class).
                let arity = table.schema().len();
                for (i, r) in rows.iter().enumerate() {
                    if r.len() != arity {
                        return Err(TemporalError::from(EngineError::SchemaMismatch(format!(
                            "row {i} has {} values, table '{name}' has {arity} columns",
                            r.len()
                        ))));
                    }
                }
                // Appends publish to new snapshots atomically: readers see
                // the whole batch or none of it.
                {
                    let batch = table.begin_batch();
                    table.append_rows(rows.iter())?;
                    drop(batch);
                }
                let epoch = self.bump_epoch();
                let wal = {
                    // Short exclusive section: manifest row count +
                    // threshold checkpoint. No data-page flush or manifest
                    // save for the append itself — recovery replays the
                    // log; the row count lands at the next checkpoint.
                    let mut state = self.state_mut();
                    let wal = state.storage.as_ref().map(|root| Arc::clone(&root.wal));
                    if let Some(root) = &mut state.storage {
                        if let Some(meta) = root.manifest.get(name) {
                            let mut meta = meta.clone();
                            meta.rows = table.row_count();
                            root.manifest.insert(name, meta);
                        }
                    }
                    state.maybe_checkpoint(epoch)?;
                    wal
                };
                // Release the writer lock *before* the commit fsync: the
                // rows are in the WAL (appends log through the heap's
                // sink), so all that remains is making them durable — and
                // concurrent committers doing the same share one fsync.
                drop(writer);
                if let Some(wal) = wal {
                    wal.commit().map_err(EngineError::from)?;
                }
            }
            TableSource::Mem(rel) => {
                let mut new_rel = (*rel).clone();
                for r in rows {
                    new_rel.push(r).map_err(TemporalError::from)?;
                }
                self.bump_epoch();
                self.state_mut()
                    .catalog
                    .register_or_replace_shared(name, Arc::new(new_rel));
            }
        }
        Ok(n)
    }

    /// Write `rel` as the heap file of `name`, update the manifest and
    /// switch the catalog entry to the stored backing. Caller must have
    /// verified `state.storage` is present.
    fn persist_into(
        state: &mut DbState,
        name: &str,
        rel: &Relation,
        epoch: u64,
    ) -> TemporalResult<()> {
        let root = state
            .storage
            .as_mut()
            .expect("persist_into requires a storage root");
        let table = StoredTable::persist_relation(&root.dir, name, rel, root.pool_pages)?;
        let index = table.index_file_name();
        if index.is_none() {
            // A non-temporal replacement must not leave a stale index from
            // a previous temporal incarnation of the name behind.
            let _ = std::fs::remove_file(index_path(&root.dir, name));
        }
        let meta = TableMeta {
            file: format!("{name}.{}", storage::HEAP_EXT),
            fingerprint: storage::schema_fingerprint(table.schema()),
            rows: table.row_count(),
            schema: storage::schema_to_string(table.schema()),
            index,
        };
        // Log the (re)creation *after* its files are in place and *before*
        // the manifest write: a crash in between replays the upsert from
        // the log, and replay skips it when the heap file never landed.
        root.wal
            .append(&storage::WalRecord::TableUpsert {
                name: name.to_string(),
                file: meta.file.clone(),
                fingerprint: meta.fingerprint,
                rows: meta.rows,
                schema: meta.schema.clone(),
                index: meta.index.clone(),
            })
            .and_then(|_| root.wal.commit())
            .map_err(EngineError::from)?;
        root.manifest.insert(name, meta);
        root.manifest.set_epoch(epoch);
        root.manifest.save(&root.dir).map_err(EngineError::from)?;
        table.attach_wal(Arc::clone(&root.wal));
        state.catalog.register_or_replace_stored(name, table);
        Ok(())
    }

    /// Remove `name`'s manifest entry and heap file, if any.
    fn remove_persisted(state: &mut DbState, name: &str, epoch: u64) -> TemporalResult<()> {
        let Some(root) = &mut state.storage else {
            return Ok(());
        };
        if root.manifest.remove(name).is_some() {
            // Log the drop before touching the manifest or files, so a
            // crash mid-removal finishes the job on replay instead of
            // resurrecting the table.
            root.wal
                .append(&storage::WalRecord::TableDrop {
                    name: name.to_string(),
                })
                .and_then(|_| root.wal.commit())
                .map_err(EngineError::from)?;
            root.manifest.set_epoch(epoch);
            root.manifest.save(&root.dir).map_err(EngineError::from)?;
        }
        // The index is derived data — a failed removal cannot resurrect
        // the table, so it is best-effort.
        let _ = std::fs::remove_file(index_path(&root.dir, name));
        let path = heap_path(&root.dir, name);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(engine_storage_err(format!(
                "remove {}: {e}",
                path.display()
            ))),
        }
    }

    /// Names of all registered tables, sorted.
    pub fn list_tables(&self) -> Vec<String> {
        self.state().catalog.list_tables()
    }

    /// Fetch a registered relation (shared, no copy).
    pub fn relation(&self, name: &str) -> TemporalResult<Arc<Relation>> {
        self.state().catalog.get(name).map_err(TemporalError::from)
    }

    // ---- configuration ---------------------------------------------------

    /// Set a planner switch by its GUC name (e.g. `enable_mergejoin`) —
    /// applies to every frame and SQL session sharing this database.
    pub fn set(&self, guc: &str, value: bool) -> TemporalResult<()> {
        self.state_mut()
            .planner
            .config
            .set(guc, value)
            .map_err(TemporalError::from)
    }

    /// Set an integer GUC by name (e.g. `threads`, `parallel_min_rows`) —
    /// applies to every frame and SQL session sharing this database.
    /// `wal_checkpoint_pages` (how many pages' worth of WAL accumulate
    /// before an automatic checkpoint) is handled here too; like
    /// `sync_mode` it is accepted but inert on an in-memory database.
    pub fn set_int(&self, guc: &str, value: i64) -> TemporalResult<()> {
        if guc.eq_ignore_ascii_case("wal_checkpoint_pages") {
            if value <= 0 {
                return Err(TemporalError::Unsupported(
                    "wal_checkpoint_pages must be positive".into(),
                ));
            }
            if let Some(root) = &mut self.state_mut().storage {
                root.checkpoint_pages = value as u64;
            }
            return Ok(());
        }
        self.state_mut()
            .planner
            .config
            .set_int(guc, value)
            .map_err(TemporalError::from)
    }

    /// A copy of the current planner configuration.
    pub fn config(&self) -> PlannerConfig {
        self.state().planner.config
    }

    /// Run `f` with shared access to the catalog and planner (the hook the
    /// SQL session executes through).
    pub fn read<R>(&self, f: impl FnOnce(&Catalog, &Planner) -> R) -> R {
        let state = self.state();
        f(&state.catalog, &state.planner)
    }

    /// Run `f` with exclusive access to the catalog and planner.
    pub fn write<R>(&self, f: impl FnOnce(&mut Catalog, &mut Planner) -> R) -> R {
        let mut state = self.state_mut();
        let DbState {
            catalog, planner, ..
        } = &mut *state;
        f(catalog, planner)
    }

    // ---- frames ----------------------------------------------------------

    /// Start a lazy frame over a registered temporal table. Columns are
    /// qualified with the table name, so `col("staff.team")` resolves.
    /// Only the schema is touched here — a persisted table is not read
    /// until the frame executes (and then its pages stream).
    pub fn table(&self, name: &str) -> TemporalResult<TemporalFrame> {
        let schema = self
            .read(|catalog, _| catalog.schema_of(name))
            .map_err(TemporalError::from)?;
        let schema = schema.with_qualifier(name);
        Ok(TemporalFrame {
            db: self.clone(),
            state: TemporalPlan::table(name, schema),
        })
    }

    /// Start a lazy frame over an unregistered temporal relation (rows
    /// shared, not copied).
    pub fn frame(&self, rel: &TemporalRelation) -> TemporalFrame {
        TemporalFrame {
            db: self.clone(),
            state: Ok(TemporalPlan::scan(rel)),
        }
    }

    /// Execute a composed [`TemporalPlan`] against this database. The
    /// lock is held only while *planning* — the physical plan captures
    /// its `Arc<Relation>` scans, so execution runs without blocking
    /// concurrent registration or `SET` on the shared database.
    pub fn run(&self, plan: &TemporalPlan) -> TemporalResult<TemporalRelation> {
        let physical = self.physical(plan)?;
        let state = ExecutionState::new(self.config());
        let out = physical.collect(&state)?;
        TemporalRelation::new(out)
    }

    /// Plan (and optimize) a composed [`TemporalPlan`] under the shared
    /// lock, returning the self-contained physical plan. Public so
    /// callers can execute with their own [`ExecutionState`] and inspect
    /// its counters (pages read/skipped, rows) afterwards.
    pub fn physical(&self, plan: &TemporalPlan) -> TemporalResult<PhysicalPlan> {
        self.read(|catalog, planner| plan.physical(planner, catalog))
    }
}

/// Build the engine-storage error used for filesystem-level failures.
fn engine_storage_err(msg: String) -> TemporalError {
    TemporalError::from(EngineError::Storage(msg))
}

/// A lazy, name-based temporal query: operators of the sequenced temporal
/// algebra compose into one [`TemporalPlan`]; [`TemporalFrame::collect`]
/// plans, optimizes and executes the whole pipeline in a single
/// `Planner::run` over the batch executor.
///
/// ```
/// use temporal_core::prelude::*;
/// use temporal_engine::prelude::*;
///
/// let db = Database::new();
/// let staff = TemporalRelation::from_rows(
///     Schema::new(vec![
///         Column::new("person", DataType::Str),
///         Column::new("team", DataType::Str),
///     ]),
///     vec![
///         (vec![Value::str("ann"), Value::str("db")], Interval::of(0, 8)),
///         (vec![Value::str("joe"), Value::str("db")], Interval::of(2, 6)),
///     ],
/// )
/// .unwrap();
/// let oncall = TemporalRelation::from_rows(
///     Schema::new(vec![Column::new("team", DataType::Str)]),
///     vec![(vec![Value::str("db")], Interval::of(3, 5))],
/// )
/// .unwrap();
/// db.register("staff", &staff).unwrap();
/// db.register("oncall", &oncall).unwrap();
///
/// // Who was staffed while their team was on call? (⋈ᵀ then ϑᵀ)
/// let headcount = db
///     .table("staff")
///     .unwrap()
///     .temporal_join(db.table("oncall").unwrap(), col("staff.team").eq(col("oncall.team")))
///     .aggregate(&[], vec![(AggCall::count_star(), "cnt")])
///     .collect()
///     .unwrap();
/// assert!(headcount.iter().all(|(d, _)| d[0] == Value::Int(2)));
/// ```
#[derive(Debug, Clone)]
pub struct TemporalFrame {
    db: Database,
    state: TemporalResult<TemporalPlan>,
}

impl TemporalFrame {
    // ---- plumbing --------------------------------------------------------

    /// Apply `f` to the carried plan, deferring any error to collect time.
    fn lift(self, f: impl FnOnce(TemporalPlan) -> TemporalResult<TemporalPlan>) -> TemporalFrame {
        TemporalFrame {
            db: self.db,
            state: self.state.and_then(f),
        }
    }

    /// Apply a binary operator; both frames must share one [`Database`].
    fn lift2(
        self,
        other: TemporalFrame,
        f: impl FnOnce(TemporalPlan, TemporalPlan) -> TemporalResult<TemporalPlan>,
    ) -> TemporalFrame {
        let state = (|| {
            if !self.db.same_as(&other.db) {
                return Err(TemporalError::Incompatible(
                    "frames belong to different Database instances; combine frames \
                     created from the same Database"
                        .into(),
                ));
            }
            f(self.state?, other.state?)
        })();
        TemporalFrame { db: self.db, state }
    }

    /// The frame's output schema (`data…, ts, te`).
    pub fn schema(&self) -> TemporalResult<Schema> {
        Ok(self.state.as_ref().map_err(Clone::clone)?.schema())
    }

    /// The composed logical plan (errors if the chain already failed).
    pub fn plan(&self) -> TemporalResult<&TemporalPlan> {
        self.state.as_ref().map_err(Clone::clone)
    }

    /// Consume into the composed [`TemporalPlan`].
    pub fn into_plan(self) -> TemporalResult<TemporalPlan> {
        self.state
    }

    /// The database this frame queries.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Resolve a column name to its position in the frame's schema.
    fn resolve_index(schema: &Schema, name: &str) -> TemporalResult<usize> {
        Ok(temporal_engine::expr::resolve_name(name, schema)?)
    }

    fn resolve_indices(plan: &TemporalPlan, names: &[&str]) -> TemporalResult<Vec<usize>> {
        let schema = plan.schema();
        names
            .iter()
            .map(|n| Self::resolve_index(&schema, n))
            .collect()
    }

    // ---- tuple-based operators (aligner) ---------------------------------

    /// σᵀ_θ: keep rows satisfying `predicate` (named references resolve
    /// against this frame's schema).
    pub fn filter(self, predicate: Expr) -> TemporalFrame {
        self.lift(|p| p.selection(predicate))
    }

    /// Timeslice: rows whose valid interval contains instant `v` — sugar
    /// for `filter(ts <= v AND te > v)` on the half-open `[ts, te)`
    /// convention. The canonical range shape lets the planner's
    /// access-path selection serve it from page zone maps or the
    /// persistent interval index; SQL's `FROM t AS OF v` lowers to the
    /// same predicate, so both surfaces plan identically.
    pub fn as_of(self, v: i64) -> TemporalFrame {
        self.lift(|p| {
            let n = p.schema().len();
            let predicate = col(n - 2).le(lit(v)).and(col(n - 1).gt(lit(v)));
            p.selection(predicate)
        })
    }

    /// ×ᵀ: temporal Cartesian product.
    pub fn cartesian_product(self, other: TemporalFrame) -> TemporalFrame {
        self.lift2(other, |l, r| l.cartesian_product(r))
    }

    /// ⋈ᵀ_θ: temporal inner join; `theta` is expressed over the
    /// concatenation of both frames' rows (use qualified names such as
    /// `col("staff.team")` when both sides share column names).
    pub fn temporal_join(
        self,
        other: TemporalFrame,
        theta: impl Into<Option<Expr>>,
    ) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.join(r, theta))
    }

    /// ⟕ᵀ_θ: temporal left outer join.
    pub fn left_outer_join(
        self,
        other: TemporalFrame,
        theta: impl Into<Option<Expr>>,
    ) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.left_outer_join(r, theta))
    }

    /// ⟖ᵀ_θ: temporal right outer join.
    pub fn right_outer_join(
        self,
        other: TemporalFrame,
        theta: impl Into<Option<Expr>>,
    ) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.right_outer_join(r, theta))
    }

    /// ⟗ᵀ_θ: temporal full outer join.
    pub fn full_outer_join(
        self,
        other: TemporalFrame,
        theta: impl Into<Option<Expr>>,
    ) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.full_outer_join(r, theta))
    }

    /// ▷ᵀ_θ: temporal anti join.
    pub fn anti_join(self, other: TemporalFrame, theta: impl Into<Option<Expr>>) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.anti_join(r, theta))
    }

    /// ▷ᵀ_θ via the customized gaps-only primitive (Sec. 8 future work).
    pub fn anti_join_optimized(
        self,
        other: TemporalFrame,
        theta: impl Into<Option<Expr>>,
    ) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.anti_join_optimized(r, theta))
    }

    // ---- group-based operators (splitter) --------------------------------

    /// πᵀ_B: temporal projection onto the named data columns.
    pub fn select(self, columns: &[&str]) -> TemporalFrame {
        self.lift(|p| {
            let idxs = Self::resolve_indices(&p, columns)?;
            p.projection(&idxs)
        })
    }

    /// πᵀ_B by position (the resolved form of [`TemporalFrame::select`]).
    pub fn project(self, b: &[usize]) -> TemporalFrame {
        self.lift(|p| p.projection(b))
    }

    /// ϑᵀ: temporal aggregation grouped by the named data columns.
    /// Output schema: `group…, aggregates…, ts, te`.
    pub fn aggregate(
        self,
        group_by: &[&str],
        aggs: Vec<(AggCall, impl Into<String>)>,
    ) -> TemporalFrame {
        self.lift(|p| {
            let idxs = Self::resolve_indices(&p, group_by)?;
            p.aggregation(
                &idxs,
                aggs.into_iter().map(|(a, n)| (a, n.into())).collect(),
            )
        })
    }

    /// ϑᵀ grouped by position (the resolved form of
    /// [`TemporalFrame::aggregate`]).
    pub fn aggregate_at(
        self,
        group_by: &[usize],
        aggs: Vec<(AggCall, impl Into<String>)>,
    ) -> TemporalFrame {
        let group_by = group_by.to_vec();
        self.lift(move |p| {
            p.aggregation(
                &group_by,
                aggs.into_iter().map(|(a, n)| (a, n.into())).collect(),
            )
        })
    }

    /// ∪ᵀ: temporal union.
    pub fn union(self, other: TemporalFrame) -> TemporalFrame {
        self.lift2(other, |l, r| l.union(r))
    }

    /// −ᵀ: temporal difference.
    pub fn difference(self, other: TemporalFrame) -> TemporalFrame {
        self.lift2(other, |l, r| l.difference(r))
    }

    /// ∩ᵀ: temporal intersection.
    pub fn intersection(self, other: TemporalFrame) -> TemporalFrame {
        self.lift2(other, |l, r| l.intersection(r))
    }

    // ---- primitives ------------------------------------------------------

    /// The alignment primitive `r Φ_θ s` itself.
    pub fn align(self, other: TemporalFrame, theta: impl Into<Option<Expr>>) -> TemporalFrame {
        let theta = theta.into();
        self.lift2(other, |l, r| l.align(r, theta))
    }

    /// The normalization primitive `N_B(r; s)`, grouping on the named
    /// columns (resolved in each frame's own schema).
    pub fn normalize_using(self, other: TemporalFrame, columns: &[&str]) -> TemporalFrame {
        let columns: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
        self.lift2(other, move |l, r| {
            let (ls, rs) = (l.schema(), r.schema());
            let pairs = columns
                .iter()
                .map(|n| Ok((Self::resolve_index(&ls, n)?, Self::resolve_index(&rs, n)?)))
                .collect::<TemporalResult<Vec<_>>>()?;
            l.normalize(r, &pairs)
        })
    }

    /// The absorb operator α.
    pub fn absorb(self) -> TemporalFrame {
        self.lift(|p| Ok(p.absorb()))
    }

    /// `U(r)`: timestamp propagation — appends `us`/`ue` copies of the
    /// interval so θ conditions can reference the original timestamps.
    pub fn extend(self) -> TemporalFrame {
        self.lift(|p| p.extend())
    }

    /// Re-qualify every column with `alias`, so self-joins can tell their
    /// sides apart: `db.table("r")?.alias("r2")` makes `col("r2.k")`
    /// resolvable.
    pub fn alias(self, alias: &str) -> TemporalFrame {
        let alias = alias.to_string();
        self.lift(move |p| Ok(p.aliased(&alias)))
    }

    // ---- execution -------------------------------------------------------

    /// Plan, optimize and execute the whole pipeline with a single
    /// `Planner::run` (batch execution), materializing the result.
    pub fn collect(&self) -> TemporalResult<TemporalRelation> {
        let plan = self.plan()?;
        self.db.run(plan)
    }

    /// Execute and stream the result as [`RowBatch`]es instead of one
    /// materialized relation. As with [`TemporalFrame::collect`], the
    /// shared lock is dropped before execution starts.
    pub fn collect_batches(&self) -> TemporalResult<Vec<RowBatch>> {
        let physical = self.db.physical(self.plan()?)?;
        let state = ExecutionState::new(self.db.config());
        let mut exec = physical.execute(&state).map_err(TemporalError::from)?;
        let mut out = Vec::new();
        while let Some(batch) = exec.next_batch(&state).map_err(TemporalError::from)? {
            out.push(batch);
        }
        Ok(out)
    }

    /// EXPLAIN: the optimized physical plan for the whole pipeline, as one
    /// costed tree — the same rendering SQL `EXPLAIN` produces.
    pub fn explain(&self) -> TemporalResult<String> {
        let plan = self.plan()?;
        self.db
            .read(|catalog, planner| plan.explain(planner, catalog))
    }

    /// EXPLAIN ANALYZE: plan, **execute** the pipeline with per-operator
    /// instrumentation (the result is discarded), and render the same
    /// physical tree as [`TemporalFrame::explain`] annotated with actual
    /// rows, batches, wall-time and access-path counters (pages
    /// read/skipped, parallel partitions) next to the optimizer's
    /// estimates — the same rendering SQL `EXPLAIN ANALYZE` produces.
    pub fn explain_analyze(&self) -> TemporalResult<String> {
        let physical = self.db.physical(self.plan()?)?;
        let state = ExecutionState::new(self.db.config()).with_instrumentation();
        physical.collect(&state)?;
        Ok(physical.explain_analyze(&state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::TemporalAlgebra;
    use crate::interval::Interval;

    fn staff() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![
                Column::new("person", DataType::Str),
                Column::new("team", DataType::Str),
            ]),
            vec![
                (
                    vec![Value::str("ann"), Value::str("db")],
                    Interval::of(0, 8),
                ),
                (
                    vec![Value::str("joe"), Value::str("db")],
                    Interval::of(2, 6),
                ),
                (
                    vec![Value::str("sam"), Value::str("ui")],
                    Interval::of(4, 10),
                ),
            ],
        )
        .unwrap()
    }

    fn oncall() -> TemporalRelation {
        TemporalRelation::from_rows(
            Schema::new(vec![Column::new("team", DataType::Str)]),
            vec![
                (vec![Value::str("db")], Interval::of(3, 5)),
                (vec![Value::str("ui")], Interval::of(5, 7)),
            ],
        )
        .unwrap()
    }

    fn db() -> Database {
        let db = Database::new();
        db.register("staff", &staff()).unwrap();
        db.register("oncall", &oncall()).unwrap();
        db
    }

    #[test]
    fn lazy_filter_collects() {
        let db = db();
        let out = db
            .table("staff")
            .unwrap()
            .filter(col("team").eq(lit("db")))
            .collect()
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn qualified_join_matches_algebra() {
        let db = db();
        let frame = db
            .table("staff")
            .unwrap()
            .temporal_join(
                db.table("oncall").unwrap(),
                col("staff.team").eq(col("oncall.team")),
            )
            .collect()
            .unwrap();
        let alg = TemporalAlgebra::default();
        let eager = alg
            .join(&staff(), &oncall(), Some(col(1usize).eq(col(2usize + 2))))
            .unwrap();
        assert!(frame.same_set(&eager), "frame:\n{frame}\neager:\n{eager}");
    }

    #[test]
    fn builder_errors_surface_at_collect() {
        let db = db();
        let frame = db.table("staff").unwrap().filter(col("tem").eq(lit("db")));
        let err = frame.collect().unwrap_err().to_string();
        assert!(err.contains("did you mean"), "{err}");
        // explain carries the same deferred error
        assert!(frame.explain().is_err());
    }

    #[test]
    fn ambiguous_after_join_requires_qualifier() {
        let db = db();
        let frame = db
            .table("staff")
            .unwrap()
            .temporal_join(db.table("oncall").unwrap(), None)
            .filter(col("team").eq(lit("db")));
        let err = frame.collect().unwrap_err().to_string();
        assert!(err.contains("ambiguous"), "{err}");
        // Qualified, it resolves: the join output keeps qualifiers.
        let ok = db
            .table("staff")
            .unwrap()
            .temporal_join(db.table("oncall").unwrap(), None)
            .filter(col("oncall.team").eq(lit("db")));
        assert!(ok.collect().is_ok());
    }

    #[test]
    fn select_and_aggregate_by_name() {
        let db = db();
        let proj = db
            .table("staff")
            .unwrap()
            .select(&["team"])
            .collect()
            .unwrap();
        assert!(proj.iter().all(|(d, _)| d.len() == 1));
        let agg = db
            .table("staff")
            .unwrap()
            .aggregate(&["team"], vec![(AggCall::count_star(), "cnt")])
            .collect()
            .unwrap();
        assert_eq!(agg.schema().names(), vec!["team", "cnt", "ts", "te"]);
    }

    #[test]
    fn alias_enables_self_join() {
        let db = db();
        let left = db.table("staff").unwrap().alias("a");
        let right = db.table("staff").unwrap().alias("b");
        let theta = col("a.team")
            .eq(col("b.team"))
            .and(col("a.person").ne(col("b.person")));
        let out = left.anti_join(right, theta).collect().unwrap();
        // sam never overlaps a teammate; ann/joe do over [2,6).
        assert!(out.iter().any(|(d, _)| d[0] == Value::str("sam")));
    }

    #[test]
    fn frames_from_different_databases_refuse_to_join() {
        let db1 = db();
        let db2 = db();
        let err = db1
            .table("staff")
            .unwrap()
            .temporal_join(db2.table("oncall").unwrap(), None)
            .collect()
            .unwrap_err();
        assert!(err.to_string().contains("different Database"), "{err}");
    }

    #[test]
    fn collect_batches_matches_collect() {
        let db = db();
        let frame = db
            .table("staff")
            .unwrap()
            .temporal_join(db.table("oncall").unwrap(), None);
        let collected = frame.collect().unwrap();
        let batched: usize = frame
            .collect_batches()
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(collected.len(), batched);
    }

    #[test]
    fn drop_and_list_tables() {
        let db = db();
        assert_eq!(
            db.list_tables(),
            vec!["oncall".to_string(), "staff".to_string()]
        );
        assert!(db.drop_table("oncall").unwrap());
        assert!(!db.drop_table("oncall").unwrap());
        assert!(db.table("oncall").is_err());
    }

    #[test]
    fn guc_changes_apply_to_frames() {
        let db = db();
        db.set("enable_hashjoin", false).unwrap();
        db.set("enable_mergejoin", false).unwrap();
        let plan = db
            .table("staff")
            .unwrap()
            .temporal_join(
                db.table("oncall").unwrap(),
                col("staff.team").eq(col("oncall.team")),
            )
            .explain()
            .unwrap();
        assert!(plan.contains("NestedLoopJoin"), "{plan}");
        assert!(db.set("enable_time_travel", true).is_err());
    }

    fn storage_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("talign_frame_storage_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_register_reopen_round_trip() {
        let dir = storage_dir("roundtrip");
        {
            let db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            assert_eq!(db.storage_dir().unwrap(), dir);
            db.register("staff", &staff()).unwrap();
            // Durable registration backs the table with a heap file.
            assert!(db.read(|c, _| c.source("staff").unwrap().is_stored()));
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.list_tables(), vec!["staff".to_string()]);
        let out = db.table("staff").unwrap().collect().unwrap();
        assert!(out.same_set(&staff()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_switches_backing_and_survives() {
        let dir = storage_dir("persist");
        let db = Database::open(&dir).unwrap();
        // An in-memory database has no storage root:
        assert!(Database::new().persist("staff").is_err());
        db.register("staff", &staff()).unwrap();
        // Re-persisting an already-stored table is fine (idempotent).
        db.persist("staff").unwrap();
        let heap = dir.join("staff.heap");
        assert!(heap.exists());
        assert!(db.persist("nope").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_and_drop_clean_up_heap_files() {
        let dir = storage_dir("replace");
        let db = Database::open(&dir).unwrap();
        db.register("staff", &staff()).unwrap();
        let heap = dir.join("staff.heap");
        assert!(heap.exists());

        // Replacing rewrites the file (no dangling bytes from the old
        // heap) and keeps the table queryable.
        db.register_or_replace("staff", &oncall()).unwrap();
        assert!(heap.exists());
        let out = db.table("staff").unwrap().collect().unwrap();
        assert!(out.same_set(&oncall()));

        // Dropping removes file + manifest entry.
        assert!(db.drop_table("staff").unwrap());
        assert!(!heap.exists());
        drop(db);
        let db = Database::open(&dir).unwrap();
        assert!(db.list_tables().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn insert_rows_appends_to_both_backings() {
        let dir = storage_dir("insert");
        let db = Database::open(&dir).unwrap();
        db.register("staff", &staff()).unwrap();
        let extra = Row::new(vec![
            Value::str("zoe"),
            Value::str("ml"),
            Value::Int(1),
            Value::Int(4),
        ]);
        assert_eq!(db.insert_rows("staff", vec![extra.clone()]).unwrap(), 1);
        drop(db);
        // The append is durable.
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.table("staff").unwrap().collect().unwrap().len(), 4);

        // And the in-memory path works the same (minus durability).
        let mem = Database::new();
        mem.register("staff", &staff()).unwrap();
        mem.insert_rows("staff", vec![extra]).unwrap();
        assert_eq!(mem.table("staff").unwrap().collect().unwrap().len(), 4);
        assert!(mem.insert_rows("nope", vec![]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_bumps_on_writes_and_survives_reopen() {
        let dir = storage_dir("epoch");
        let epoch_after;
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.epoch(), 0);
            db.register("staff", &staff()).unwrap();
            assert!(db.epoch() > 0);
            let before = db.epoch();
            db.insert_rows(
                "staff",
                vec![Row::new(vec![
                    Value::str("zoe"),
                    Value::str("ml"),
                    Value::Int(1),
                    Value::Int(4),
                ])],
            )
            .unwrap();
            assert!(db.epoch() > before);
            epoch_after = db.epoch();
            db.checkpoint().unwrap();
        }
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.epoch(), epoch_after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn busy_writer_lock_errors_instead_of_hanging() {
        let dir = storage_dir("busy");
        let db = Database::open(&dir).unwrap();
        db.register("staff", &staff()).unwrap();
        // Hold the writer lock directly (the test module sees through the
        // handle) and verify a competing writer gives up with Busy.
        let _held = db.inner.writer.lock().unwrap();
        std::env::set_var("TEMPORAL_WRITER_WAIT_MS", "50");
        let db2 = db.clone();
        let err = std::thread::spawn(move || {
            db2.insert_rows(
                "staff",
                vec![Row::new(vec![
                    Value::str("zoe"),
                    Value::str("ml"),
                    Value::Int(1),
                    Value::Int(4),
                ])],
            )
            .unwrap_err()
        })
        .join()
        .unwrap();
        std::env::remove_var("TEMPORAL_WRITER_WAIT_MS");
        assert!(err.to_string().contains("busy"), "{err}");
        // Readers are unaffected by a held writer lock.
        assert_eq!(db.table("staff").unwrap().collect().unwrap().len(), 3);
    }

    #[test]
    fn close_keeps_pools_open_while_sessions_live() {
        let dir = storage_dir("sessions");
        let db = Database::open(&dir).unwrap();
        db.register("staff", &staff()).unwrap();
        let guard = db.open_session();
        assert_eq!(db.open_sessions(), 1);
        // close() with a live session checkpoints but must not shut the
        // pools: the table stays queryable.
        db.close().unwrap();
        assert_eq!(db.table("staff").unwrap().collect().unwrap().len(), 3);
        drop(guard);
        assert_eq!(db.open_sessions(), 0);
        db.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readers_see_whole_batches_while_a_writer_appends() {
        let dir = storage_dir("snapshot_batches");
        let db = Database::open(&dir).unwrap();
        db.register("staff", &staff()).unwrap();
        let writer = {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..40i64 {
                    let batch: Vec<Row> = (0..5)
                        .map(|j| {
                            Row::new(vec![
                                Value::str(format!("w{i}_{j}")),
                                Value::str("ops"),
                                Value::Int(i),
                                Value::Int(i + 1),
                            ])
                        })
                        .collect();
                    db.insert_rows("staff", batch).unwrap();
                }
            })
        };
        // Each collect pins one snapshot; batches of 5 publish atomically,
        // so every observed count is the 3 seed rows plus a multiple of 5.
        for _ in 0..50 {
            let n = db.table("staff").unwrap().collect().unwrap().len();
            assert_eq!((n - 3) % 5, 0, "torn batch visible: {n} rows");
        }
        writer.join().unwrap();
        assert_eq!(db.table("staff").unwrap().collect().unwrap().len(), 203);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn set_operations_and_extend() {
        let db = db();
        let teams = db.table("staff").unwrap().select(&["team"]);
        let out = teams
            .clone()
            .difference(db.table("oncall").unwrap())
            .collect()
            .unwrap();
        // every staffed team span minus the on-call windows is non-empty
        assert!(!out.is_empty());
        let extended = db.table("oncall").unwrap().extend().collect().unwrap();
        assert_eq!(
            extended.schema().names(),
            vec!["team", "us", "ue", "ts", "te"]
        );
    }
}
